"""Tests for the baseline truth-inference methods (repro.baselines.*)."""

import numpy as np
import pytest

from repro.baselines import (
    CATD,
    CRH,
    DawidSkene,
    GLAD,
    GTM,
    MajorityVoting,
    MedianAggregator,
    ZenCrowd,
)
from repro.baselines.base import BaselineResult
from repro.baselines.combined import CombinedInference
from repro.core.answers import AnswerSet
from repro.core.schema import Column, TableSchema

ALL_METHODS = [
    MajorityVoting, MedianAggregator, DawidSkene, ZenCrowd, GLAD, GTM, CRH, CATD,
]


class TestInterfaces:
    @pytest.mark.parametrize("factory", ALL_METHODS)
    def test_fit_returns_baseline_result(self, factory, mixed_schema, mixed_answers):
        result = factory().fit(mixed_schema, mixed_answers)
        assert isinstance(result, BaselineResult)
        assert isinstance(result.estimates(), dict)

    @pytest.mark.parametrize("factory", ALL_METHODS)
    def test_empty_answers_handled(self, factory, mixed_schema):
        result = factory().fit(mixed_schema, AnswerSet(mixed_schema))
        assert result.estimates() == {}

    @pytest.mark.parametrize("factory", ALL_METHODS)
    def test_estimates_restricted_to_supported_columns(self, factory, mixed_schema, mixed_answers):
        method = factory()
        result = method.fit(mixed_schema, mixed_answers)
        cat_cols = set(mixed_schema.categorical_indices)
        cont_cols = set(mixed_schema.continuous_indices)
        for (_row, col) in result.estimates():
            if col in cat_cols:
                assert method.supports_categorical()
            if col in cont_cols:
                assert method.supports_continuous()

    @pytest.mark.parametrize("factory", ALL_METHODS)
    def test_estimate_values_are_valid(self, factory, mixed_schema, mixed_answers):
        result = factory().fit(mixed_schema, mixed_answers)
        for (row, col), value in result.estimates().items():
            column = mixed_schema.columns[col]
            if column.is_categorical:
                assert column.contains_label(value)
            else:
                assert np.isfinite(float(value))

    def test_worker_weight_default(self, mixed_schema, mixed_answers):
        result = MajorityVoting().fit(mixed_schema, mixed_answers)
        assert result.worker_weight("anyone") == 1.0

    def test_baseline_result_single_estimate_accessor(self, mixed_schema, mixed_answers):
        result = MajorityVoting().fit(mixed_schema, mixed_answers)
        cell = next(iter(result.estimates()))
        assert result.estimate(*cell) is not None
        assert result.estimate(10**6, 0) is None


class TestMajorityVotingAndMedian:
    def test_majority_voting_picks_mode(self):
        schema = TableSchema.build("e", [Column.categorical("c", ["a", "b"])], 1)
        answers = AnswerSet(schema)
        answers.add_answer("w1", 0, 0, "a")
        answers.add_answer("w2", 0, 0, "a")
        answers.add_answer("w3", 0, 0, "b")
        result = MajorityVoting().fit(schema, answers)
        assert result.estimate(0, 0) == "a"

    def test_majority_voting_tie_break_deterministic(self):
        schema = TableSchema.build("e", [Column.categorical("c", ["a", "b"])], 1)
        answers = AnswerSet(schema)
        answers.add_answer("w1", 0, 0, "b")
        answers.add_answer("w2", 0, 0, "a")
        result = MajorityVoting().fit(schema, answers)
        assert result.estimate(0, 0) == "a"  # first label in the column order

    def test_median_is_robust_to_one_outlier(self):
        schema = TableSchema.build("e", [Column.continuous("x", (0, 1000))], 1)
        answers = AnswerSet(schema)
        for worker, value in (("w1", 10.0), ("w2", 11.0), ("w3", 900.0)):
            answers.add_answer(worker, 0, 0, value)
        result = MedianAggregator().fit(schema, answers)
        assert result.estimate(0, 0) == pytest.approx(11.0)


class TestWorkerWeighting:
    def test_zencrowd_ranks_workers_by_reliability(self, mixed_schema, mixed_answers, worker_variances):
        result = ZenCrowd().fit(mixed_schema, mixed_answers)
        assert result.worker_weight("expert") > result.worker_weight("spammer")

    def test_dawid_skene_ranks_workers(self, mixed_schema, mixed_answers):
        result = DawidSkene().fit(mixed_schema, mixed_answers)
        assert result.worker_weight("expert") > result.worker_weight("spammer")

    def test_glad_ranks_workers(self, mixed_schema, mixed_answers):
        result = GLAD().fit(mixed_schema, mixed_answers)
        assert result.worker_weight("expert") >= result.worker_weight("spammer")

    def test_gtm_ranks_workers(self, mixed_schema, mixed_answers):
        result = GTM().fit(mixed_schema, mixed_answers)
        assert result.worker_weight("expert") > result.worker_weight("spammer")

    def test_crh_ranks_workers(self, mixed_schema, mixed_answers):
        result = CRH().fit(mixed_schema, mixed_answers)
        assert result.worker_weight("expert") > result.worker_weight("spammer")

    def test_catd_ranks_workers(self, mixed_schema, mixed_answers):
        result = CATD().fit(mixed_schema, mixed_answers)
        assert result.worker_weight("expert") > result.worker_weight("spammer")


class TestAccuracyAgainstTruth:
    def _categorical_errors(self, result, truth, schema):
        cells = [c for c in truth if schema.columns[c[1]].is_categorical]
        return sum(result.estimate(*c) != truth[c] for c in cells), len(cells)

    def test_weighted_methods_not_worse_than_chance(self, mixed_schema, mixed_answers, mixed_truth):
        for factory in (DawidSkene, ZenCrowd, GLAD, CRH, CATD):
            result = factory().fit(mixed_schema, mixed_answers)
            errors, total = self._categorical_errors(result, mixed_truth, mixed_schema)
            assert errors / total < 0.5

    def test_gtm_beats_plain_mean_with_spammer(self):
        rng = np.random.default_rng(3)
        schema = TableSchema.build("e", [Column.continuous("x", (0, 100))], 30)
        answers = AnswerSet(schema)
        truth = {}
        for i in range(30):
            truth[(i, 0)] = float(rng.uniform(0, 100))
            answers.add_answer("good1", i, 0, truth[(i, 0)] + rng.normal(0, 1))
            answers.add_answer("good2", i, 0, truth[(i, 0)] + rng.normal(0, 1))
            answers.add_answer("bad", i, 0, float(rng.uniform(0, 100)))
        gtm = GTM().fit(schema, answers)
        gtm_rmse = np.sqrt(np.mean([
            (gtm.estimate(i, 0) - truth[(i, 0)]) ** 2 for i in range(30)
        ]))
        mean_rmse = np.sqrt(np.mean([
            (np.mean([a.value for a in answers.answers_for_cell(i, 0)]) - truth[(i, 0)]) ** 2
            for i in range(30)
        ]))
        assert gtm_rmse < mean_rmse


class TestCombinedInference:
    def test_combines_both_datatypes(self, mixed_schema, mixed_answers):
        combined = CombinedInference()
        result = combined.fit(mixed_schema, mixed_answers)
        answered_cols = {col for (_row, col) in result.estimates()}
        assert answered_cols & set(mixed_schema.categorical_indices)
        assert answered_cols & set(mixed_schema.continuous_indices)

    def test_custom_name(self):
        combined = CombinedInference(name="MV+Median")
        assert combined.name == "MV+Median"

    def test_default_name_mentions_both_parts(self):
        assert "Majority" in CombinedInference().name
