"""Unit tests for the composed sharded+async serving mode.

The end-to-end bit-identity of :class:`~repro.engine.ShardedAsyncPolicy` is
pinned by the golden-trace matrix (``tests/test_golden_trace.py``) and the
benchmark's ``identical_assignments_sharded_async`` bit; these tests cover
the policy surface itself — construction, the snapshot/restore durability
protocol, bounded staleness on a virtual clock, and the speedup harness's
composed path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.assignment import TCrowdAssigner
from repro.core.inference import TCrowdModel
from repro.engine import AsyncRefitEngine, ShardedAsyncPolicy, VirtualClock
from repro.utils.exceptions import AssignmentError, ConfigurationError

FAST_MODEL = {"max_iterations": 3, "m_step_iterations": 6}


def _assigner(schema, **kwargs):
    options = dict(refit_every=1, warm_start=True)
    options.update(kwargs)
    return TCrowdAssigner(schema, model=TCrowdModel(**FAST_MODEL), **options)


def _seeded_answers(schema, answers_per_cell=2, seed=0):
    rng = np.random.default_rng(seed)
    answers = AnswerSet(schema)
    for row in range(schema.num_rows):
        for col, column in enumerate(schema.columns):
            for index in range(answers_per_cell):
                worker = f"w{(row + index) % 5}"
                if column.is_categorical:
                    value = column.labels[int(rng.integers(column.num_labels))]
                else:
                    low, high = column.domain
                    value = float(rng.uniform(low, high))
                answers.add_answer(worker, row, col, value)
    return answers


class TestConstruction:
    def test_name_reflects_both_modes(self, mixed_schema):
        policy = ShardedAsyncPolicy(
            _assigner(mixed_schema), num_shards=3, clock=VirtualClock()
        )
        assert policy.name.endswith("[sharded x3 + async refit]")
        policy.close()

    def test_rejects_monte_carlo_gains(self, mixed_schema):
        with pytest.raises(ConfigurationError):
            ShardedAsyncPolicy(
                _assigner(mixed_schema, continuous_samples=8), num_shards=2
            )

    def test_rejects_bad_shard_count(self, mixed_schema):
        with pytest.raises(ConfigurationError):
            ShardedAsyncPolicy(_assigner(mixed_schema), num_shards=0)

    def test_empty_answers_rejected(self, mixed_schema):
        policy = ShardedAsyncPolicy(
            _assigner(mixed_schema), num_shards=2, clock=VirtualClock()
        )
        with pytest.raises(AssignmentError):
            policy.select("w0", AnswerSet(mixed_schema), k=1)
        policy.close()

    def test_close_is_idempotent(self, mixed_schema):
        policy = ShardedAsyncPolicy(
            _assigner(mixed_schema), num_shards=2, max_workers=2,
            clock=VirtualClock(),
        )
        policy.close()
        policy.close()


class TestServing:
    def test_matches_plain_assigner_at_zero_staleness(self, mixed_schema):
        answers_a = _seeded_answers(mixed_schema)
        answers_b = _seeded_answers(mixed_schema)
        plain = _assigner(mixed_schema)
        composed = ShardedAsyncPolicy(
            _assigner(mixed_schema), num_shards=3, max_stale_answers=0,
            clock=VirtualClock(),
        )
        for worker in ("w0", "w3"):
            expected = plain.select(worker, answers_a, k=4)
            actual = composed.select(worker, answers_b, k=4)
            assert actual.cells == expected.cells
            assert actual.gains == expected.gains
        composed.close()

    def test_bounded_staleness_serves_stale_snapshot(self, mixed_schema):
        answers = _seeded_answers(mixed_schema)
        clock = VirtualClock()
        policy = ShardedAsyncPolicy(
            _assigner(mixed_schema), num_shards=2, max_stale_answers=100,
            clock=clock,
        )
        policy.select("w0", answers, k=1)
        epoch_before = policy.engine.epoch
        answers.add_answer("w9", 0, 0, "red")
        policy.observe(answers)  # schedules a background refit
        assert clock.pending_jobs == 1
        policy.select("w0", answers, k=1)  # lock-free on the stale snapshot
        assert policy.engine.epoch == epoch_before
        clock.run_pending()
        assert policy.engine.epoch == epoch_before + 1
        assert policy.last_result is not None
        policy.close()

    def test_final_result_catches_up(self, mixed_schema):
        answers = _seeded_answers(mixed_schema)
        policy = ShardedAsyncPolicy(
            _assigner(mixed_schema), num_shards=2, max_stale_answers=100,
            clock=VirtualClock(),
        )
        result = policy.final_result(answers)
        assert policy.engine.snapshot.answers_seen == len(answers)
        assert result is policy.last_result
        policy.close()


class TestDurabilityProtocol:
    def test_snapshot_state_round_trip(self, mixed_schema):
        answers = _seeded_answers(mixed_schema)
        policy = ShardedAsyncPolicy(
            _assigner(mixed_schema), num_shards=2, max_stale_answers=0,
            clock=VirtualClock(),
        )
        assert policy.snapshot_state() is None
        policy.select("w0", answers, k=1)
        state = policy.snapshot_state()
        assert state is not None
        result, answers_seen = state
        assert answers_seen == len(answers)

        fresh = ShardedAsyncPolicy(
            _assigner(mixed_schema), num_shards=2, max_stale_answers=0,
            clock=VirtualClock(),
        )
        fresh.restore_state(result, answers_seen)
        assert fresh.last_result is result
        assert fresh.engine.snapshot.answers_seen == answers_seen
        policy.close()
        fresh.close()

    def test_engine_restore_advances_epoch(self, mixed_schema, fitted_result):
        engine = AsyncRefitEngine(
            TCrowdModel(**FAST_MODEL), mixed_schema, clock=VirtualClock()
        )
        snapshot = engine.restore(fitted_result, answers_seen=12)
        assert snapshot.epoch == 0
        snapshot = engine.restore(fitted_result, answers_seen=20)
        assert snapshot.epoch == 1
        snapshot = engine.restore(fitted_result, answers_seen=25, epoch=9)
        assert engine.epoch == 9
        engine.close()

    def test_plain_assigner_snapshot_protocol(self, mixed_schema):
        answers = _seeded_answers(mixed_schema)
        assigner = _assigner(mixed_schema)
        assert assigner.snapshot_state() is None
        assigner.observe(answers)
        result, seen = assigner.snapshot_state()
        assert seen == len(answers)
        fresh = _assigner(mixed_schema)
        fresh.restore_state(result, seen)
        assert fresh.last_result is result
        assert fresh.answers_at_last_fit == seen

    def test_final_result_records_the_fit(self, mixed_schema):
        """final_result is a real chain event: bookkeeping must advance."""
        answers = _seeded_answers(mixed_schema)
        assigner = _assigner(mixed_schema, refit_every=50)
        first = assigner.final_result(answers)
        assert assigner.answers_at_last_fit == len(answers)
        # Up to date: a second call is a no-op returning the same object.
        assert assigner.final_result(answers) is first


@pytest.mark.slow
class TestSpeedupHarnessComposedPath:
    def test_measure_engine_speedup_records_composed_bits(self):
        from repro.experiments.efficiency import measure_engine_speedup

        stats = measure_engine_speedup(
            seed=3,
            num_rows=8,
            target_answers_per_task=1.3,
            model_kwargs={"max_iterations": 3, "m_step_iterations": 6},
            shards=2,
            async_refit=True,
        )
        assert stats["identical_assignments_sharded_async"] is True
        assert stats["speedup_sharded_async"] > 0
        assert "seconds_engine_sharded_async_path" in stats
