"""CI perf-regression gate over the engine benchmark.

Compares a fresh ``benchmarks/run_bench.py --smoke`` result against the
committed full-size baseline (``BENCH_engine.json``) and fails the build
when either

* an equivalence bit flipped — ``identical_assignments`` (exact engine path
  vs seed path), ``identical_assignments_sharded`` (partitioned top-K vs
  seed path), ``identical_assignments_async`` (async serving path at
  ``max_stale_answers=0`` vs seed path),
  ``identical_assignments_sharded_async`` (the composed sharded+async
  policy) or ``recovery_identical`` (WAL+snapshot crash recovery replays
  the session bit for bit) is false, which is a correctness regression,
  never noise; or
* the HTTP serving throughput (``serve_requests_per_sec``) of the smoke
  run dropped below ``baseline * serve-headroom`` — the smoke server
  serves a *smaller* table than the baseline run, so a smoke run slower
  than a generous fraction of the committed baseline means the service
  layer itself regressed; or
* the engine-path speedup of the smoke run dropped below a floor derived
  from the committed baseline: ``floor = baseline_speedup * headroom``.
  The headroom (default 0.35) absorbs two effects at once — the smoke
  scenario is far smaller than the baseline scenario (EM dominates, so the
  candidate-scan savings shrink: ~1.7x smoke vs ~3.4x full on the reference
  machine) and shared CI runners jitter.  An engine path that regressed to
  the seed path's speed (speedup ~1.0) still trips the floor.

Usage::

    python scripts/check_perf_regression.py \
        --baseline BENCH_engine.json --candidate /tmp/BENCH_engine_smoke.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load(path: pathlib.Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read benchmark JSON {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_engine.json"),
        help="committed full-size baseline (provides the speedup floor)",
    )
    parser.add_argument(
        "--candidate",
        type=pathlib.Path,
        required=True,
        help="freshly produced smoke JSON to check",
    )
    parser.add_argument(
        "--headroom",
        type=float,
        default=0.35,
        help="fraction of the baseline speedup the candidate must reach "
        "(absorbs smoke-vs-full scale and runner noise)",
    )
    parser.add_argument(
        "--serve-headroom",
        type=float,
        default=0.15,
        help="fraction of the baseline serve_requests_per_sec the smoke "
        "run must reach (the smoke table is smaller, so this floor only "
        "catches outright service regressions)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    failures = []

    if baseline.get("smoke"):
        failures.append(
            f"baseline {args.baseline} is a smoke run; commit a full "
            "`python benchmarks/run_bench.py` result as the baseline"
        )

    if not candidate.get("identical_assignments", False):
        failures.append(
            "identical_assignments is false: the exact engine path no longer "
            "replays the seed path's assignment sequence"
        )
    if "identical_assignments_sharded" not in candidate:
        failures.append(
            "candidate has no identical_assignments_sharded field: the smoke "
            "run must include the sharded path (run_bench.py --shards >= 2)"
        )
    elif not candidate["identical_assignments_sharded"]:
        failures.append(
            "identical_assignments_sharded is false: the partitioned top-K "
            "merge no longer replays the seed path's assignment sequence"
        )
    if "identical_assignments_async" not in candidate:
        failures.append(
            "candidate has no identical_assignments_async field: the smoke "
            "run must include the async path (run_bench.py --async-refit)"
        )
    elif not candidate["identical_assignments_async"]:
        failures.append(
            "identical_assignments_async is false: the async serving path "
            "at max_stale_answers=0 no longer replays the seed path's "
            "assignment sequence"
        )
    if "identical_assignments_sharded_async" not in candidate:
        failures.append(
            "candidate has no identical_assignments_sharded_async field: "
            "the smoke run must include the composed path (run_bench.py "
            "--shards >= 2 --async-refit)"
        )
    elif not candidate["identical_assignments_sharded_async"]:
        failures.append(
            "identical_assignments_sharded_async is false: the composed "
            "sharded+async policy at max_stale_answers=0 no longer replays "
            "the seed path's assignment sequence"
        )
    if "recovery_identical" not in candidate:
        failures.append(
            "candidate has no recovery_identical field: the smoke run must "
            "include the durability check (run_bench.py --serve)"
        )
    elif not candidate["recovery_identical"]:
        failures.append(
            "recovery_identical is false: WAL+snapshot recovery no longer "
            "reproduces the uninterrupted session bit for bit"
        )

    serve_baseline = float(baseline.get("serve_requests_per_sec", 0.0))
    serve_candidate = float(candidate.get("serve_requests_per_sec", 0.0))
    if serve_baseline > 0.0:
        serve_floor = serve_baseline * args.serve_headroom
        if "serve_requests_per_sec" not in candidate:
            failures.append(
                "candidate has no serve_requests_per_sec field: the smoke "
                "run must include the serving benchmark (run_bench.py "
                "--serve)"
            )
        elif serve_candidate < serve_floor:
            failures.append(
                f"serve_requests_per_sec {serve_candidate:.1f} fell below "
                f"the floor {serve_floor:.1f} (baseline "
                f"{serve_baseline:.1f} * serve-headroom "
                f"{args.serve_headroom})"
            )
        print(
            f"serve_requests_per_sec: baseline {serve_baseline:.1f} -> "
            f"floor {serve_floor:.1f}, candidate {serve_candidate:.1f}"
        )

    floors = {}
    for field in ("speedup", "speedup_sharded", "speedup_async"):
        if field not in baseline and field != "speedup":
            continue  # older baselines predate the sharded/async paths
        baseline_speedup = float(baseline.get(field, 0.0))
        candidate_speedup = float(candidate.get(field, 0.0))
        # Seed-relative speedups are clamped at 1.0: an engine path that is
        # no faster than the seed path is a regression outright.  The async
        # ratio is engine-relative and sits near 1.77x, so a 1.0 clamp would
        # leave it no headroom at all on a jittery smoke runner — it keeps
        # the plain baseline*headroom floor (the full-size run_bench.py
        # enforces the absolute >= 1.2x target).
        minimum = 1.0 if field != "speedup_async" else 0.0
        floor = max(baseline_speedup * args.headroom, minimum)
        floors[field] = (baseline_speedup, candidate_speedup, floor)
        if candidate_speedup < floor:
            failures.append(
                f"{field} {candidate_speedup:.2f}x fell below the floor "
                f"{floor:.2f}x (baseline {baseline_speedup:.2f}x * "
                f"headroom {args.headroom})"
            )

    for field, (base, cand, floor) in floors.items():
        print(
            f"{field}: baseline {base:.2f}x -> floor {floor:.2f}x, "
            f"candidate {cand:.2f}x"
        )
    print(
        f"identical={candidate.get('identical_assignments')}, "
        f"identical_sharded={candidate.get('identical_assignments_sharded')}, "
        f"identical_async={candidate.get('identical_assignments_async')}, "
        f"identical_sharded_async="
        f"{candidate.get('identical_assignments_sharded_async')}, "
        f"recovery_identical={candidate.get('recovery_identical')}"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
