"""Decision provenance: per-select lineage records and a chained audit hash.

The equivalence benchmarks prove every serving mode replays the paper
path's assignment sequence bit for bit — but only in CI.  This module
turns that guarantee into a production feature: a
:class:`DecisionRecorder` attached to a serving policy captures, for every
``select``, a canonical audit record answering "why was worker *w* given
task *t*?" after the fact:

* a monotonically numbered ``decision_id``;
* the serving model state behind the decision — ``(epoch, answers_seen)``
  plus a canonical exact-float hash of the full
  :class:`~repro.core.inference.InferenceResult` (the WAL codec
  discipline, see :mod:`repro.core.codec`), and the staleness at decision
  time (``answers_total - answers_seen``);
* candidate-set provenance — the worker's open candidate-pool size and,
  as unhashed annotations, the per-shard candidate counts and each
  shard's contributed winners with their gains;
* a session-level **chained reproducibility hash**: each record's
  ``record_hash`` covers the previous record's hash ledger-style, so the
  chain head alone pins the whole decision history of a session.

Two hashing scopes, deliberately:

* ``record_hash`` covers the *core* payload — the decision and the model
  state that produced it.  Those fields are identical across every
  serving mode (plain / sharded / async at ``max_stale_answers=0`` /
  composed / multi-process), which is exactly the equivalence guarantee;
  the golden-trace audit matrix asserts the chain head matches across
  all of them.
* The ``shards`` annotations describe *how* the candidates were merged —
  deployment topology, which legitimately varies between a single-shard
  and an 8-shard serving of the same session — so they ride the record
  but stay outside the hash.

``epoch`` here is the audit epoch: the index of the distinct model state
serving the decision stream (it increments whenever ``answers_seen``
changes between records).  It is derived from the record stream itself,
not read from any engine's internal counter, so it cannot drift between
serving modes that take identical decisions.

**Replay verification.**  During WAL recovery the recorder is put in
replay mode: each replayed ``select`` *recomputes* its record (without
committing it), and the logged ``decision`` record that follows is
compared hash-for-hash (``replay_verified`` / ``replay_mismatches``)
before being restored verbatim.  Every recovery therefore re-proves the
audit chain over the replayed suffix — the property
``benchmarks/run_bench.py --serve`` records as ``audit_replay_identical``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.codec import model_state_hash, payload_hash

Cell = Tuple[int, int]

#: ``prev_hash`` of the first record in a session's chain (the default,
#: paper-strategy genesis; see :func:`strategy_genesis`).
GENESIS_HASH = "0" * 64

#: Bump when the audit record layout changes incompatibly.
AUDIT_FORMAT = 1

#: Default / maximum page size of the decisions API.
DEFAULT_PAGE_LIMIT = 100
MAX_PAGE_LIMIT = 1000

#: The core-payload fields covered by ``record_hash`` (sorted-key
#: canonical JSON over exactly these; ``shards`` annotations excluded).
CORE_FIELDS = (
    "decision_id",
    "worker",
    "k",
    "cells",
    "gains",
    "epoch",
    "answers_seen",
    "answers_total",
    "staleness",
    "candidates",
    "model_hash",
    "prev_hash",
)


def strategy_genesis(strategy: Optional[str]) -> str:
    """The chain genesis hash a strategy binds.

    ``None`` / ``"paper"`` keep the historic all-zeros
    :data:`GENESIS_HASH`, so every pre-strategy chain head stays
    bit-identical.  Any other strategy derives its genesis from its name,
    which places the strategy *under* the hash chain: the first record's
    ``prev_hash`` (and therefore every later ``record_hash``) commits to
    which strategy served the session, without touching
    :data:`CORE_FIELDS` or any individual record layout.
    """
    if strategy in (None, "paper"):
        return GENESIS_HASH
    return payload_hash({"audit_genesis": str(strategy)})


def record_core(payload: dict) -> dict:
    """The hash-covered core of a record dict (drops ``record_hash``/``shards``).

    Also the client-side recompute helper: an external auditor rebuilds
    ``record_hash`` as ``payload_hash(record_core(fetched_record))`` with
    no repro imports beyond this function's definition.
    """
    return {name: payload[name] for name in CORE_FIELDS}


@dataclass(frozen=True)
class DecisionRecord:
    """One select's canonical audit record (see the module docs)."""

    decision_id: int
    worker: str
    k: int
    cells: Tuple[Cell, ...]
    gains: Tuple[float, ...]
    epoch: int
    answers_seen: int
    answers_total: int
    staleness: int
    candidates: int
    model_hash: str
    prev_hash: str
    record_hash: str
    shards: Tuple[dict, ...] = field(default=(), compare=False)

    def core_payload(self) -> dict:
        """The JSON-safe payload ``record_hash`` is computed over."""
        return {
            "decision_id": int(self.decision_id),
            "worker": self.worker,
            "k": int(self.k),
            "cells": [[int(row), int(col)] for row, col in self.cells],
            "gains": [float(gain) for gain in self.gains],
            "epoch": int(self.epoch),
            "answers_seen": int(self.answers_seen),
            "answers_total": int(self.answers_total),
            "staleness": int(self.staleness),
            "candidates": int(self.candidates),
            "model_hash": self.model_hash,
            "prev_hash": self.prev_hash,
        }

    def to_dict(self) -> dict:
        payload = self.core_payload()
        payload["record_hash"] = self.record_hash
        payload["shards"] = [dict(block) for block in self.shards]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "DecisionRecord":
        return cls(
            decision_id=int(payload["decision_id"]),
            worker=str(payload["worker"]),
            k=int(payload["k"]),
            cells=tuple(
                (int(row), int(col)) for row, col in payload["cells"]
            ),
            gains=tuple(float(gain) for gain in payload["gains"]),
            epoch=int(payload["epoch"]),
            answers_seen=int(payload["answers_seen"]),
            answers_total=int(payload["answers_total"]),
            staleness=int(payload["staleness"]),
            candidates=int(payload["candidates"]),
            model_hash=str(payload["model_hash"]),
            prev_hash=str(payload["prev_hash"]),
            record_hash=str(payload["record_hash"]),
            shards=tuple(dict(block) for block in payload.get("shards", [])),
        )


class DecisionRecorder:
    """Builds and chains :class:`DecisionRecord`\\ s for one session.

    Thread-safe; one instance per session, attached to the *outermost*
    serving policy via ``set_recorder`` (inner wrappers never record, so
    each select yields exactly one record).  ``sink`` — when set by a
    durable session — receives every live record for WAL persistence.
    """

    def __init__(self, strategy: Optional[str] = None) -> None:
        #: The assignment strategy this chain is bound to (``None`` and
        #: ``"paper"`` are the default selector; see :func:`strategy_genesis`).
        self.strategy = None if strategy in (None, "paper") else str(strategy)
        self._genesis = strategy_genesis(strategy)
        self._lock = threading.Lock()
        self._records: List[DecisionRecord] = []
        self._head = self._genesis
        self._epoch = -1
        self._last_answers_seen: Optional[int] = None
        self._hash_cache: Tuple[Optional[int], Optional[str]] = (None, None)
        self._replaying = False
        self._pending: Optional[DecisionRecord] = None
        self.sink: Optional[Callable[[DecisionRecord], None]] = None
        self.replay_verified = 0
        self.replay_mismatches = 0

    # -- introspection --------------------------------------------------------

    @property
    def count(self) -> int:
        """Records chained so far."""
        with self._lock:
            return len(self._records)

    @property
    def chain_head(self) -> str:
        """Hex digest pinning the whole decision history (genesis if empty)."""
        with self._lock:
            return self._head

    def get(self, decision_id: int) -> DecisionRecord:
        """Record ``decision_id`` (raises :class:`KeyError` when absent)."""
        with self._lock:
            if 0 <= decision_id < len(self._records):
                return self._records[decision_id]
        raise KeyError(f"no decision record {decision_id}")

    def page(
        self, since: int = 0, limit: int = DEFAULT_PAGE_LIMIT
    ) -> List[DecisionRecord]:
        """Up to ``limit`` records with ``decision_id >= since``."""
        since = max(0, int(since))
        limit = max(0, min(int(limit), MAX_PAGE_LIMIT))
        with self._lock:
            return list(self._records[since:since + limit])

    # -- recording ------------------------------------------------------------

    def model_hash_for(self, answers_seen: int, result) -> str:
        """Canonical model-state hash, cached per ``answers_seen``.

        Within one session a given ``answers_seen`` maps to exactly one
        model state (the warm-start chain is deterministic), so the hash
        only needs recomputing when the serving state advances.
        """
        cached_seen, cached_hash = self._hash_cache
        if cached_seen == answers_seen and cached_hash is not None:
            return cached_hash
        digest = model_state_hash(result)
        self._hash_cache = (answers_seen, digest)
        return digest

    def record(
        self,
        assignment,
        *,
        answers_seen: int,
        answers_total: int,
        candidates: int,
        result=None,
        model_hash: Optional[str] = None,
        shards: Sequence[dict] = (),
    ) -> Optional[DecisionRecord]:
        """Chain one select's record (``assignment`` is a BatchAssignment).

        Pass either the serving ``result`` (hashed here, cached per
        ``answers_seen``) or a precomputed ``model_hash`` (the
        multi-process coordinator, whose workers hash their own state).
        In replay mode the record is computed but *not* committed — it is
        held for comparison against the logged record that follows.
        """
        with self._lock:
            if model_hash is None:
                model_hash = self.model_hash_for(int(answers_seen), result)
            epoch = self._epoch
            if self._last_answers_seen != int(answers_seen):
                epoch += 1
            core = {
                "decision_id": len(self._records),
                "worker": assignment.worker,
                "k": len(assignment.cells),
                "cells": [[int(row), int(col)] for row, col in assignment.cells],
                "gains": [float(gain) for gain in assignment.gains],
                "epoch": int(epoch),
                "answers_seen": int(answers_seen),
                "answers_total": int(answers_total),
                "staleness": int(answers_total) - int(answers_seen),
                "candidates": int(candidates),
                "model_hash": model_hash,
                "prev_hash": self._head,
            }
            record = DecisionRecord.from_dict(
                {
                    **core,
                    "record_hash": payload_hash(core),
                    "shards": list(shards),
                }
            )
            if self._replaying:
                self._pending = record
                return record
            self._commit(record)
        if self.sink is not None:
            self.sink(record)
        return record

    def _commit(self, record: DecisionRecord) -> None:
        self._records.append(record)
        self._head = record.record_hash
        self._epoch = record.epoch
        self._last_answers_seen = record.answers_seen

    # -- WAL replay -----------------------------------------------------------

    def begin_replay(self) -> None:
        """Enter replay mode: recomputed records are held, not committed."""
        with self._lock:
            self._replaying = True
            self._pending = None

    def end_replay(self) -> None:
        """Leave replay mode, dropping any uncommitted recompute.

        A dangling recompute (a replayed select whose logged decision
        record never made it to disk) is discarded: the decision never
        committed, and the recovery driver's re-issued select will record
        it fresh under the same id.
        """
        with self._lock:
            self._replaying = False
            self._pending = None

    def apply_logged(self, payload: dict) -> None:
        """Restore one logged decision record, verifying the recompute.

        Called by the durable session for every replayed ``decision`` WAL
        record.  If the preceding replayed select recomputed a record for
        the same id, the two hashes are compared (``replay_verified`` /
        ``replay_mismatches``); chain-continuity breaks (wrong id or
        ``prev_hash``) also count as mismatches.  The *logged* record is
        then committed verbatim, so a mismatch is visible, not fatal.
        """
        record = DecisionRecord.from_dict(payload)
        with self._lock:
            pending, self._pending = self._pending, None
            if pending is not None and pending.decision_id == record.decision_id:
                if pending.record_hash == record.record_hash:
                    self.replay_verified += 1
                else:
                    self.replay_mismatches += 1
            if (
                record.decision_id != len(self._records)
                or record.prev_hash != self._head
            ):
                self.replay_mismatches += 1
            self._commit(record)

    # -- durability -----------------------------------------------------------

    def state(self) -> dict:
        """JSON-safe audit state for snapshot embedding (full history)."""
        with self._lock:
            return {
                "format": AUDIT_FORMAT,
                "strategy": self.strategy,
                "chain_head": self._head,
                "epoch": self._epoch,
                "answers_seen": self._last_answers_seen,
                "records": [record.to_dict() for record in self._records],
            }

    def restore(self, state: dict) -> None:
        """Re-seat the audit state captured by :meth:`state`.

        The strategy binding (and with it the chain genesis) is a
        construction-time property — recovery rebuilds the recorder from
        the same pinned spec, so a restored empty chain re-heads at this
        recorder's own genesis, never the persisted one.
        """
        with self._lock:
            self._records = [
                DecisionRecord.from_dict(payload)
                for payload in state.get("records", [])
            ]
            self._head = str(state.get("chain_head", self._genesis))
            self._epoch = int(state.get("epoch", -1))
            seen = state.get("answers_seen")
            self._last_answers_seen = None if seen is None else int(seen)
            self._hash_cache = (None, None)
            self._pending = None
