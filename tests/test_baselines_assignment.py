"""Tests for the baseline assignment policies."""

import pytest

from repro.baselines.assignment_askit import AskItAssigner
from repro.baselines.assignment_cdas import CDASAssigner
from repro.baselines.assignment_simple import (
    EntropyAssigner,
    LoopingAssigner,
    RandomAssigner,
)
from repro.core.answers import AnswerSet
from repro.core.inference import TCrowdModel
from repro.core.schema import Column, TableSchema
from repro.utils.exceptions import AssignmentError


@pytest.fixture()
def tiny_schema():
    return TableSchema.build(
        "e",
        [
            Column.categorical("cat", ["a", "b", "c"]),
            Column.continuous("num", (0, 100)),
        ],
        3,
    )


@pytest.fixture()
def tiny_answers(tiny_schema):
    answers = AnswerSet(tiny_schema)
    for i in range(3):
        for worker, label in (("w1", "a"), ("w2", "a"), ("w3", "b")):
            answers.add_answer(worker, i, 0, label)
        for worker, value in (("w1", 50.0), ("w2", 52.0), ("w3", 48.0)):
            answers.add_answer(worker, i, 1, value)
    return answers


class TestRandomAssigner:
    def test_selects_candidate_cells(self, tiny_schema, tiny_answers):
        assigner = RandomAssigner(tiny_schema, seed=0)
        batch = assigner.select("new-worker", tiny_answers, k=2)
        assert len(batch) == 2
        assert len(set(batch.cells)) == 2

    def test_never_assigns_already_answered_cell(self, tiny_schema):
        answers = AnswerSet(tiny_schema)
        # w1 answered the whole first row; the other rows are untouched.
        answers.add_answer("w1", 0, 0, "a")
        answers.add_answer("w1", 0, 1, 50.0)
        assigner = RandomAssigner(tiny_schema, seed=0)
        batch = assigner.select("w1", answers, k=6)
        assert all(not answers.has_answered("w1", *cell) for cell in batch.cells)
        assert (0, 0) not in batch.cells
        assert (0, 1) not in batch.cells

    def test_k_capped_by_candidates(self, tiny_schema, tiny_answers):
        assigner = RandomAssigner(tiny_schema, seed=0)
        batch = assigner.select("new-worker", tiny_answers, k=100)
        assert len(batch) == tiny_schema.num_cells

    def test_raises_without_candidates(self, tiny_schema, tiny_answers):
        assigner = RandomAssigner(tiny_schema, seed=0, max_answers_per_cell=1)
        with pytest.raises(AssignmentError):
            assigner.select("w1", tiny_answers, k=1)

    def test_name(self, tiny_schema):
        assert RandomAssigner(tiny_schema).name == "Random"


class TestLoopingAssigner:
    def test_round_robin_order(self, tiny_schema, tiny_answers):
        assigner = LoopingAssigner(tiny_schema)
        first = assigner.select("new", tiny_answers, k=2)
        second = assigner.select("new2", tiny_answers, k=2)
        assert first.cells == ((0, 0), (0, 1))
        assert second.cells == ((1, 0), (1, 1))

    def test_skips_answered_cells(self, tiny_schema):
        answers = AnswerSet(tiny_schema)
        answers.add_answer("w1", 0, 0, "a")
        answers.add_answer("w1", 0, 1, 50.0)
        assigner = LoopingAssigner(tiny_schema)
        batch = assigner.select("w1", answers, k=3)
        assert all(not answers.has_answered("w1", *cell) for cell in batch.cells)
        assert batch.cells[0] == (1, 0)

    def test_wraps_around(self, tiny_schema, tiny_answers):
        assigner = LoopingAssigner(tiny_schema)
        for _ in range(4):
            batch = assigner.select("fresh", tiny_answers, k=2)
        assert len(batch) == 2


class TestEntropyAssigner:
    def test_prefers_most_uncertain_cell(self, tiny_schema):
        answers = AnswerSet(tiny_schema)
        # Cell (0,0) gets unanimous answers, (1,0) gets split answers.
        for worker in ("w1", "w2", "w3", "w4"):
            answers.add_answer(worker, 0, 0, "a")
        for worker, label in (("w1", "a"), ("w2", "b"), ("w3", "c"), ("w4", "a")):
            answers.add_answer(worker, 1, 0, label)
        for i in range(3):
            for worker in ("w1", "w2"):
                answers.add_answer(worker, i, 1, 50.0)
        model = TCrowdModel(max_iterations=5)
        assigner = EntropyAssigner(tiny_schema, model=model)
        batch = assigner.select("new", answers, k=1)
        assert batch.cells[0] != (0, 0)

    def test_requires_seed_answers(self, tiny_schema):
        assigner = EntropyAssigner(tiny_schema, model=TCrowdModel(max_iterations=3))
        with pytest.raises(AssignmentError):
            assigner.select("w", AnswerSet(tiny_schema), k=1)

    def test_name(self, tiny_schema):
        assert EntropyAssigner(tiny_schema).name == "Entropy"


class TestCDASAssigner:
    def test_terminates_confident_categorical_cell(self, tiny_schema, tiny_answers):
        assigner = CDASAssigner(
            tiny_schema, seed=0, confidence_threshold=0.6, min_answers=3
        )
        assert assigner.is_terminated(tiny_answers, 0, 0)

    def test_does_not_terminate_split_votes(self, tiny_schema):
        answers = AnswerSet(tiny_schema)
        for worker, label in (("w1", "a"), ("w2", "b"), ("w3", "c")):
            answers.add_answer(worker, 0, 0, label)
        assigner = CDASAssigner(tiny_schema, seed=0, confidence_threshold=0.8)
        assert not assigner.is_terminated(answers, 0, 0)

    def test_does_not_terminate_with_few_answers(self, tiny_schema):
        answers = AnswerSet(tiny_schema)
        answers.add_answer("w1", 0, 0, "a")
        assigner = CDASAssigner(tiny_schema, seed=0, min_answers=3)
        assert not assigner.is_terminated(answers, 0, 0)

    def test_select_prefers_open_cells(self, tiny_schema, tiny_answers):
        assigner = CDASAssigner(
            tiny_schema, seed=1, confidence_threshold=0.6, sem_threshold=0.5,
            min_answers=3,
        )
        batch = assigner.select("new", tiny_answers, k=1)
        assert not assigner.is_terminated(tiny_answers, *batch.cells[0])

    def test_falls_back_to_terminated_cells_when_all_done(self, tiny_schema, tiny_answers):
        assigner = CDASAssigner(
            tiny_schema, seed=1, confidence_threshold=0.0, sem_threshold=10.0,
            min_answers=1,
        )
        batch = assigner.select("new", tiny_answers, k=1)
        assert len(batch) == 1

    def test_name(self, tiny_schema):
        assert CDASAssigner(tiny_schema).name == "CDAS"


class TestAskItAssigner:
    def test_prefers_wide_domain_continuous_cells_first(self, tiny_schema, tiny_answers):
        assigner = AskItAssigner(tiny_schema)
        batch = assigner.select("new", tiny_answers, k=1)
        # Raw differential entropy of a wide continuous domain dominates the
        # bounded Shannon entropy of a 3-label categorical cell.
        assert tiny_schema.columns[batch.cells[0][1]].is_continuous

    def test_uncertainty_decreases_with_agreement(self, tiny_schema):
        answers = AnswerSet(tiny_schema)
        for worker, label in (("w1", "a"), ("w2", "b"), ("w3", "c")):
            answers.add_answer(worker, 0, 0, label)
        for worker in ("w1", "w2", "w3"):
            answers.add_answer(worker, 1, 0, "a")
        assigner = AskItAssigner(tiny_schema)
        split = assigner.uncertainty(answers, 0, 0)
        unanimous = assigner.uncertainty(answers, 1, 0)
        assert split > unanimous

    def test_continuous_uncertainty_shrinks_with_more_answers(self, tiny_schema):
        answers = AnswerSet(tiny_schema)
        assigner = AskItAssigner(tiny_schema)
        prior = assigner.uncertainty(answers, 0, 1)
        for worker in ("w1", "w2", "w3", "w4"):
            answers.add_answer(worker, 0, 1, 50.0 + 0.1 * hash(worker) % 3)
        posterior = assigner.uncertainty(answers, 0, 1)
        assert posterior < prior

    def test_name(self, tiny_schema):
        assert AskItAssigner(tiny_schema).name == "AskIt!"
