"""Plain-text reporting helpers shared by all experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], precision: int = 4) -> str:
    """Format a table of mixed values as aligned plain text."""

    def render(value) -> str:
        if value is None:
            return "/"
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    rendered = [[render(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[index]) for row in rendered)) if rendered else len(str(header))
        for index, header in enumerate(headers)
    ]
    lines = [
        "  ".join(str(header).ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentReport:
    """Structured result of one experiment harness.

    ``rows`` is a list of equal-length sequences matching ``headers``;
    ``series`` optionally carries per-curve data (used by figure-style
    experiments); ``notes`` records the exact configuration used so the
    report is self-describing in EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    headers: List[str] = field(default_factory=list)
    rows: List[List] = field(default_factory=list)
    series: Dict[str, List[tuple]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row to the tabular part of the report."""
        self.rows.append(list(values))

    def add_series(self, name: str, points: List[tuple]) -> None:
        """Record one curve (list of ``(x, y)`` points)."""
        self.series[name] = list(points)

    def add_note(self, note: str) -> None:
        """Attach a free-text note (configuration, caveat, observation)."""
        self.notes.append(note)

    def to_text(self, precision: int = 4) -> str:
        """Render the report as plain text (the paper-style rows / series)."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows, precision=precision))
        for name, points in self.series.items():
            rendered = ", ".join(
                f"({x:.3g}, {y:.4g})" if isinstance(y, (int, float)) else f"({x:.3g}, {y})"
                for x, y in points
            )
            parts.append(f"series {name}: {rendered}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def best_by(self, column: str, minimize: bool = True) -> Optional[List]:
        """Return the row with the best value of ``column`` (ignoring None)."""
        if column not in self.headers:
            return None
        index = self.headers.index(column)
        candidates = [row for row in self.rows if isinstance(row[index], (int, float))]
        if not candidates:
            return None
        return (min if minimize else max)(candidates, key=lambda row: row[index])
