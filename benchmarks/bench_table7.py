"""Benchmark: Table 7 — truth-inference effectiveness on all three datasets."""

from conftest import FAST_MODEL, run_once

from repro.experiments import run_table7


def test_table7_truth_inference(benchmark, report_writer):
    """Regenerate Table 7 (reduced tables, one trial) and record its rows."""
    report = run_once(
        benchmark, run_table7, seed=7, trials=1, num_rows=60, model_kwargs=FAST_MODEL
    )
    report_writer(report)
    assert len(report.rows) == 11
    tcrowd = next(row for row in report.rows if row[0] == "T-Crowd")
    mv = next(row for row in report.rows if row[0] == "Maj. Voting")
    err_col = report.headers.index("Celebrity ErrorRate")
    # The paper's headline: T-Crowd at least matches majority voting.
    assert tcrowd[err_col] <= mv[err_col] + 0.02
