"""Common interface of the baseline truth-inference methods.

Every baseline exposes ``fit(schema, answers)`` and returns a
:class:`BaselineResult`, whose ``estimates()`` mapping plugs directly into
:mod:`repro.metrics` — the same contract as T-Crowd's
:class:`~repro.core.inference.InferenceResult`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.answers import AnswerSet
from repro.core.schema import TableSchema


@dataclass
class BaselineResult:
    """Estimates produced by a baseline, plus optional per-worker weights."""

    schema: TableSchema
    method: str
    _estimates: Dict[Tuple[int, int], object]
    worker_weights: Dict[str, float] = field(default_factory=dict)
    extras: Dict[str, object] = field(default_factory=dict)

    def estimates(self) -> Dict[Tuple[int, int], object]:
        """Estimated truth for every cell the method could answer."""
        return dict(self._estimates)

    def estimate(self, row: int, col: int):
        """Estimated truth of one cell (None if the method has no estimate)."""
        return self._estimates.get((row, col))

    def worker_weight(self, worker: str) -> float:
        """Reliability weight assigned to a worker (1.0 if unweighted)."""
        return self.worker_weights.get(worker, 1.0)


class TruthInferenceMethod(abc.ABC):
    """Interface implemented by every baseline truth-inference method."""

    #: Human-readable name used in tables and experiment reports.
    name: str = "baseline"

    @abc.abstractmethod
    def fit(self, schema: TableSchema, answers: AnswerSet) -> BaselineResult:
        """Infer truths for every answered cell."""

    def supports_categorical(self) -> bool:
        """True if the method can answer categorical cells."""
        return True

    def supports_continuous(self) -> bool:
        """True if the method can answer continuous cells."""
        return True
