"""Build live policy objects from a :class:`~repro.config.SessionSpec`.

This is the **single** wrapper-selection point of the codebase.  The same
serving table used to be duplicated (with drifting defaults) between
``platform/session.py``, ``service/registry.build_policy`` and the
benchmark drivers; they all call :func:`wrap_policy` now:

========================  =============================================
``serving`` section       policy served
========================  =============================================
defaults                  the plain incremental assigner, unwrapped
``shards`` > 1 only       :class:`~repro.engine.ShardedAssignmentPolicy`
``async_refit`` only      :class:`~repro.engine.AsyncRefitPolicy`
both                      :class:`~repro.engine.ShardedAsyncPolicy`
``processes`` >= 1        :class:`~repro.engine.ProcessShardCoordinator`
========================  =============================================
"""

from __future__ import annotations

from repro.config.spec import ModelSpec, ServingSpec, SessionSpec
from repro.core.assignment import AssignmentPolicy, TCrowdAssigner
from repro.core.inference import TCrowdModel
from repro.core.schema import TableSchema
from repro.utils.exceptions import ConfigurationError


def build_model(spec: ModelSpec) -> TCrowdModel:
    """The :class:`TCrowdModel` a :class:`ModelSpec` describes."""
    return TCrowdModel(**spec.to_kwargs())


def build_assigner(schema: TableSchema, spec: SessionSpec) -> TCrowdAssigner:
    """The bare :class:`TCrowdAssigner` of a spec (no serving wrapper).

    ``serving.refit_tol`` is applied here: the objective-based
    early-stopping tolerance rides on the assigner even though it is a
    serving-section field (see :class:`~repro.config.ServingSpec`).
    ``policy.strategy`` is built into a live
    :class:`~repro.strategies.AssignmentStrategy` here too (``None`` for
    the default ``"paper"``), so every caller of this factory — the
    platform simulator, the HTTP service, the benchmarks — serves the
    spec's strategy without further wiring.
    """
    from repro.strategies import build_strategy

    return TCrowdAssigner(
        schema,
        model=build_model(spec.policy.model),
        refit_tol=spec.serving.refit_tol,
        strategy=build_strategy(spec.policy.strategy),
        **spec.policy.to_kwargs(),
    )


def wrap_policy(
    policy: AssignmentPolicy,
    serving: ServingSpec,
    clock=None,
) -> AssignmentPolicy:
    """Wrap ``policy`` in the serving mode a :class:`ServingSpec` picks.

    Returns ``policy`` itself for the default (unsharded, synchronous)
    spec.  Wrapped policies own background threads — callers that create
    them are responsible for ``close()``.

    Parameters
    ----------
    policy:
        The base policy.  Serving wrappers require a
        :class:`TCrowdAssigner` (they reuse its model, refit cadence and
        gain configuration).
    serving:
        The serving section of a spec.
    clock:
        Optional :class:`~repro.engine.VirtualClock` for the async modes —
        deterministic synchronous refits for tests and replay harnesses.
    """
    if not serving.wants_wrapper:
        return policy
    if not isinstance(policy, TCrowdAssigner):
        raise ConfigurationError(
            "serving.shards > 1 / serving.async_refit / serving.processes "
            f">= 1 require a TCrowdAssigner policy, got {type(policy).__name__}"
        )
    if serving.processes >= 1:
        from repro.engine import ProcessShardCoordinator

        return ProcessShardCoordinator(
            policy,
            processes=serving.processes,
            num_shards=max(serving.shards, serving.processes),
        )
    if serving.shards > 1 and serving.async_refit:
        from repro.engine import ShardedAsyncPolicy

        return ShardedAsyncPolicy(
            policy,
            num_shards=serving.shards,
            max_workers=serving.shard_workers,
            max_stale_answers=serving.max_stale_answers,
            scoring_cache=serving.scoring_cache,
            clock=clock,
        )
    if serving.shards > 1:
        from repro.engine import ShardedAssignmentPolicy

        return ShardedAssignmentPolicy(
            policy,
            num_shards=serving.shards,
            max_workers=serving.shard_workers,
        )
    from repro.engine import AsyncRefitPolicy

    return AsyncRefitPolicy(
        policy,
        max_stale_answers=serving.max_stale_answers,
        clock=clock,
    )


def build_policy(
    schema: TableSchema,
    spec: SessionSpec,
    clock=None,
) -> AssignmentPolicy:
    """Assigner + serving wrapper, straight from a spec.

    With ``serving.audit`` (the default) a
    :class:`~repro.engine.provenance.DecisionRecorder` is attached to the
    **outermost** policy — one audit record per served select, regardless
    of how many inner policies the wrapper consults.  The recorder is
    bound to ``policy.strategy.name``, pinning the strategy under the
    decision-record hash chain (a non-default strategy derives the chain
    genesis; ``"paper"`` keeps the historic all-zeros genesis).
    """
    policy = wrap_policy(build_assigner(schema, spec), spec.serving, clock=clock)
    if spec.serving.audit:
        from repro.engine.provenance import DecisionRecorder

        policy.set_recorder(DecisionRecorder(strategy=spec.policy.strategy.name))
    return policy


def build_durable_session(
    schema: TableSchema,
    policy: AssignmentPolicy,
    spec: SessionSpec,
    directory=None,
    fresh: bool = False,
):
    """A :class:`~repro.service.wal.DurableSession` per the durability spec.

    ``directory`` overrides ``spec.durability.durable_dir`` (the service
    resolves per-session directories under its ``--durable-root``); when
    both are ``None`` the session runs in memory through the same code
    path.
    """
    from repro.service.wal import DurableSession

    if directory is None:
        directory = spec.durability.durable_dir
    return DurableSession(
        schema,
        policy,
        directory=directory,
        snapshot_every=spec.durability.snapshot_every_answers,
        fsync=spec.durability.wal_fsync,
        fresh=fresh,
        backend=spec.durability.backend,
        rotate_every_records=spec.durability.rotate_every_records,
        keep_snapshots=spec.durability.keep_snapshots,
    )
