"""Stdlib-only HTTP API over the session registry.

The application is a plain WSGI callable (:func:`create_app`) served by
``wsgiref`` with a threading mixin — no web framework, no new runtime
dependency.  Endpoints (see ``src/repro/service/README.md`` for the full
reference):

========  ===================================  =================================
method    path                                 action
========  ===================================  =================================
GET       ``/healthz``                         liveness + session count
GET       ``/metrics``                         Prometheus text exposition
GET/POST  ``/sessions``                        list / create (or recover)
GET       ``/sessions/{id}``                   session status
DELETE    ``/sessions/{id}``                   close and drop the session
GET       ``/sessions/{id}/tasks?worker=&k=``  assign the next task batch
POST      ``/sessions/{id}/answers``           ingest collected answers
GET       ``/sessions/{id}/estimates``         current truth estimates
GET       ``/sessions/{id}/workers/{worker}``  per-worker quality
GET       ``/sessions/{id}/config``            canonical v1 session spec
GET       ``/sessions/{id}/decisions``         paginated audit records (``?since=&limit=``)
GET       ``/sessions/{id}/decisions/{n}``     one decision's audit record
========  ===================================  =================================

``POST /sessions`` takes a version-1 :class:`~repro.config.SessionSpec`
body (legacy PR-4 configs upgrade transparently, see
:mod:`repro.service.registry`); ``GET /sessions/{id}/config`` returns the
canonical spec the session actually runs with.

Error mapping: unknown session / unknown worker → 404; malformed JSON,
malformed answers, invalid configs → 400; a worker with no assignable cell
left → 409 (the session is simply exhausted for them); wrong method → 405.
Every response body is JSON, errors as ``{"error": ...}`` — spec
validation failures additionally carry the dotted field path as
``{"error": ..., "path": "serving.max_stale_answers"}``.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import Counter, deque
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from socketserver import ThreadingMixIn

from repro.engine.profiling import HotPathProfile
from repro.service.registry import SessionRegistry
from repro.utils.exceptions import (
    AssignmentError,
    ConfigurationError,
    DataError,
    DurabilityError,
    InferenceError,
    ServiceUnavailableError,
)

_STATUS = {
    200: "200 OK",
    201: "201 Created",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    409: "409 Conflict",
    413: "413 Payload Too Large",
    500: "500 Internal Server Error",
    503: "503 Service Unavailable",
}

#: Default request-body cap — far above any real config or answer batch,
#: far below anything that could exhaust server memory.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

_SESSION_PATH = re.compile(
    r"^/sessions/(?P<sid>[A-Za-z0-9_.-]+)"
    r"(?:/(?P<verb>tasks|answers|estimates|workers|config|decisions))?"
    r"(?:/(?P<arg>[^/]+))?$"
)

#: Window of recent select latencies the metrics endpoint summarises.
_LATENCY_WINDOW = 1024

#: The closed set of endpoint labels ``/metrics`` may emit.  Anything else
#: — unknown paths, fuzzed URLs, bad session verbs — buckets under
#: ``other`` so request counters keep bounded label cardinality no matter
#: what clients throw at the server.
_KNOWN_ENDPOINTS = frozenset({
    "healthz", "metrics", "sessions", "session", "tasks", "answers",
    "estimates", "workers", "config", "decisions",
})


class _HTTPError(Exception):
    """Internal control flow carrying an HTTP status + message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _quantile(sorted_values, q: float) -> float:
    """Nearest-rank quantile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return float(sorted_values[rank])


class ServiceMetrics:
    """Thread-safe counters behind the Prometheus ``/metrics`` endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: Counter = Counter()
        self.errors: Counter = Counter()
        self.answers_ingested = 0
        self.selects_served = 0
        self.select_seconds_sum = 0.0
        self.select_latencies: deque = deque(maxlen=_LATENCY_WINDOW)
        #: Per-stage hot-path timers (snapshot acquire, lock wait, EM refit,
        #: calculator build, batch scoring, top-K merge), aggregated across
        #: every session whose policy supports ``set_profile`` — rendered as
        #: Prometheus histograms alongside the request counters.
        self.hotpath = HotPathProfile()

    def observe_request(self, endpoint: str, status: int) -> None:
        if endpoint not in _KNOWN_ENDPOINTS:
            endpoint = "other"
        with self._lock:
            self.requests[endpoint] += 1
            if status >= 400:
                self.errors[str(status)] += 1

    def observe_select(self, seconds: float) -> None:
        with self._lock:
            self.selects_served += 1
            self.select_seconds_sum += seconds
            self.select_latencies.append(seconds)

    def observe_answers(self, count: int) -> None:
        with self._lock:
            self.answers_ingested += count

    def render(self, registry: SessionRegistry) -> str:
        """Prometheus text exposition format (0.0.4)."""
        with self._lock:
            latencies = sorted(self.select_latencies)
            lines = [
                "# HELP repro_service_sessions_active Live sessions in the registry.",
                "# TYPE repro_service_sessions_active gauge",
                f"repro_service_sessions_active {len(registry)}",
                "# HELP repro_service_requests_total HTTP requests by endpoint.",
                "# TYPE repro_service_requests_total counter",
            ]
            for endpoint, count in sorted(self.requests.items()):
                lines.append(
                    f'repro_service_requests_total{{endpoint="{endpoint}"}} {count}'
                )
            lines += [
                "# HELP repro_service_http_errors_total HTTP error responses by status.",
                "# TYPE repro_service_http_errors_total counter",
            ]
            for status, count in sorted(self.errors.items()):
                lines.append(
                    f'repro_service_http_errors_total{{status="{status}"}} {count}'
                )
            lines += [
                "# HELP repro_service_answers_ingested_total Answers accepted over HTTP.",
                "# TYPE repro_service_answers_ingested_total counter",
                f"repro_service_answers_ingested_total {self.answers_ingested}",
                "# HELP repro_service_selects_served_total Task batches assigned.",
                "# TYPE repro_service_selects_served_total counter",
                f"repro_service_selects_served_total {self.selects_served}",
                "# HELP repro_service_select_latency_seconds Select latency over "
                f"the last {_LATENCY_WINDOW} requests.",
                "# TYPE repro_service_select_latency_seconds summary",
                'repro_service_select_latency_seconds{quantile="0.5"} '
                f"{_quantile(latencies, 0.5):.6f}",
                'repro_service_select_latency_seconds{quantile="0.99"} '
                f"{_quantile(latencies, 0.99):.6f}",
                f"repro_service_select_latency_seconds_sum {self.select_seconds_sum:.6f}",
                f"repro_service_select_latency_seconds_count {self.selects_served}",
            ]
        wal_segments = 0
        snapshots_retained = 0
        decisions_total = 0
        chain_lines = []
        for session in registry.sessions():
            wal_segments += session.durable.wal_segments
            snapshots_retained += session.durable.snapshots_retained
            recorder = session.durable.recorder
            if recorder is not None:
                decisions_total += recorder.count
                chain_lines.append(
                    f'repro_decision_chain_hash{{'
                    f'session_id="{session.session_id}",'
                    f'chain_head="{recorder.chain_head}"}} 1'
                )
        lines += [
            "# HELP repro_service_wal_segments On-disk WAL segments across "
            "durable sessions.",
            "# TYPE repro_service_wal_segments gauge",
            f"repro_service_wal_segments {wal_segments}",
            "# HELP repro_service_snapshots_retained Snapshots retained across "
            "durable sessions (after GC).",
            "# TYPE repro_service_snapshots_retained gauge",
            f"repro_service_snapshots_retained {snapshots_retained}",
            "# HELP repro_decisions_total Audit decision records across "
            "live sessions.",
            "# TYPE repro_decisions_total counter",
            f"repro_decisions_total {decisions_total}",
            "# HELP repro_decision_chain_hash Decision-chain head per session "
            "(info-style metric; the value is always 1).",
            "# TYPE repro_decision_chain_hash gauge",
            *chain_lines,
        ]
        # The hot-path profile carries its own lock; render it outside ours.
        lines.extend(self.hotpath.render_prometheus())
        return "\n".join(lines) + "\n"


class ServiceApp:
    """The WSGI application: routing, JSON codecs, error mapping."""

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        self.registry = registry if registry is not None else SessionRegistry()
        self.max_body_bytes = int(max_body_bytes)
        self.metrics = ServiceMetrics()
        # Policies built from here on report per-stage hot-path timings
        # into the /metrics histograms (sessions recovered before the app
        # existed keep running unprofiled — attach-at-build only).
        self.registry.hotpath_profile = self.metrics.hotpath

    # -- WSGI entry ----------------------------------------------------------

    def __call__(self, environ, start_response):
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/") or "/"
        endpoint = "other"
        try:
            endpoint, status, body = self._route(method, path, environ)
        except _HTTPError as exc:
            status, body = exc.status, {"error": exc.message}
        except (ConfigurationError, DataError, ValueError) as exc:
            status, body = 400, {"error": str(exc)}
            # Spec validation failures carry the dotted field path (e.g.
            # "serving.max_stale_answers") so clients can point at the
            # offending field without parsing the message.
            path_hint = getattr(exc, "path", None)
            if path_hint:
                body["path"] = path_hint
        except KeyError as exc:
            status, body = 404, {"error": f"Unknown resource: {exc.args[0]!r}"}
        except AssignmentError as exc:
            status, body = 409, {"error": str(exc)}
        except ServiceUnavailableError as exc:
            # A dead shard worker process: explicit 503, never a hang.
            status, body = 503, {"error": str(exc)}
        except (InferenceError, DurabilityError) as exc:
            status, body = 500, {"error": str(exc)}
        if isinstance(body, str):
            payload = body.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            payload = (json.dumps(body) + "\n").encode("utf-8")
            content_type = "application/json"
        self.metrics.observe_request(endpoint, status)
        start_response(
            _STATUS.get(status, _STATUS[500]),
            [
                ("Content-Type", content_type),
                ("Content-Length", str(len(payload))),
            ],
        )
        return [payload]

    # -- routing -------------------------------------------------------------

    def _route(self, method: str, path: str, environ) -> Tuple[str, int, object]:
        if path == "/healthz":
            self._require(method, "GET")
            return "healthz", 200, {
                "status": "ok",
                "sessions": len(self.registry),
            }
        if path == "/metrics":
            self._require(method, "GET")
            return "metrics", 200, self.metrics.render(self.registry)
        if path == "/sessions":
            if method == "GET":
                return "sessions", 200, {"sessions": self.registry.ids()}
            self._require(method, "POST")
            config = self._read_json(environ)
            session = self.registry.create(config)
            return "sessions", 201, session.stats()
        match = _SESSION_PATH.match(path)
        if not match:
            raise _HTTPError(404, f"Unknown path {path!r}")
        session = self.registry.get(match.group("sid"))
        verb, arg = match.group("verb"), match.group("arg")
        if verb is None:
            if method == "DELETE":
                self.registry.remove(session.session_id)
                return "session", 200, {"closed": session.session_id}
            self._require(method, "GET")
            return "session", 200, session.stats()
        if verb == "tasks":
            self._require(method, "GET")
            return "tasks", 200, self._tasks(session, environ)
        if verb == "answers":
            self._require(method, "POST")
            return "answers", 200, self._answers(session, environ)
        if verb == "estimates":
            self._require(method, "GET")
            return "estimates", 200, session.estimates()
        if verb == "config":
            self._require(method, "GET")
            return "config", 200, session.config_payload()
        if verb == "workers":
            self._require(method, "GET")
            if not arg:
                raise _HTTPError(404, "Worker id missing from path")
            return "workers", 200, session.worker_info(arg)
        if verb == "decisions":
            self._require(method, "GET")
            if arg is not None:
                try:
                    decision_id = int(arg)
                except ValueError:
                    raise _HTTPError(
                        400, f"Decision id must be an integer, got {arg!r}"
                    )
                return "decisions", 200, session.decision(decision_id)
            return "decisions", 200, self._decisions(session, environ)
        raise _HTTPError(404, f"Unknown path {path!r}")

    # -- handlers ------------------------------------------------------------

    def _tasks(self, session, environ) -> Dict[str, object]:
        query = parse_qs(environ.get("QUERY_STRING", ""))
        worker = (query.get("worker") or [None])[0]
        if not worker:
            raise _HTTPError(400, "The 'worker' query parameter is required")
        try:
            k = int((query.get("k") or ["1"])[0])
        except ValueError:
            raise _HTTPError(400, "'k' must be an integer")
        if k < 1:
            raise _HTTPError(400, f"'k' must be >= 1, got {k}")
        start = time.perf_counter()
        assignment = session.select(worker, k=k)
        self.metrics.observe_select(time.perf_counter() - start)
        return {
            "session_id": session.session_id,
            "worker": assignment.worker,
            "cells": [[int(row), int(col)] for row, col in assignment.cells],
            "gains": [float(gain) for gain in assignment.gains],
        }

    def _decisions(self, session, environ) -> Dict[str, object]:
        """Paginated audit records: ``GET .../decisions?since=&limit=``."""
        from repro.engine.provenance import DEFAULT_PAGE_LIMIT, MAX_PAGE_LIMIT

        query = parse_qs(environ.get("QUERY_STRING", ""))
        values = {}
        for name, default in (
            ("since", 0), ("limit", DEFAULT_PAGE_LIMIT),
        ):
            raw = (query.get(name) or [None])[0]
            if raw is None:
                values[name] = default
                continue
            try:
                values[name] = int(raw)
            except ValueError:
                raise _HTTPError(400, f"{name!r} must be an integer, got {raw!r}")
            if values[name] < 0:
                raise _HTTPError(400, f"{name!r} must be >= 0, got {values[name]}")
        if values["limit"] > MAX_PAGE_LIMIT:
            raise _HTTPError(
                400,
                f"'limit' must be <= {MAX_PAGE_LIMIT}, got {values['limit']}",
            )
        return session.decisions(since=values["since"], limit=values["limit"])

    def _answers(self, session, environ) -> Dict[str, object]:
        body = self._read_json(environ)
        if not isinstance(body, dict):
            raise _HTTPError(400, "The answers payload must be a JSON object")
        worker = body.get("worker")
        if not isinstance(worker, str) or not worker:
            raise _HTTPError(400, "'worker' must be a non-empty string")
        raw = body.get("answers")
        if not isinstance(raw, list) or not raw:
            raise _HTTPError(400, "'answers' must be a non-empty list")
        items = []
        for index, entry in enumerate(raw):
            if not isinstance(entry, dict):
                raise _HTTPError(400, f"answers[{index}] must be an object")
            for field in ("row", "col", "value"):
                if field not in entry:
                    raise _HTTPError(400, f"answers[{index}] is missing {field!r}")
            for field in ("row", "col"):
                value = entry[field]
                # bool is an int subclass: `true` would silently become
                # row 1.  Strings and floats are rejected too — a JSON
                # client that means 3 can send 3.
                if isinstance(value, bool) or not isinstance(value, int):
                    raise _HTTPError(
                        400,
                        f"answers[{index}].{field} must be an integer, "
                        f"got {value!r}",
                    )
            items.append((entry["row"], entry["col"], entry["value"]))
        total = session.ingest(worker, items)
        self.metrics.observe_answers(len(items))
        return {
            "session_id": session.session_id,
            "accepted": len(items),
            "answers_collected": total,
        }

    # -- plumbing ------------------------------------------------------------

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HTTPError(405, f"Use {expected} for this endpoint")

    def _read_json(self, environ):
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length > self.max_body_bytes:
            raise _HTTPError(
                413,
                f"Request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
            )
        raw = environ["wsgi.input"].read(length) if length > 0 else b""
        if len(raw) < length:
            # A closed connection mid-upload: distinguish from JSON noise.
            raise _HTTPError(
                400,
                f"Truncated request body: Content-Length announced {length} "
                f"bytes but only {len(raw)} arrived",
            )
        if not raw:
            raise _HTTPError(400, "A JSON request body is required")
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HTTPError(400, f"Malformed JSON body: {exc}")


def create_app(
    registry: Optional[SessionRegistry] = None,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> ServiceApp:
    """Build the WSGI application (exposed for tests and embedding)."""
    return ServiceApp(registry, max_body_bytes=max_body_bytes)


# -- server -------------------------------------------------------------------


class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """One thread per request; daemon threads so shutdown never hangs."""

    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    """Per-request access logs are noise for a benchmark/CI server."""

    def log_message(self, format, *args):  # noqa: A002 - wsgiref signature
        pass


class ServiceServer:
    """A running HTTP server around one :class:`ServiceApp`.

    ``port=0`` binds an ephemeral port (the one the integration tests and
    the serving benchmark use); the bound address is ``self.address``.
    """

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        self.app = create_app(registry, max_body_bytes=max_body_bytes)
        self.registry = self.app.registry
        self._httpd = make_server(
            host,
            port,
            self.app,
            server_class=_ThreadingWSGIServer,
            handler_class=_QuietHandler,
        )
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    @property
    def address(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        """Serve requests on a background thread; returns self."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-service",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._serving = True
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop serving, close every session, release the socket."""
        if self._serving:
            # shutdown() waits on serve_forever's exit handshake and would
            # block forever on a server that was bound but never served.
            self._httpd.shutdown()
            self._serving = False
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._httpd.server_close()
        self.registry.close_all()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
