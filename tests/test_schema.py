"""Unit tests for the tabular data model (repro.core.schema)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.schema import AttributeType, Column, TableSchema
from repro.utils.exceptions import ConfigurationError, DataError


class TestColumn:
    def test_categorical_constructor(self):
        column = Column.categorical("aspect", ["food", "service"])
        assert column.is_categorical
        assert not column.is_continuous
        assert column.num_labels == 2
        assert column.labels == ("food", "service")

    def test_continuous_constructor(self):
        column = Column.continuous("age", (18, 80))
        assert column.is_continuous
        assert not column.is_categorical
        assert column.domain == (18.0, 80.0)

    def test_continuous_without_domain(self):
        column = Column.continuous("score")
        assert column.domain == ()

    def test_categorical_needs_two_labels(self):
        with pytest.raises(ConfigurationError):
            Column.categorical("bad", ["only"])

    def test_categorical_rejects_duplicate_labels(self):
        with pytest.raises(ConfigurationError):
            Column.categorical("bad", ["a", "a"])

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Column.categorical("", ["a", "b"])

    def test_continuous_rejects_labels(self):
        with pytest.raises(ConfigurationError):
            Column("x", AttributeType.CONTINUOUS, labels=("a", "b"))

    def test_continuous_rejects_empty_domain(self):
        with pytest.raises(ConfigurationError):
            Column.continuous("x", (5.0, 5.0))

    def test_label_index_roundtrip(self):
        column = Column.categorical("c", ["x", "y", "z"])
        for index, label in enumerate(column.labels):
            assert column.label_index(label) == index

    def test_label_index_unknown_label(self):
        column = Column.categorical("c", ["x", "y"])
        with pytest.raises(DataError):
            column.label_index("missing")

    def test_contains_label(self):
        column = Column.categorical("c", ["x", "y"])
        assert column.contains_label("x")
        assert not column.contains_label("q")

    def test_num_labels_on_continuous_raises(self):
        column = Column.continuous("c", (0, 1))
        with pytest.raises(ConfigurationError):
            _ = column.num_labels

    def test_attribute_type_str(self):
        assert str(AttributeType.CATEGORICAL) == "categorical"
        assert str(AttributeType.CONTINUOUS) == "continuous"

    @given(st.integers(min_value=2, max_value=12))
    def test_label_count_matches_input(self, count):
        labels = [f"l{i}" for i in range(count)]
        assert Column.categorical("c", labels).num_labels == count


class TestTableSchema:
    def _schema(self, num_rows=5):
        return TableSchema.build(
            "entity",
            [
                Column.categorical("cat", ["a", "b", "c"]),
                Column.continuous("num", (0, 10)),
            ],
            num_rows,
        )

    def test_basic_sizes(self):
        schema = self._schema(5)
        assert schema.num_rows == 5
        assert schema.num_columns == 2
        assert schema.num_cells == 10

    def test_column_lookup_by_name_and_index(self):
        schema = self._schema()
        assert schema.column("cat").name == "cat"
        assert schema.column(1).name == "num"
        assert schema.column_index("num") == 1

    def test_unknown_column_name(self):
        schema = self._schema()
        with pytest.raises(DataError):
            schema.column_index("missing")

    def test_categorical_and_continuous_indices(self):
        schema = self._schema()
        assert schema.categorical_indices == (0,)
        assert schema.continuous_indices == (1,)

    def test_cells_iterates_all(self):
        schema = self._schema(3)
        cells = list(schema.cells())
        assert len(cells) == 6
        assert cells[0] == (0, 0)
        assert cells[-1] == (2, 1)

    def test_validate_cell_bounds(self):
        schema = self._schema(3)
        schema.validate_cell(2, 1)
        with pytest.raises(DataError):
            schema.validate_cell(3, 0)
        with pytest.raises(DataError):
            schema.validate_cell(0, 2)
        with pytest.raises(DataError):
            schema.validate_cell(-1, 0)

    def test_validate_value(self):
        schema = self._schema()
        schema.validate_value(0, "a")
        schema.validate_value(1, 3.5)
        with pytest.raises(DataError):
            schema.validate_value(0, "zzz")
        with pytest.raises(DataError):
            schema.validate_value(1, "not-a-number")

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(ConfigurationError):
            TableSchema.build(
                "e",
                [Column.continuous("x"), Column.continuous("x")],
                3,
            )

    def test_entity_attribute_must_not_collide(self):
        with pytest.raises(ConfigurationError):
            TableSchema.build("x", [Column.continuous("x")], 3)

    def test_needs_at_least_one_column(self):
        with pytest.raises(ConfigurationError):
            TableSchema.build("e", [], 3)

    def test_needs_positive_rows(self):
        with pytest.raises(ConfigurationError):
            TableSchema.build("e", [Column.continuous("x")], 0)

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=8))
    def test_num_cells_is_product(self, rows, cols):
        columns = [Column.continuous(f"c{i}") for i in range(cols)]
        schema = TableSchema.build("e", columns, rows)
        assert schema.num_cells == rows * cols
        assert len(list(schema.cells())) == rows * cols
