"""Durability tests: WAL framing, snapshot store, bit-identical recovery.

The crash-recovery tests drive the golden-trace scenario through a
:class:`~repro.service.wal.DurableSession`, kill it mid-run (optionally
tearing the WAL tail mid-record), recover into a fresh policy and continue —
asserting the full assignment sequence and the final estimates match an
uninterrupted run bit for bit, across every serving mode.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.core.assignment import TCrowdAssigner
from repro.core.inference import TCrowdModel
from repro.service.bench import (
    DEFAULT_SCENARIO,
    continue_scripted_session,
    run_scripted_session,
    verify_recovery_identical,
)
from repro.service.wal import (
    DurableSession,
    SnapshotStore,
    WriteAheadLog,
    deserialize_result,
    durable_summary,
    read_wal,
    serialize_result,
)
from repro.utils.exceptions import ConfigurationError, DurabilityError

GOLDEN_FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "golden_trace.json"


class TestResultCodec:
    def test_round_trip_is_bit_exact(self, mixed_schema, fitted_result):
        payload = json.loads(json.dumps(serialize_result(fitted_result)))
        restored = deserialize_result(payload, mixed_schema)
        np.testing.assert_array_equal(restored.alpha, fitted_result.alpha)
        np.testing.assert_array_equal(restored.beta, fitted_result.beta)
        np.testing.assert_array_equal(restored.phi, fitted_result.phi)
        np.testing.assert_array_equal(
            restored.column_scale, fitted_result.column_scale
        )
        np.testing.assert_array_equal(
            restored.column_offset, fitted_result.column_offset
        )
        assert restored.worker_ids == fitted_result.worker_ids
        assert set(restored.posteriors) == set(fitted_result.posteriors)
        for key, original in fitted_result.posteriors.items():
            rebuilt = restored.posteriors[key]
            if original.is_categorical:
                # from_normalized must reinstate the exact stored mass, not
                # a renormalisation of it.
                np.testing.assert_array_equal(rebuilt.probs, original.probs)
                assert rebuilt.labels == original.labels
            else:
                assert rebuilt.mean == original.mean
                assert rebuilt.variance == original.variance

    def test_round_trip_preserves_estimates_and_diagnostics(
        self, mixed_schema, fitted_result
    ):
        restored = deserialize_result(
            serialize_result(fitted_result), mixed_schema
        )
        for row in range(mixed_schema.num_rows):
            for col in range(mixed_schema.num_columns):
                assert restored.estimate(row, col) == fitted_result.estimate(
                    row, col
                )
        assert restored.n_iterations == fitted_result.n_iterations
        assert restored.converged == fitted_result.converged
        assert restored.stopped_by == fitted_result.stopped_by
        assert restored.objective_trace == fitted_result.objective_trace

    def test_unknown_posterior_kind_is_rejected(self, mixed_schema, fitted_result):
        payload = serialize_result(fitted_result)
        payload["posteriors"][0][2] = "weird"
        with pytest.raises(DurabilityError):
            deserialize_result(payload, mixed_schema)


class TestWriteAheadLog:
    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        assert wal.append({"t": "select", "w": "w0", "k": 3}) == 0
        assert wal.append({"t": "answers", "w": "w0", "a": [[0, 1, "x"]]}) == 1
        wal.close()
        records, valid_bytes = read_wal(path)
        assert len(records) == 2
        assert records[0]["w"] == "w0"
        assert valid_bytes == path.stat().st_size

    def test_torn_tail_is_dropped_and_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        for index in range(3):
            wal.append({"t": "select", "w": f"w{index}", "k": 1})
        wal.close()
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # cut into the final record
        records, valid_bytes = read_wal(path)
        assert len(records) == 2
        # Reopening truncates the torn bytes so new appends never merge
        # with the partial line.
        reopened = WriteAheadLog(path)
        assert reopened.record_count == 2
        reopened.append({"t": "select", "w": "w9", "k": 1})
        reopened.close()
        records, _ = read_wal(path)
        assert [r["w"] for r in records] == ["w0", "w1", "w9"]

    def test_corrupt_middle_record_invalidates_the_rest(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        lines = [
            json.dumps({"t": "select", "w": "a", "k": 1}),
            "{not json",
            json.dumps({"t": "select", "w": "b", "k": 1}),
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        records, _ = read_wal(path)
        assert [r["w"] for r in records] == ["a"]

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.close()
        with pytest.raises(DurabilityError):
            wal.append({"t": "select", "w": "w", "k": 1})

    def test_fsync_mode_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=True)
        wal.append({"t": "estimates"})
        wal.close()
        assert read_wal(tmp_path / "wal.jsonl")[0] == [{"t": "estimates"}]


class TestSnapshotStore:
    @staticmethod
    def _payload(epoch, answers_seen, wal_records):
        return {
            "format": 1,
            "epoch": epoch,
            "answers_seen": answers_seen,
            "wal_records": wal_records,
            "model": None,
        }

    def test_latest_orders_by_epoch(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(self._payload(0, 10, 2))
        store.save(self._payload(2, 50, 9))
        store.save(self._payload(1, 30, 5))
        assert [p.name for p in store.paths()] == [
            "snapshot-000000-00000010.json",
            "snapshot-000001-00000030.json",
            "snapshot-000002-00000050.json",
        ]
        assert store.latest().epoch == 2

    def test_latest_skips_snapshots_past_the_surviving_log(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(self._payload(0, 10, 2))
        store.save(self._payload(1, 50, 9))
        snapshot = store.latest(max_wal_records=4)
        assert snapshot.epoch == 0

    def test_latest_skips_corrupt_files(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(self._payload(0, 10, 2))
        (tmp_path / "snapshot-000001-00000099.json").write_text("{broken")
        assert store.latest().epoch == 0

    def test_empty_store(self, tmp_path):
        assert SnapshotStore(tmp_path / "none").latest() is None


class TestDurableSession:
    def test_in_memory_mode_has_no_durability(self, mixed_schema):
        policy = TCrowdAssigner(
            mixed_schema, model=TCrowdModel(max_iterations=2)
        )
        session = DurableSession(mixed_schema, policy)
        assert not session.durable
        assert session.events == []
        assert session.snapshot() is None
        session.append_answers("w0", [(0, 0, "red")], observe=False)
        assert len(session.answers) == 1
        session.close()

    def test_fresh_guard_refuses_existing_log(self, tmp_path, mixed_schema):
        policy = TCrowdAssigner(
            mixed_schema, model=TCrowdModel(max_iterations=2)
        )
        session = DurableSession(mixed_schema, policy, directory=tmp_path)
        session.append_answers("w0", [(0, 0, "red")], observe=False)
        session.close()
        with pytest.raises(ConfigurationError):
            DurableSession(mixed_schema, policy, directory=tmp_path, fresh=True)

    def test_invalid_snapshot_cadence(self, mixed_schema):
        policy = TCrowdAssigner(mixed_schema, model=TCrowdModel())
        with pytest.raises(ConfigurationError):
            DurableSession(mixed_schema, policy, snapshot_every=0)

    def test_estimates_require_answers_and_capable_policy(self, mixed_schema):
        policy = TCrowdAssigner(
            mixed_schema, model=TCrowdModel(max_iterations=2)
        )
        session = DurableSession(mixed_schema, policy)
        with pytest.raises(ConfigurationError):
            session.estimates()

    def test_malformed_answers_never_reach_the_log(self, tmp_path, mixed_schema):
        policy = TCrowdAssigner(
            mixed_schema, model=TCrowdModel(max_iterations=2)
        )
        session = DurableSession(mixed_schema, policy, directory=tmp_path)
        with pytest.raises(Exception):
            session.append_answers("w0", [(0, 0, "not-a-label")])
        assert session.wal_records == 0
        session.close()


class TestCrashRecovery:
    """Kill / truncate / recover / continue — must match uninterrupted runs."""

    @pytest.mark.parametrize("mode", ["plain", "sharded", "async", "sharded_async"])
    def test_recovery_is_bit_identical(self, mode, tmp_path):
        summary = verify_recovery_identical(
            mode=mode,
            directory=tmp_path,
            crash_after_steps=3,
            truncate_bytes=7,
            snapshot_every=25,
        )
        assert summary["recovery_decisions_identical"], summary
        assert summary["recovery_estimates_identical"], summary
        assert summary["recovery_identical"], summary

    def test_snapshot_fast_path_recovery(self, tmp_path):
        """A dense snapshot cadence must shortcut the replay, identically."""
        summary = verify_recovery_identical(
            mode="plain",
            directory=tmp_path,
            crash_after_steps=4,
            truncate_bytes=7,
            snapshot_every=7,
        )
        assert summary["recovery_identical"], summary
        assert summary["recovery_snapshot_epoch"] is not None
        # The whole point of the snapshot: only the tail replays.
        assert summary["recovery_replayed_records"] <= 3

    def test_recovery_without_truncation(self, tmp_path):
        """A clean kill (complete final record) also recovers identically."""
        summary = verify_recovery_identical(
            mode="plain",
            directory=tmp_path,
            crash_after_steps=2,
            truncate_bytes=0,
            snapshot_every=25,
        )
        assert summary["recovery_identical"], summary

    def test_durable_run_matches_the_committed_golden_trace(self, tmp_path):
        """The WAL-logged scenario is the golden-trace scenario: the logged
        decisions must match the committed fixture bit for bit."""
        outcome = run_scripted_session("plain", directory=tmp_path)
        fixture = json.loads(GOLDEN_FIXTURE.read_text(encoding="utf-8"))
        expected = [
            (worker, tuple((int(r), int(c)) for r, c in cells))
            for worker, cells in fixture["decisions"]
        ]
        assert outcome["decisions"] == expected
        # And the log itself reconstructs them (the recovery driver's view).
        assert outcome["session"].loop_decisions() == expected

    def test_continuation_resumes_dangling_select(self, tmp_path):
        """Tearing the WAL inside the final answers record leaves a logged
        select without its batch; the continuation must re-issue it rather
        than drawing a fresh worker."""
        run_scripted_session(
            "plain", directory=tmp_path, crash_after_steps=2, snapshot_every=25
        )
        wal_path = tmp_path / "wal.jsonl"
        wal_path.write_bytes(wal_path.read_bytes()[:-5])
        probe = DurableSession(
            _scenario_schema(),
            _scenario_policy(),
            directory=tmp_path,
            snapshot_every=25,
        )
        assert probe.dangling_select() is not None
        probe.close()
        continued = continue_scripted_session(
            "plain", directory=tmp_path, snapshot_every=25
        )
        baseline = run_scripted_session("plain")
        assert continued["decisions"] == baseline["decisions"]
        assert continued["estimates"] == baseline["estimates"]

    def test_fallback_recovery_discards_lost_timeline_and_continues_epochs(
        self, tmp_path
    ):
        """A WAL torn back past the newest snapshot's coverage must (a) fall
        back to an older snapshot / full replay, (b) delete the stranded
        snapshot so no later recovery can resurrect the lost timeline, and
        (c) never reuse its epoch number — all while continuing
        bit-identically."""
        run_scripted_session(
            "plain", directory=tmp_path, crash_after_steps=4, snapshot_every=7
        )
        store = SnapshotStore(tmp_path / "snapshots")
        before = store.paths()
        assert len(before) >= 2
        next_epoch_before = store.next_epoch()
        newest = json.loads(before[-1].read_text(encoding="utf-8"))
        # keep one record fewer than the newest snapshot covers
        wal_path = tmp_path / "wal.jsonl"
        lines = wal_path.read_bytes().splitlines(keepends=True)
        wal_path.write_bytes(b"".join(lines[: newest["wal_records"] - 1]))

        continued = continue_scripted_session(
            "plain", directory=tmp_path, snapshot_every=7
        )
        baseline = run_scripted_session("plain")
        assert continued["decisions"] == baseline["decisions"]
        assert continued["estimates"] == baseline["estimates"]
        remaining = [path.name for path in store.paths()]
        assert before[-1].name not in remaining  # lost timeline discarded
        epochs = sorted(int(name.split("-")[1]) for name in remaining)
        assert len(set(epochs)) == len(epochs)  # unique forever
        assert max(epochs) >= next_epoch_before  # counter never rewound

    def test_recovered_session_logs_and_summarises(self, tmp_path):
        run_scripted_session(
            "plain", directory=tmp_path, crash_after_steps=3, snapshot_every=10
        )
        summary = durable_summary(tmp_path)
        assert summary["wal_records"] > 0
        assert summary["snapshots"] > 0
        assert summary["answers_logged"] > DEFAULT_SCENARIO["num_rows"]


def _scenario_schema():
    from repro.datasets import load_celebrity

    return load_celebrity(
        seed=DEFAULT_SCENARIO["seed"], num_rows=DEFAULT_SCENARIO["num_rows"]
    ).schema


def _scenario_policy():
    return TCrowdAssigner(
        _scenario_schema(),
        model=TCrowdModel(**DEFAULT_SCENARIO["model_kwargs"]),
        refit_every=1,
        warm_start=True,
    )
