"""Case studies of Section 6.4: Figures 3, 4 and 6 (on Restaurant).

* Figure 3 — per-worker per-attribute error heat map, showing that a worker's
  quality is consistent across attributes of both datatypes.
* Figure 4 — calibration of the estimated worker quality against the actual
  quality (computed from the ground truth), with the Pearson correlation the
  paper quotes (0.844 categorical / 0.841 continuous).
* Figure 6 — correlation among attributes: the Aspect x Sentiment
  correct/wrong contingency table and the conditional error distribution of
  EndTarget given the observed StartTarget error.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.correlation import AttributeCorrelationModel
from repro.core.inference import TCrowdModel
from repro.datasets import load_restaurant
from repro.datasets.base import CrowdDataset
from repro.experiments.reporting import ExperimentReport
from repro.metrics import pearson_correlation


def _actual_worker_errors(dataset: CrowdDataset) -> Dict[str, Dict[int, List[float]]]:
    """Per-worker, per-column errors against the *ground truth*."""
    errors: Dict[str, Dict[int, List[float]]] = {}
    for answer in dataset.answers:
        column = dataset.schema.columns[answer.col]
        truth = dataset.truth(answer.row, answer.col)
        if column.is_categorical:
            error = 0.0 if answer.value == truth else 1.0
        else:
            error = float(answer.value) - float(truth)
        errors.setdefault(answer.worker, {}).setdefault(answer.col, []).append(error)
    return errors


def run_figure3_worker_consistency(
    seed: int = 11,
    num_rows: Optional[int] = None,
    top_workers: int = 25,
) -> ExperimentReport:
    """Reproduce Figure 3 (uniform worker quality heat map data)."""
    kwargs = {"seed": seed}
    if num_rows:
        kwargs["num_rows"] = num_rows
    dataset = load_restaurant(**kwargs)
    errors = _actual_worker_errors(dataset)
    # The paper plots the 25 workers with the most answers.
    ranked = sorted(
        errors, key=lambda worker: sum(len(v) for v in errors[worker].values()),
        reverse=True,
    )[:top_workers]

    schema = dataset.schema
    report = ExperimentReport(
        experiment_id="figure3",
        title="Uniform worker quality: per-worker per-attribute error (Restaurant)",
        headers=["Worker"] + [column.name for column in schema.columns],
    )
    for worker in ranked:
        row: List = [worker]
        for col, column in enumerate(schema.columns):
            values = errors[worker].get(col, [])
            if not values:
                row.append(None)
            elif column.is_categorical:
                row.append(float(np.mean(values)))            # error rate
            else:
                row.append(float(np.std(values)))             # error std-dev
        report.add_row(*row)
    report.add_note(
        "Categorical columns show the worker's error rate, continuous columns "
        "the standard deviation of the worker's errors; consistent colours "
        "across a column-pair mean consistent quality."
    )
    # A summary statistic of consistency: correlation between the worker's
    # mean categorical error and mean continuous |error| (z-scored per column).
    consistency = _consistency_correlation(dataset, errors, ranked)
    if consistency is not None:
        report.add_note(
            f"Correlation between per-worker categorical error rate and mean "
            f"normalised continuous error: {consistency:.3f}"
        )
    return report


def _consistency_correlation(dataset, errors, workers) -> Optional[float]:
    schema = dataset.schema
    if not schema.categorical_indices or not schema.continuous_indices:
        return None
    column_std = {
        col: max(dataset.column_truth_std(col), 1e-9)
        for col in schema.continuous_indices
    }
    cat_scores, cont_scores = [], []
    for worker in workers:
        cat_values = [
            value
            for col in schema.categorical_indices
            for value in errors[worker].get(col, [])
        ]
        cont_values = [
            abs(value) / column_std[col]
            for col in schema.continuous_indices
            for value in errors[worker].get(col, [])
        ]
        if not cat_values or not cont_values:
            continue
        cat_scores.append(float(np.mean(cat_values)))
        cont_scores.append(float(np.mean(cont_values)))
    if len(cat_scores) < 3:
        return None
    return pearson_correlation(cat_scores, cont_scores)


def run_figure4_quality_calibration(
    seed: int = 11,
    num_rows: Optional[int] = None,
    model_kwargs: Optional[dict] = None,
) -> ExperimentReport:
    """Reproduce Figure 4 (estimated vs actual worker quality calibration)."""
    kwargs = {"seed": seed}
    if num_rows:
        kwargs["num_rows"] = num_rows
    dataset = load_restaurant(**kwargs)
    model = TCrowdModel(**(model_kwargs or {}))
    result = model.fit(dataset.schema, dataset.answers)
    errors = _actual_worker_errors(dataset)
    schema = dataset.schema

    cat_points, cont_points = [], []
    for worker in result.worker_ids:
        worker_errors = errors.get(worker, {})
        cat_values = [
            value
            for col in schema.categorical_indices
            for value in worker_errors.get(col, [])
        ]
        cont_values = [
            value / max(dataset.column_truth_std(col), 1e-9)
            for col in schema.continuous_indices
            for value in worker_errors.get(col, [])
        ]
        estimated_error = 1.0 - result.worker_quality(worker)
        estimated_std = float(np.sqrt(result.worker_variance(worker)))
        if len(cat_values) >= 3:
            cat_points.append((estimated_error, float(np.mean(cat_values))))
        if len(cont_values) >= 3:
            cont_points.append((estimated_std, float(np.std(cont_values))))

    report = ExperimentReport(
        experiment_id="figure4",
        title="Estimated vs actual worker quality (Restaurant)",
        headers=["Datatype", "#workers", "Pearson correlation"],
    )
    if len(cat_points) >= 3:
        corr = pearson_correlation(
            [p[0] for p in cat_points], [p[1] for p in cat_points]
        )
        report.add_row("categorical", len(cat_points), corr)
        report.add_series("categorical (estimated error, actual error)", cat_points)
    if len(cont_points) >= 3:
        corr = pearson_correlation(
            [p[0] for p in cont_points], [p[1] for p in cont_points]
        )
        report.add_row("continuous", len(cont_points), corr)
        report.add_series("continuous (estimated std, actual std)", cont_points)
    report.add_note(
        "The paper reports correlations of 0.844 (categorical) and 0.841 "
        "(continuous) between estimated and actual quality."
    )
    return report


def run_figure6_attribute_correlation(
    seed: int = 11,
    num_rows: Optional[int] = None,
    model_kwargs: Optional[dict] = None,
) -> ExperimentReport:
    """Reproduce Figure 6 (correlation among attributes on Restaurant)."""
    kwargs = {"seed": seed}
    if num_rows:
        kwargs["num_rows"] = num_rows
    dataset = load_restaurant(**kwargs)
    model = TCrowdModel(**(model_kwargs or {}))
    result = model.fit(dataset.schema, dataset.answers)
    schema = dataset.schema
    aspect = schema.column_index("aspect")
    sentiment = schema.column_index("sentiment")
    start = schema.column_index("start_target")
    end = schema.column_index("end_target")

    # Left panel: Aspect x Sentiment correct/wrong contingency table (against
    # the ground truth, like the paper's table).
    table = np.zeros((2, 2), dtype=int)
    by_worker_row: Dict[tuple, Dict[int, bool]] = {}
    for answer in dataset.answers:
        if answer.col not in (aspect, sentiment):
            continue
        correct = answer.value == dataset.truth(answer.row, answer.col)
        by_worker_row.setdefault((answer.worker, answer.row), {})[answer.col] = correct
    for observations in by_worker_row.values():
        if aspect in observations and sentiment in observations:
            i = 0 if observations[aspect] else 1
            j = 0 if observations[sentiment] else 1
            table[i, j] += 1

    report = ExperimentReport(
        experiment_id="figure6",
        title="Correlation among attributes (Restaurant)",
        headers=["Aspect \\ Sentiment", "correct", "wrong"],
    )
    report.add_row("correct", int(table[0, 0]), int(table[0, 1]))
    report.add_row("wrong", int(table[1, 0]), int(table[1, 1]))
    if table[0].sum() and table[1].sum():
        p_given_correct = table[0, 0] / table[0].sum()
        p_given_wrong = table[1, 0] / table[1].sum()
        report.add_note(
            f"P(Sentiment correct | Aspect correct) = {p_given_correct:.2f}, "
            f"P(Sentiment correct | Aspect wrong) = {p_given_wrong:.2f} "
            "(paper: 0.86 vs 0.73)"
        )

    # Right panel: conditional Gaussians of the EndTarget error given the
    # observed StartTarget error, from the fitted correlation model.
    correlation = AttributeCorrelationModel.fit(dataset.answers, result)
    weight = correlation.weight(end, start)
    report.add_note(
        f"Pearson correlation between StartTarget and EndTarget errors: {weight:.3f}"
    )
    for observed in (0.0, 3.0, 6.0):
        conditional = correlation.conditional_error(end, start, observed)
        report.add_series(
            f"P(EndTarget error | StartTarget error = {observed:g})",
            [(conditional.mean, conditional.variance)],
        )
    return report
