"""Numerically careful primitives used throughout inference.

The EM algorithm of Section 4 multiplies many small probabilities (per-cell
posteriors over labels) and evaluates ``erf`` deep in its tails, so all the
probability arithmetic in the library goes through the log-space helpers in
this module.
"""

from __future__ import annotations

import numpy as np
from scipy import special

#: Smallest probability we allow before taking a logarithm.
_EPS = 1e-12

#: erf values are clipped into (ERF_FLOOR, 1 - ERF_FLOOR) so that both
#: ``log(q)`` and ``log(1 - q)`` stay finite.
_ERF_FLOOR = 1e-10


def safe_log(x):
    """Return ``log(max(x, eps))`` elementwise, avoiding ``-inf``."""
    return np.log(np.maximum(x, _EPS))


def safe_erf(x):
    """Return ``erf(x)`` clipped away from exactly 0 and 1.

    Worker qualities in the paper are ``erf(eps / sqrt(2 * variance))``; for a
    spammer the variance can be huge and for an expert tiny, driving the erf
    to 0 or 1 and its log-likelihood to ``-inf``.  Clipping keeps gradients
    finite without visibly changing the optimum.
    """
    return np.clip(special.erf(x), _ERF_FLOOR, 1.0 - _ERF_FLOOR)


def log_erf(x):
    """Return ``log(erf(x))`` with clipping (see :func:`safe_erf`)."""
    return np.log(safe_erf(x))


def logsumexp(log_values, axis=None):
    """Stable log-sum-exp reduction (thin wrapper over scipy)."""
    return special.logsumexp(log_values, axis=axis)


def normalize_log_probs(log_values, axis=-1):
    """Exponentiate and normalise log-probabilities along ``axis``."""
    log_values = np.asarray(log_values, dtype=float)
    shifted = log_values - np.max(log_values, axis=axis, keepdims=True)
    probs = np.exp(shifted)
    total = np.sum(probs, axis=axis, keepdims=True)
    return probs / np.maximum(total, _EPS)


def safe_var(values, floor: float = 1e-6) -> float:
    """Population variance of ``values`` floored away from zero.

    Several estimators (GTM, CRH weights, the correlation models of Section
    5.2) divide by empirical variances that can collapse to zero when a
    column received identical answers; the floor keeps them well defined.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return floor
    return float(max(np.var(values), floor))
