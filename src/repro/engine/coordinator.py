"""Process-level sharded serving: a coordinator over shard-group workers.

Every serving mode of PRs 1–6 — incremental, sharded, async, composed —
runs in one Python process, so the GIL caps throughput no matter how fast
the composed hot path gets.  This module moves the scoring/refit work out
of process:

* :class:`ShardGroupScorer` — everything **one worker process** does, as a
  plain in-process object (so the logic is unit-testable without spawning
  anything): it trails the coordinator's answer WAL, rebuilds the
  :class:`~repro.core.assignment.TCrowdAssigner` from a JSON-safe spec
  payload, keeps a :class:`~repro.engine.sharding.ShardedSessionState`
  restricted to its contiguous shard group, refits on the exact cadence of
  the single-process path, and answers ``select`` requests with its local
  stable top-K.
* :class:`ProcessShardCoordinator` — the
  :class:`~repro.core.assignment.AssignmentPolicy` the factory returns for
  ``ServingSpec.processes >= 1``.  It spawns one worker process per shard
  group, routes every ingested answer to the shared answer WAL (each
  answer's row has exactly one owning worker for candidate accounting;
  the refit stream is global because the paper's EM couples all rows
  through the worker-quality estimates), fans each select out to all
  workers and merges the per-worker top-Ks with
  :func:`~repro.core.assignment.merge_top_k_stable`.

Wire protocol
-------------
Transport is one ``multiprocessing.Pipe`` per worker.  Messages are UTF-8
JSON objects framed by ``Connection.send_bytes`` / ``recv_bytes`` — i.e. a
4-byte little-endian length prefix followed by the JSON payload.  Requests
carry an ``"op"`` key; replies are either the op's result object or
``{"error": {"type": ..., "message": ...}}``, which the coordinator
re-raises as the matching :mod:`repro.utils.exceptions` class.

===========  ==================================================  =========================================
op           request fields                                      reply fields
===========  ==================================================  =========================================
``sync``     ``count`` (WAL records to trail up to)              ``epoch``, ``answers_seen``
``select``   ``worker``, ``k``, ``audit``?, ``decision``?        ``n`` (candidates), ``top`` ``[[gain,row,col],…]``, ``prov``?
``final``    —                                                   ``result`` (codec of :func:`serialize_result`)
``snapshot``  —                                                  ``state`` (``null`` or result+``answers_seen``)
``restore``  ``result``, ``answers_seen``                        ``epoch``, ``answers_seen``
``stats``    —                                                   ``epoch``, ``answers_seen``, ``shards``, …
``shutdown``  —                                                  ``{"ok": true}`` then the process exits
===========  ==================================================  =========================================

Answers never ride the pipe: the coordinator appends them to an append-only
JSONL WAL (the same torn-tail-safe format as :mod:`repro.service.wal`) and
``sync`` only names the record count to trail up to.  Each record is
``{"a": [[worker, row, col, value], …], "o": bool}`` — one record per
ingest/observe event, with ``"o"`` carrying whether the event was an
``observe`` so workers replay the refit cadence faithfully.  A restarted
worker replays the WAL from record zero, rebuilding the warm-start chain
bit for bit — the same replay contract the service layer's durable WAL
pins.

Equivalence
-----------
Every worker applies the full answer stream through an identical,
deterministic assigner, so all workers hold bit-identical models at every
point of the session, and each one's refit chain equals the single-process
chain.  Selects score each worker's contiguous candidate block with that
model; shipping only the per-worker stable top-K preserves the global
stable order because within-block order survives compression and
cross-block ties still resolve by block order.  The merged sequence is
therefore bit-identical to the single-process path — recorded as
``identical_assignments_multiprocess`` by the benchmark and replayed
against the golden trace in ``tests/test_coordinator.py``.

Failure model
-------------
``Connection`` errors, a reply timeout, or a dead process all raise
:class:`~repro.utils.exceptions.ServiceUnavailableError`, which the HTTP
layer maps to a 503 — a crashed shard worker is an explicit, fast error,
never a hang.  :meth:`ProcessShardCoordinator.restart_worker` respawns a
worker and replays it back to the current WAL position;
:meth:`ProcessShardCoordinator.close` shuts the fleet down gracefully
(``shutdown`` op, then join, then terminate/kill stragglers).

Worker stdout/stderr is redirected to ``worker-<i>.log`` under
``$REPRO_WORKER_LOG_DIR`` (or the spool directory) so CI can upload the
logs of a failed multi-process run as an artifact.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import pathlib
import shutil
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.assignment import (
    AssignmentPolicy,
    BatchAssignment,
    TCrowdAssigner,
    merge_top_k_stable,
    top_k_stable,
)
from repro.core.schema import TableSchema
from repro.engine.sharding import ShardedSessionState
from repro.utils.exceptions import (
    AssignmentError,
    ConfigurationError,
    DataError,
    InferenceError,
    ReproError,
    ServiceUnavailableError,
)

Cell = Tuple[int, int]

_log = logging.getLogger("repro.engine.coordinator")

#: Where worker processes write their ``worker-<i>.log`` files.
LOG_DIR_ENV = "REPRO_WORKER_LOG_DIR"
#: Per-request reply timeout override (seconds, float).
TIMEOUT_ENV = "REPRO_WORKER_TIMEOUT"
_DEFAULT_TIMEOUT = 60.0

_MODEL_FIELDS = (
    "epsilon", "max_iterations", "tolerance", "m_step_iterations",
    "difficulty_regularization", "phi_regularization", "use_difficulty",
    "standardize_continuous", "m_step",
)
_POLICY_FIELDS = (
    "use_structure", "refit_every", "continuous_samples",
    "max_answers_per_cell", "min_pairs", "warm_start", "vectorized",
    "incremental", "refit_tol",
)
_ERROR_TYPES = {
    cls.__name__: cls
    for cls in (
        AssignmentError, ConfigurationError, DataError, InferenceError,
        ServiceUnavailableError,
    )
}


def _json_seed(seed) -> Optional[int]:
    """A JSON-safe seed: plain non-negative ints survive, anything else is None."""
    if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
        return None
    return int(seed)


def worker_spec_from_assigner(assigner: TCrowdAssigner) -> dict:
    """JSON-safe payload from which a worker rebuilds an equivalent assigner.

    Reconstructed from the *live* assigner rather than a
    :class:`~repro.config.SessionSpec` because the factory's
    :func:`~repro.config.factory.wrap_policy` seam only sees the serving
    section — benchmark matrix overrides (``warm_start`` / ``vectorized`` /
    ``incremental`` per timed path) live on the assigner itself.
    """
    model = {name: getattr(assigner.model, name) for name in _MODEL_FIELDS}
    model["seed"] = _json_seed(assigner.model.seed)
    policy = {name: getattr(assigner, name) for name in _POLICY_FIELDS}
    policy["seed"] = _json_seed(assigner.seed)
    strategy = None if assigner.strategy is None else assigner.strategy.spec.to_dict()
    return {"model": model, "policy": policy, "strategy": strategy}


def build_worker_assigner(schema: TableSchema, payload: dict) -> TCrowdAssigner:
    """The worker-side twin of the coordinator's assigner."""
    from repro.config.spec import StrategySpec
    from repro.core.inference import TCrowdModel
    from repro.strategies import build_strategy

    strategy_payload = payload.get("strategy")
    strategy = (
        None
        if strategy_payload is None
        else build_strategy(StrategySpec.from_dict(strategy_payload))
    )
    return TCrowdAssigner(
        schema,
        model=TCrowdModel(**payload["model"]),
        strategy=strategy,
        **payload["policy"],
    )


def _mp_context():
    """A fork-free multiprocessing context.

    ``fork`` under a threaded parent (the WSGI server) is deprecated on
    Python 3.12 and genuinely unsafe; ``forkserver`` keeps spawn cost low
    where available, ``spawn`` is the portable fallback.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn"
    )


def _read_new_records(path: pathlib.Path, offset: int) -> Tuple[List[dict], int]:
    """Complete JSONL records appearing at or after byte ``offset``.

    The coordinator flushes every append before naming its count in a
    ``sync``, so a torn tail here would mean a corrupted spool — surfaced
    as an error by the caller when the record count falls short.
    """
    records: List[dict] = []
    with open(path, "rb") as handle:
        handle.seek(offset)
        for line in handle:
            if not line.endswith(b"\n"):
                break
            records.append(json.loads(line.decode("utf-8")))
            offset += len(line)
    return records, offset


class ShardGroupScorer:
    """One worker's state machine, runnable in-process (tests) or out (serving).

    Parameters
    ----------
    schema:
        The table schema (workers rebuild it from the coordinator's
        JSON codec).
    spec_payload:
        :func:`worker_spec_from_assigner` output.
    num_shards:
        The *global* shard count — every worker partitions rows
        identically, so the concatenation of per-worker candidate blocks
        is the global row-major candidate list.
    shard_lo, shard_hi:
        Half-open range of shard indices this worker owns (contiguous, so
        the owned rows are one contiguous block).
    wal_path:
        The coordinator's answer WAL to trail.
    """

    def __init__(
        self,
        schema: TableSchema,
        spec_payload: dict,
        num_shards: int,
        shard_lo: int,
        shard_hi: int,
        wal_path,
    ) -> None:
        self.schema = schema
        self.assigner = build_worker_assigner(schema, spec_payload)
        self.shards = range(int(shard_lo), int(shard_hi))
        self._state = ShardedSessionState(
            schema,
            num_shards=num_shards,
            max_answers_per_cell=self.assigner.max_answers_per_cell,
        )
        self.answers = AnswerSet(schema)
        self._wal_path = pathlib.Path(wal_path)
        self._wal_offset = 0
        self.records_applied = 0
        #: Published refit epoch: +1 per completed fit, exactly the
        #: ``(epoch, answers_seen)`` protocol of ``AsyncRefitEngine``.
        self.epoch = 0
        self._fit_marker = self.assigner.answers_at_last_fit
        # Model-state hash for audit provenance, cached per fit: the state
        # only changes when answers_at_last_fit moves.
        self._hash_marker: Optional[int] = None
        self._hash_value: Optional[str] = None

    # -- the (epoch, answers_seen) snapshot the worker publishes -----------

    def published_state(self) -> Dict[str, int]:
        """``(epoch, answers_seen)`` of the newest completed fit."""
        return {
            "epoch": self.epoch,
            "answers_seen": self.assigner.answers_at_last_fit,
        }

    def _bump_epoch(self) -> None:
        marker = self.assigner.answers_at_last_fit
        if marker != self._fit_marker:
            self._fit_marker = marker
            self.epoch += 1

    # -- WAL trailing --------------------------------------------------------

    def sync_to(self, count: int) -> Dict[str, int]:
        """Apply WAL records until ``records_applied == count``."""
        if count < self.records_applied:
            raise ServiceUnavailableError(
                f"answer WAL went backwards: have {self.records_applied} "
                f"records, coordinator names {count}"
            )
        if count > self.records_applied:
            records, self._wal_offset = _read_new_records(
                self._wal_path, self._wal_offset
            )
            for record in records:
                self.apply_record(record)
            if self.records_applied < count:
                raise ServiceUnavailableError(
                    f"answer WAL is short: coordinator names {count} "
                    f"records, spool holds {self.records_applied}"
                )
        return self.published_state()

    def apply_record(self, record: dict) -> None:
        """One ingest/observe event: add the answers, observe if flagged."""
        for worker, row, col, value in record.get("a", ()):
            self.answers.add_answer(worker, int(row), int(col), value)
        if record.get("o"):
            self.assigner.observe(self.answers)
            self._bump_epoch()
        self.records_applied += 1

    # -- ops -----------------------------------------------------------------

    def select(
        self, worker: str, k: int, audit: bool = False
    ) -> Tuple[int, List[list], Optional[dict]]:
        """Local stable top-``k`` over this worker's candidate block.

        Returns ``(candidate_count, [[gain, row, col], ...], provenance)``.
        The refit (via ``prepare_scoring``) runs unconditionally — the
        coordinator only sends ``select`` when the *global* candidate list
        is non-empty, which is exactly when the single-process path would
        refit, so every worker's chain tracks it even on selects where its
        own block is empty.

        With ``audit`` the reply also carries this worker's provenance
        block: the ``answers_seen`` marker and model-state hash of the fit
        that scored the select, plus per-shard candidate counts for the
        owned shard range.  Every worker holds the bit-identical fit chain,
        so the coordinator can let worker 0's hash speak for the fleet.
        """
        calculator = self.assigner.prepare_scoring(self.answers)
        self._bump_epoch()
        state = self._state.sync(self.answers)
        cells: List[Cell] = []
        per_shard: List[int] = []
        for shard in self.shards:
            shard_cells = state.shard_candidate_cells(shard, worker)
            per_shard.append(len(shard_cells))
            cells.extend(shard_cells)
        provenance = self._provenance(per_shard) if audit else None
        if not cells:
            return 0, [], provenance
        gains = calculator.gains_batch(worker, cells)
        order = top_k_stable(gains, k)
        top = [
            [float(gains[i]), int(cells[i][0]), int(cells[i][1])]
            for i in order
        ]
        return len(cells), top, provenance

    def _provenance(self, per_shard: List[int]) -> dict:
        """Audit block for the fit that just scored (hash cached per fit)."""
        from repro.core.codec import model_state_hash

        marker = self.assigner.answers_at_last_fit
        if marker != self._hash_marker or self._hash_value is None:
            self._hash_marker = marker
            self._hash_value = model_state_hash(self.assigner.last_result)
        return {
            "answers_seen": int(marker),
            "model_hash": self._hash_value,
            "shards": [
                {"shard": int(shard), "candidates": int(count)}
                for shard, count in zip(self.shards, per_shard)
            ],
        }

    def final(self) -> dict:
        """Serialized full-catch-up fit (see ``TCrowdAssigner.final_result``)."""
        from repro.core.codec import serialize_result

        result = self.assigner.final_result(self.answers)
        self._bump_epoch()
        return {"result": serialize_result(result), **self.published_state()}

    def snapshot(self) -> dict:
        """Serialized ``snapshot_state`` (``{"state": None}`` before a fit)."""
        from repro.core.codec import serialize_result

        state = self.assigner.snapshot_state()
        if state is None:
            return {"state": None}
        result, answers_seen = state
        return {
            "state": {
                "result": serialize_result(result),
                "answers_seen": int(answers_seen),
            }
        }

    def restore(self, payload: dict) -> Dict[str, int]:
        """Re-seat the warm-start chain from a serialized snapshot."""
        from repro.core.codec import deserialize_result

        result = deserialize_result(payload["result"], self.schema)
        self.assigner.restore_state(result, int(payload["answers_seen"]))
        self._fit_marker = self.assigner.answers_at_last_fit
        self.epoch += 1
        return self.published_state()

    def stats(self) -> dict:
        """Topology and progress counters (the ``stats`` op)."""
        return {
            **self.published_state(),
            "shards": [self.shards.start, self.shards.stop],
            "answers_applied": len(self.answers),
            "wal_records": self.records_applied,
        }


def handle_request(scorer: ShardGroupScorer, message: dict) -> dict:
    """Dispatch one request message to the scorer; the worker loop's body."""
    op = message.get("op")
    if op == "sync":
        return scorer.sync_to(int(message["count"]))
    if op == "select":
        count, top, provenance = scorer.select(
            message["worker"], int(message["k"]),
            audit=bool(message.get("audit")),
        )
        if "decision" in message:
            _log.debug(
                "select served: %d candidates",
                count,
                extra={"decision_id": int(message["decision"])},
            )
        reply = {"n": count, "top": top}
        if provenance is not None:
            reply["prov"] = provenance
        return reply
    if op == "final":
        return scorer.final()
    if op == "snapshot":
        return scorer.snapshot()
    if op == "restore":
        return scorer.restore(message)
    if op == "stats":
        return scorer.stats()
    raise ConfigurationError(f"unknown worker op {op!r}")


def _serve(scorer: ShardGroupScorer, conn) -> None:  # pragma: no cover - subprocess loop
    """The worker's request loop: one JSON reply per JSON request.

    Runs only inside the worker process (exercised end to end by every
    coordinator test, but invisible to the parent's coverage tracer);
    the dispatch itself is :func:`handle_request`, which is unit-tested
    in-process.
    """
    while True:
        message = json.loads(conn.recv_bytes().decode("utf-8"))
        if message.get("op") == "shutdown":
            conn.send_bytes(b'{"ok": true}')
            return
        try:
            reply = handle_request(scorer, message)
        except Exception as exc:  # marshalled, never fatal to the loop
            _log.warning(
                "op %r failed: %s: %s",
                message.get("op"), type(exc).__name__, exc,
            )
            reply = {
                "error": {"type": type(exc).__name__, "message": str(exc)}
            }
        conn.send_bytes(json.dumps(reply).encode("utf-8"))


def _worker_main(conn, init_json: str) -> None:  # pragma: no cover - subprocess entry
    """Process entry point: build the scorer, signal readiness, serve."""
    init = json.loads(init_json)
    log_dir = init.get("log_dir")
    if log_dir:
        path = pathlib.Path(log_dir) / f"worker-{init['worker_index']}.log"
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        os.dup2(fd, 1)
        os.dup2(fd, 2)
        os.close(fd)
    from repro.utils.logging import configure_logging

    configure_logging(
        level=init.get("log_level", "INFO"),
        json_lines=True,
        worker_id=int(init["worker_index"]),
        session_id=init.get("session_label"),
    )
    try:
        from repro.service.registry import schema_from_dict

        scorer = ShardGroupScorer(
            schema_from_dict(init["schema"]),
            init["spec"],
            num_shards=init["num_shards"],
            shard_lo=init["shard_lo"],
            shard_hi=init["shard_hi"],
            wal_path=init["wal_path"],
        )
        scorer.sync_to(int(init["sync_to"]))
    except Exception as exc:
        conn.send_bytes(json.dumps(
            {"error": {"type": type(exc).__name__, "message": str(exc)}}
        ).encode("utf-8"))
        return
    conn.send_bytes(json.dumps(
        {"ok": True, **scorer.published_state()}
    ).encode("utf-8"))
    _log.info(
        "worker ready: shards [%d, %d), %d WAL records",
        scorer.shards.start, scorer.shards.stop, scorer.records_applied,
    )
    try:
        _serve(scorer, conn)
    except (EOFError, OSError):
        pass  # coordinator went away; nothing left to serve
    finally:
        _log.info("worker shutting down")
        conn.close()


class _WorkerHandle:
    """Coordinator-side record of one worker process."""

    __slots__ = ("index", "shard_lo", "shard_hi", "process", "conn", "alive")

    def __init__(self, index: int, shard_lo: int, shard_hi: int) -> None:
        self.index = index
        self.shard_lo = shard_lo
        self.shard_hi = shard_hi
        self.process = None
        self.conn = None
        self.alive = False


class ProcessShardCoordinator(AssignmentPolicy):
    """Serve a :class:`TCrowdAssigner` through shard-group worker processes.

    Parameters
    ----------
    inner:
        The assigner describing the model, gain configuration and refit
        cadence; workers rebuild their own twin from it (see
        :func:`worker_spec_from_assigner`).  The coordinator never scores
        with ``inner`` itself — it only consults its candidate accounting
        for the global no-candidates check and answer routing.
    processes:
        Number of worker processes (clipped to the number of rows).
    num_shards:
        Global shard count, default ``max(processes, 1)``; clipped like
        :class:`~repro.engine.sharding.ShardedSessionState` and split over
        the workers in contiguous groups (the first ``num_shards %
        processes`` workers own one extra shard).
    request_timeout:
        Seconds to wait for any single worker reply before declaring the
        worker unavailable; default ``$REPRO_WORKER_TIMEOUT`` or 60.
    spool_dir:
        Directory for the answer WAL and (absent ``$REPRO_WORKER_LOG_DIR``)
        the worker logs; a private temporary directory by default, removed
        on :meth:`close`.
    """

    def __init__(
        self,
        inner: TCrowdAssigner,
        processes: int = 2,
        num_shards: Optional[int] = None,
        request_timeout: Optional[float] = None,
        spool_dir=None,
    ) -> None:
        if not isinstance(inner, TCrowdAssigner):
            raise ConfigurationError(
                "ProcessShardCoordinator requires a TCrowdAssigner, got "
                f"{type(inner).__name__}"
            )
        if inner.continuous_samples:
            raise ConfigurationError(
                "ProcessShardCoordinator requires the closed-form gain path "
                "(continuous_samples=0); worker processes cannot share the "
                "Monte-Carlo estimator's ordered sample stream"
            )
        if processes < 1:
            raise ConfigurationError(f"processes must be >= 1, got {processes}")
        super().__init__(
            inner.schema,
            max_answers_per_cell=inner.max_answers_per_cell,
            incremental=True,
        )
        from repro.service.registry import schema_to_dict
        from repro.service.wal import WriteAheadLog

        rows = max(inner.schema.num_rows, 1)
        self.inner = inner
        self.processes = min(int(processes), rows)
        self.num_shards = min(
            int(num_shards) if num_shards is not None
            else max(self.processes, 1),
            rows,
        )
        if self.num_shards < self.processes:
            self.num_shards = self.processes
        if request_timeout is None:
            request_timeout = float(
                os.environ.get(TIMEOUT_ENV, _DEFAULT_TIMEOUT)
            )
        self.request_timeout = float(request_timeout)
        self._owns_spool = spool_dir is None
        self._spool = pathlib.Path(
            tempfile.mkdtemp(prefix="repro-shard-workers-")
            if spool_dir is None else spool_dir
        )
        self._spool.mkdir(parents=True, exist_ok=True)
        self._log_dir = os.environ.get(LOG_DIR_ENV) or str(self._spool)
        self._wal = WriteAheadLog(self._spool / "answers.wal")
        self._shipped = 0
        self._last_result = None
        self._closed = False
        self._ctx = _mp_context()
        self._init_common = {
            "schema": schema_to_dict(inner.schema),
            "spec": worker_spec_from_assigner(inner),
            "num_shards": self.num_shards,
            "wal_path": str(self._wal.path),
            "log_dir": self._log_dir,
        }
        base, extra = divmod(self.num_shards, self.processes)
        self._workers: List[_WorkerHandle] = []
        lo = 0
        for index in range(self.processes):
            hi = lo + base + (1 if index < extra else 0)
            self._workers.append(_WorkerHandle(index, lo, hi))
            lo = hi
        try:
            for handle in self._workers:
                self._spawn(handle)
        except BaseException:
            self.close()
            raise

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        return f"{self.inner.name} [processes x{self.processes}]"

    @property
    def last_result(self):
        """The newest inference result fetched from worker 0 (may be None)."""
        return self._last_result

    # -- topology ------------------------------------------------------------

    def session_state(self, answers: AnswerSet) -> ShardedSessionState:
        """The coordinator's own candidate accounting, synced to ``answers``."""
        if self._state is None:
            self._state = ShardedSessionState(
                self.schema,
                num_shards=self.num_shards,
                max_answers_per_cell=self.max_answers_per_cell,
            )
        return self._state.sync(answers)

    def candidate_cells(self, worker: str, answers: AnswerSet) -> List[Cell]:
        """Global row-major candidate list (concatenation of worker blocks)."""
        return self.session_state(answers).candidate_cells(worker)

    def worker_of_shard(self, shard: int) -> int:
        """Index of the worker process owning ``shard``."""
        for handle in self._workers:
            if handle.shard_lo <= shard < handle.shard_hi:
                return handle.index
        raise ConfigurationError(
            f"shard {shard} outside 0..{self.num_shards - 1}"
        )

    def owner_of_row(self, row: int) -> int:
        """Index of the worker process whose candidate block owns ``row``.

        The answer-routing table: every ingested answer updates exactly
        this worker's open-candidate accounting (all workers still apply
        the answer to their EM stream — the model is global).
        """
        if self._state is None:
            self._state = ShardedSessionState(
                self.schema,
                num_shards=self.num_shards,
                max_answers_per_cell=self.max_answers_per_cell,
            )
        return self.worker_of_shard(self._state.shard_of_row(row))

    def worker_states(self) -> List[Optional[dict]]:
        """Liveness + ``(epoch, answers_seen)`` snapshot per worker.

        Dead workers report ``None`` — this probe never raises, so the
        service stats endpoint stays available while a shard is down.
        """
        states: List[Optional[dict]] = []
        for handle in self._workers:
            try:
                states.append(self._request(handle, {"op": "stats"}))
            except ServiceUnavailableError:
                states.append(None)
        return states

    # -- transport -----------------------------------------------------------

    def _spawn(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        init = dict(
            self._init_common,
            worker_index=handle.index,
            shard_lo=handle.shard_lo,
            shard_hi=handle.shard_hi,
            sync_to=self._wal.record_count,
        )
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, json.dumps(init)),
            name=f"repro-shard-worker-{handle.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.alive = True
        ready = self._recv(handle)
        if "error" in ready:
            self._mark_dead(handle)
            raise self._unmarshal_error(ready["error"])

    def _mark_dead(self, handle: _WorkerHandle) -> None:
        handle.alive = False
        if handle.conn is not None:
            handle.conn.close()
            handle.conn = None

    @staticmethod
    def _unmarshal_error(error: dict) -> Exception:
        cls = _ERROR_TYPES.get(error.get("type", ""), ReproError)
        return cls(error.get("message", "worker error"))

    def _recv(self, handle: _WorkerHandle) -> dict:
        try:
            if not handle.conn.poll(self.request_timeout):
                if handle.process is not None and not handle.process.is_alive():
                    self._mark_dead(handle)
                    raise ServiceUnavailableError(
                        f"shard worker {handle.index} died "
                        f"(exitcode={handle.process.exitcode})"
                    )
                self._mark_dead(handle)
                raise ServiceUnavailableError(
                    f"shard worker {handle.index} did not reply within "
                    f"{self.request_timeout:.1f}s"
                )
            return json.loads(handle.conn.recv_bytes().decode("utf-8"))
        except (EOFError, OSError) as exc:
            self._mark_dead(handle)
            raise ServiceUnavailableError(
                f"shard worker {handle.index} connection lost: {exc}"
            ) from exc

    def _send(self, handle: _WorkerHandle, message: dict) -> None:
        if self._closed:
            raise ServiceUnavailableError("coordinator is closed")
        if not handle.alive:
            raise ServiceUnavailableError(
                f"shard worker {handle.index} is down "
                "(restart_worker() to respawn it)"
            )
        try:
            handle.conn.send_bytes(json.dumps(message).encode("utf-8"))
        except (OSError, ValueError) as exc:
            self._mark_dead(handle)
            raise ServiceUnavailableError(
                f"shard worker {handle.index} connection lost: {exc}"
            ) from exc

    def _request(self, handle: _WorkerHandle, message: dict) -> dict:
        self._send(handle, message)
        reply = self._recv(handle)
        if "error" in reply:
            raise self._unmarshal_error(reply["error"])
        return reply

    def _broadcast(self, message: dict) -> List[dict]:
        """Send to every worker, then collect every reply (pipelined).

        A dead worker does not abort the fan-out half way: the message
        still goes to every live worker and every queued reply is drained
        before the failure is raised.  Otherwise the survivors would be
        left one reply ahead of the coordinator and every later request
        would read the previous op's answer (protocol desync).
        """
        error: Optional[Exception] = None
        sent: List[_WorkerHandle] = []
        for handle in self._workers:
            try:
                self._send(handle, message)
                sent.append(handle)
            except ServiceUnavailableError as exc:
                error = error or exc
        replies = []
        for handle in sent:
            try:
                replies.append(self._recv(handle))
            except ServiceUnavailableError as exc:
                error = error or exc
        if error is not None:
            raise error
        for reply in replies:
            if "error" in reply:
                raise self._unmarshal_error(reply["error"])
        return replies

    # -- answer shipping -------------------------------------------------------

    def _ship(self, answers: AnswerSet, observe: bool) -> None:
        """Append new answers to the WAL and have every worker trail it."""
        count = len(answers)
        if count < self._shipped:
            raise ConfigurationError(
                "answer set shrank: the coordinator requires the append-only "
                f"AnswerSet contract ({count} < {self._shipped})"
            )
        if count == self._shipped and not observe:
            return
        delta = [
            [a.worker, a.row, a.col,
             a.value if isinstance(a.value, str) else float(a.value)]
            for a in (answers[i] for i in range(self._shipped, count))
        ]
        self._wal.append({"a": delta, "o": bool(observe)})
        self._shipped = count
        self._broadcast({"op": "sync", "count": self._wal.record_count})

    # -- policy ----------------------------------------------------------------

    def select(self, worker: str, answers: AnswerSet, k: int = 1) -> BatchAssignment:
        """Fan the select out, merge the per-worker stable top-Ks.

        Each worker returns its block's candidate count and local stable
        top-``k``; :func:`merge_top_k_stable` over the compressed blocks
        reproduces the single-process stable global top-``k`` bit for bit
        (within-block order survives compression; cross-block ties resolve
        by block order either way).
        """
        if k < 1:
            raise AssignmentError(f"k must be >= 1, got {k}")
        state = self.session_state(answers)
        if not state.candidate_cells(worker):
            raise AssignmentError(
                f"No candidate cells left for worker {worker!r}"
            )
        self._ship(answers, observe=False)
        message = {"op": "select", "worker": worker, "k": int(k)}
        if self._recorder is not None:
            message["audit"] = True
            message["decision"] = self._recorder.count
        replies = self._broadcast(message)
        part_gains: List[np.ndarray] = []
        part_cells: List[List[Cell]] = []
        for reply in replies:
            top = reply["top"]
            part_gains.append(np.array([g for g, _r, _c in top], dtype=float))
            part_cells.append([(int(r), int(c)) for _g, r, c in top])
        stops = np.cumsum([len(g) for g in part_gains])
        order = merge_top_k_stable(part_gains, k)
        cells: List[Cell] = []
        values: List[float] = []
        for global_index in order.tolist():
            part = int(np.searchsorted(stops, global_index, side="right"))
            local = global_index - (stops[part - 1] if part else 0)
            cells.append(part_cells[part][int(local)])
            values.append(float(part_gains[part][int(local)]))
        assignment = BatchAssignment(worker, tuple(cells), tuple(values))
        if self._recorder is not None:
            self._record_from_replies(state, replies, assignment, len(answers))
        return assignment

    def _record_from_replies(
        self,
        state: ShardedSessionState,
        replies: List[dict],
        assignment: BatchAssignment,
        answers_total: int,
    ) -> None:
        """Merge the workers' provenance blocks into one audit record.

        Every worker trails the identical answer WAL through an identical
        deterministic assigner, so the fit chains — and therefore the
        model-state hashes — are bit-identical across the fleet; worker 0's
        block speaks for all of them.  Winner cells are mapped back to
        their shard through the coordinator's own row partition, and each
        per-shard lineage entry is annotated with the owning process (the
        one deployment fact the single-process modes cannot have — it rides
        outside the hashed core, like all ``shards`` lineage).
        """
        winners: List[List[list]] = [[] for _ in range(self.num_shards)]
        for (row, col), gain in zip(assignment.cells, assignment.gains):
            winners[state.shard_of_row(row)].append(
                [int(row), int(col), float(gain)]
            )
        shard_blocks = []
        for handle, reply in zip(self._workers, replies):
            for block in (reply.get("prov") or {}).get("shards", ()):
                shard = int(block["shard"])
                shard_blocks.append({
                    "shard": shard,
                    "candidates": int(block["candidates"]),
                    "winners": winners[shard],
                    "process": handle.index,
                })
        head = replies[0].get("prov") or {}
        self._record_decision(
            assignment,
            answers_seen=int(head.get("answers_seen", -1)),
            answers_total=answers_total,
            candidates=sum(int(reply["n"]) for reply in replies),
            model_hash=head.get("model_hash"),
            shards=tuple(shard_blocks),
        )

    def observe(self, answers: AnswerSet) -> None:
        """Ship the new answers with the observe flag (workers refit on cadence)."""
        self._ship(answers, observe=True)

    def final_result(self, answers: AnswerSet):
        """Full catch-up fit on *every* worker; worker 0's result comes back.

        Broadcast (not worker-0-only) because ``final_result`` is an event
        in the warm-start chain — all workers must record it or their
        chains would diverge from the single-process replay.
        """
        from repro.core.codec import deserialize_result

        self._ship(answers, observe=False)
        replies = self._broadcast({"op": "final"})
        self._last_result = deserialize_result(replies[0]["result"], self.schema)
        return self._last_result

    # -- durability ------------------------------------------------------------

    def snapshot_state(self):
        """Worker 0's ``(result, answers_seen)`` — identical on every worker."""
        from repro.core.codec import deserialize_result

        reply = self._request(self._workers[0], {"op": "snapshot"})
        state = reply["state"]
        if state is None:
            return None
        result = deserialize_result(state["result"], self.schema)
        self._last_result = result
        return result, int(state["answers_seen"])

    def restore_state(self, result, answers_seen: int) -> None:
        """Re-seat every worker's warm-start chain from a durable snapshot."""
        from repro.core.codec import serialize_result

        self._last_result = result
        self._broadcast({
            "op": "restore",
            "result": serialize_result(result),
            "answers_seen": int(answers_seen),
        })

    # -- lifecycle -------------------------------------------------------------

    def restart_worker(self, index: int) -> None:
        """Respawn worker ``index`` and replay it to the current WAL position.

        The WAL replay recovers the answers and the observe cadence, but
        not the select-time refits (those are not logged) — so after the
        replay the fresh worker's warm-start chain is re-seated from a
        surviving peer's ``(result, answers_seen)`` snapshot.  Every worker
        holds the identical chain, so any live donor restores the respawned
        worker to bit-identical state.  With no live peer (or before any
        fit) the replayed chain stands as-is.
        """
        if self._closed:
            raise ServiceUnavailableError("coordinator is closed")
        handle = self._workers[index]
        self._reap(handle, graceful=False)
        self._spawn(handle)
        donor = next(
            (h for h in self._workers if h.alive and h is not handle), None
        )
        if donor is None:
            return
        state = self._request(donor, {"op": "snapshot"})["state"]
        if state is not None:
            self._request(handle, {"op": "restore", **state})

    def _reap(self, handle: _WorkerHandle, graceful: bool) -> None:
        if handle.alive and graceful:
            try:
                self._request(handle, {"op": "shutdown"})
            except ServiceUnavailableError:
                pass
        self._mark_dead(handle)
        process = handle.process
        if process is None:
            return
        process.join(timeout=5.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - last-resort kill
            process.kill()
            process.join(timeout=5.0)
        handle.process = None

    def close(self) -> None:
        """Shut the fleet down and remove the spool (idempotent)."""
        if self._closed:
            return
        for handle in self._workers:
            self._reap(handle, graceful=True)
        self._closed = True
        self._wal.close()
        if self._owns_spool:
            shutil.rmtree(self._spool, ignore_errors=True)

    def __enter__(self) -> "ProcessShardCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
