"""Sharded session state and partitioned top-K assignment.

The monolithic :class:`~repro.engine.state.SessionState` serves one candidate
pool for the whole table.  For multi-worker serving the ROADMAP calls for
partitioning that pool: :class:`ShardedSessionState` splits the rows into
``K`` contiguous shards, each owning its slice of the answer counts, the
per-worker answered masks and the open-candidate pool, with O(1) routing of
every ingested answer to the owning shard (a precomputed row→shard table).

:class:`ShardedAssignmentPolicy` runs the paper's top-K selection over that
partition: each shard enumerates its candidates and scores them with one
``gains_batch`` call (optionally from a thread pool), and the per-shard
stable top-Ks are heap-merged by
:func:`~repro.core.assignment.merge_top_k_stable` into the global stable
top-K.  Because the shards are contiguous row ranges, the concatenation of
the per-shard candidate lists *is* the monolithic row-major candidate list,
so the sharded selection is bit-identical to
:meth:`~repro.core.assignment.TCrowdAssigner.select` — the equivalence the
benchmark records as ``identical_assignments_sharded`` and CI gates on.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.core.answers import Answer, AnswerSet
from repro.core.assignment import (
    AssignmentPolicy,
    BatchAssignment,
    TCrowdAssigner,
    merge_top_k_stable,
    top_k_stable,
)
from repro.core.schema import TableSchema
from repro.engine.profiling import HotPathProfile
from repro.engine.profiling import stage as _stage
from repro.engine.state import SessionState
from repro.utils.exceptions import AssignmentError, ConfigurationError

Cell = Tuple[int, int]


class ShardedSessionState(SessionState):
    """A :class:`SessionState` partitioned into contiguous row-range shards.

    The global indexes (counts, worker masks, open pool) are the inherited
    ones, so every :class:`SessionState` query keeps working unchanged; the
    shards own *views* into them plus their own open-candidate accounting.
    Routing an ingested answer to its shard is one table lookup — O(1) per
    answer, exactly like the monolithic update it piggybacks on.

    Parameters
    ----------
    schema:
        Table schema the answers refer to.
    num_shards:
        Requested number of shards; clipped to the number of rows so every
        shard owns at least one row.  The first ``num_rows % K`` shards get
        one extra row when the rows do not divide evenly.
    max_answers_per_cell:
        Optional per-cell budget cap (see :class:`SessionState`).
    """

    def __init__(
        self,
        schema: TableSchema,
        num_shards: int = 2,
        max_answers_per_cell: Optional[int] = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        rows = schema.num_rows
        self.num_shards = min(int(num_shards), max(rows, 1))
        base, extra = divmod(rows, self.num_shards)
        sizes = np.full(self.num_shards, base, dtype=np.int64)
        sizes[:extra] += 1
        self._shard_sizes = sizes
        self._stops = np.cumsum(sizes)
        self._starts = self._stops - sizes
        self._row_shard = np.repeat(np.arange(self.num_shards), sizes)
        super().__init__(schema, max_answers_per_cell=max_answers_per_cell)

    def _reset(self) -> None:
        super()._reset()
        self._shard_open = self._shard_sizes * self.schema.num_columns

    def ingest(self, answer: Answer) -> None:
        """Fold one new answer in and charge its shard's open-pool (O(1))."""
        was_open = self._open[answer.row, answer.col]
        super().ingest(answer)
        if was_open and not self._open[answer.row, answer.col]:
            self._shard_open[self._row_shard[answer.row]] -= 1

    # -- shard queries ------------------------------------------------------

    def shard_of_row(self, row: int) -> int:
        """Index of the shard owning ``row`` (the O(1) routing table)."""
        return int(self._row_shard[row])

    def shard_bounds(self, shard: int) -> Tuple[int, int]:
        """Half-open ``[start, stop)`` row range owned by ``shard``."""
        return int(self._starts[shard]), int(self._stops[shard])

    def shard_open_count(self, shard: int) -> int:
        """Number of open cells inside ``shard``."""
        return int(self._shard_open[shard])

    def shard_candidate_cells(self, shard: int, worker: str) -> List[Cell]:
        """Cells of ``shard`` assignable to ``worker``, in row-major order.

        Concatenating the results over all shards reproduces
        :meth:`SessionState.candidate_cells` exactly — the property the
        partitioned top-K merge relies on.
        """
        start, stop = self.shard_bounds(shard)
        answered = self._answered.get(worker)
        block = self._open[start:stop]
        if answered is not None:
            block = block & ~answered[start:stop]
        flat = np.flatnonzero(block.ravel())
        rows, cols = np.divmod(flat, self.schema.num_columns)
        return list(zip((rows + start).tolist(), cols.tolist()))


class ShardedAssignmentPolicy(AssignmentPolicy):
    """Partitioned top-K wrapper around a :class:`TCrowdAssigner`.

    Plugs in behind the same :meth:`AssignmentPolicy.session_state` seam the
    platform loop already consults: the wrapper keeps a
    :class:`ShardedSessionState` in sync with the answer set, delegates model
    refits (and their warm-start bookkeeping) to the wrapped assigner, and
    replaces the single global scoring pass with one ``gains_batch`` per
    shard followed by a stable heap merge of the per-shard top-Ks.

    Parameters
    ----------
    inner:
        The assigner whose model, gain calculator and refit cadence are
        reused.  Monte-Carlo gain estimation (``continuous_samples > 0``)
        draws from an ordered sample stream and is rejected — the sharded
        path supports the closed-form calculators (the default).
    num_shards:
        Number of contiguous row-range shards.
    max_workers:
        Optional thread-pool size for scoring shards concurrently; ``None``
        or ``1`` scores them sequentially.  Either way the merged selection
        is deterministic and bit-identical to the unsharded assigner.
    """

    def __init__(
        self,
        inner: TCrowdAssigner,
        num_shards: int = 2,
        max_workers: Optional[int] = None,
    ) -> None:
        super().__init__(
            inner.schema,
            max_answers_per_cell=inner.max_answers_per_cell,
            incremental=True,
        )
        if inner.continuous_samples:
            raise ConfigurationError(
                "ShardedAssignmentPolicy requires the closed-form gain path "
                "(continuous_samples=0); the Monte-Carlo estimator consumes "
                "an ordered sample stream that sharding would reorder"
            )
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        self.inner = inner
        # Clip like ShardedSessionState does, so name / num_shards / pool
        # size all describe the partition actually served.
        self.num_shards = min(int(num_shards), max(inner.schema.num_rows, 1))
        self.max_workers = None if max_workers is None else int(max_workers)
        self.profile: Optional[HotPathProfile] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        if self.max_workers is not None and self.max_workers > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=min(self.max_workers, self.num_shards),
                thread_name_prefix="shard-score",
            )

    @property
    def name(self) -> str:
        return f"{self.inner.name} [sharded x{self.num_shards}]"

    @property
    def last_result(self):
        """The wrapped assigner's most recent truth-inference result."""
        return self.inner.last_result

    def final_result(self, answers: AnswerSet):
        """Catch-up fit over all answers (see :meth:`TCrowdAssigner.final_result`)."""
        return self.inner.final_result(answers)

    def snapshot_state(self):
        """Delegate durable snapshots to the wrapped assigner."""
        return self.inner.snapshot_state()

    def restore_state(self, result, answers_seen: int) -> None:
        """Delegate durable restores to the wrapped assigner."""
        self.inner.restore_state(result, answers_seen)

    def set_profile(self, profile: Optional[HotPathProfile]) -> None:
        """Attach a :class:`HotPathProfile`; subsequent selects record into it."""
        self.profile = profile

    def close(self) -> None:
        """Shut down the scoring thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedAssignmentPolicy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- state --------------------------------------------------------------

    def session_state(self, answers: AnswerSet) -> ShardedSessionState:
        """The sharded session state, synced to ``answers``."""
        if self._state is None:
            self._state = ShardedSessionState(
                self.schema,
                num_shards=self.num_shards,
                max_answers_per_cell=self.max_answers_per_cell,
            )
        return self._state.sync(answers)

    def candidate_cells(self, worker: str, answers: AnswerSet) -> List[Cell]:
        """Global row-major candidate list (concatenation of the shards)."""
        return self.session_state(answers).candidate_cells(worker)

    # -- policy -------------------------------------------------------------

    def _scoring_calculator(self, answers: AnswerSet):
        """The gain calculator one select scores every shard with.

        The seam the composed serving mode overrides:
        :class:`~repro.engine.ShardedAsyncPolicy` substitutes a calculator
        built over the latest async :class:`~repro.engine.ModelSnapshot`
        instead of the wrapped assigner's synchronous refit.
        """
        with _stage(self.profile, "calculator_build"):
            return self.inner.prepare_scoring(answers)

    def _provenance_meta(self, answers: AnswerSet):
        """``(answers_seen, result)`` of the state this select scored with.

        Overridden by the composed serving mode alongside
        :meth:`_scoring_calculator`, so the audit record always describes
        the model state the gains actually came from.
        """
        return self.inner.answers_at_last_fit, self.inner.last_result

    def _shard_lineage(self, state, shard_cells, assignment) -> Tuple[dict, ...]:
        """Per-shard lineage annotations: pool sizes + contributed winners."""
        winners: List[List[List[float]]] = [[] for _ in range(state.num_shards)]
        for (row, col), gain in zip(assignment.cells, assignment.gains):
            winners[state.shard_of_row(row)].append(
                [int(row), int(col), float(gain)]
            )
        return tuple(
            {
                "shard": shard,
                "candidates": len(shard_cells[shard]),
                "winners": winners[shard],
            }
            for shard in range(state.num_shards)
        )

    def select(self, worker: str, answers: AnswerSet, k: int = 1) -> BatchAssignment:
        """Assign the top-``k`` cells by gain, scored over the shard partition.

        Sequential scoring (no thread pool) takes the *stacked* fast path:
        because the shards are contiguous row ranges, the concatenation of
        the per-shard candidate lists is exactly the monolithic row-major
        candidate list, so one ``gains_batch`` call over the concatenation
        followed by :func:`~repro.core.assignment.top_k_stable` returns the
        same winners as per-shard scoring plus the stable heap merge — with
        one vectorised kernel dispatch instead of ``num_shards`` small ones
        plus a Python-level merge.  The thread-pool path keeps per-shard
        calls (that is the point of the pool) and heap-merges as before;
        both paths are bit-identical to the unsharded assigner.
        """
        if k < 1:
            raise AssignmentError(f"k must be >= 1, got {k}")
        state = self.session_state(answers)
        shard_cells = [
            state.shard_candidate_cells(shard, worker)
            for shard in range(state.num_shards)
        ]
        if not any(shard_cells):
            raise AssignmentError(f"No candidate cells left for worker {worker!r}")
        calculator = self._scoring_calculator(answers)
        profile = self.profile

        if self._executor is None:
            stacked = [cell for cells in shard_cells for cell in cells]
            with _stage(profile, "gains_batch"):
                gains = calculator.gains_batch(worker, stacked)
            with _stage(profile, "top_k_merge"):
                order = top_k_stable(gains, k)
            picks = order.tolist()
            cells = tuple(stacked[index] for index in picks)
            values = tuple(float(gains[index]) for index in picks)
            assignment = BatchAssignment(worker, cells, values)
        else:
            def score(cells: List[Cell]) -> np.ndarray:
                if not cells:
                    return np.zeros(0, dtype=float)
                return calculator.gains_batch(worker, cells)

            calculator.prewarm()
            with _stage(profile, "gains_batch"):
                shard_gains = list(self._executor.map(score, shard_cells))
            with _stage(profile, "top_k_merge"):
                order = merge_top_k_stable(shard_gains, k)
            # Map each merged global index back to its (shard, local) slot
            # via the per-shard offsets — only the k winners are touched,
            # the concatenated candidate list is never materialised.
            offsets = np.cumsum([0] + [len(cells) for cells in shard_cells])
            owners = np.searchsorted(offsets, order, side="right") - 1
            cells = tuple(
                shard_cells[shard][index - offsets[shard]]
                for shard, index in zip(owners.tolist(), order.tolist())
            )
            values = tuple(
                float(shard_gains[shard][index - offsets[shard]])
                for shard, index in zip(owners.tolist(), order.tolist())
            )
            assignment = BatchAssignment(worker, cells, values)
        if self._recorder is not None:
            answers_seen, result = self._provenance_meta(answers)
            self._record_decision(
                assignment,
                answers_seen=answers_seen,
                answers_total=len(answers),
                candidates=sum(len(cells) for cells in shard_cells),
                result=result,
                shards=self._shard_lineage(state, shard_cells, assignment),
            )
        return assignment

    def observe(self, answers: AnswerSet) -> None:
        """Forward the refit trigger to the wrapped assigner."""
        self.inner.observe(answers)
