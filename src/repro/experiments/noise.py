"""Figure 10 — robustness to noise in the workers' answers.

Starting from the Celebrity answers, a fraction ``gamma`` of answers is
perturbed (random label for categorical, added Gaussian noise in z-score
space for continuous); every method is then run on the noisy answers and the
average Error Rate (T-Crowd, CRH, ZenCrowd, GLAD, MV) and MNAD (T-Crowd,
GTM, CRH, Median) is reported per noise level, averaged over regenerated
noisy datasets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.baselines import CRH, GLAD, GTM, MajorityVoting, MedianAggregator, ZenCrowd
from repro.core.inference import TCrowdModel
from repro.datasets import add_noise, load_celebrity
from repro.experiments.reporting import ExperimentReport
from repro.metrics import error_rate, mnad
from repro.utils.rng import spawn_generators


def run_figure10(
    gammas: Iterable[float] = (0.1, 0.2, 0.3, 0.4),
    seed: int = 7,
    trials: int = 3,
    num_rows: Optional[int] = 60,
    model_kwargs: Optional[dict] = None,
) -> ExperimentReport:
    """Reproduce Figure 10 (noisy Celebrity answers)."""
    kwargs = {"seed": seed}
    if num_rows:
        kwargs["num_rows"] = num_rows
    base = load_celebrity(**kwargs)

    error_methods = [
        ("T-Crowd", lambda: TCrowdModel(**(model_kwargs or {}))),
        ("CRH", CRH),
        ("ZenCrowd", ZenCrowd),
        ("GLAD", GLAD),
        ("MV", MajorityVoting),
    ]
    mnad_methods = [
        ("T-Crowd", lambda: TCrowdModel(**(model_kwargs or {}))),
        ("GTM", GTM),
        ("CRH", CRH),
        ("Median", MedianAggregator),
    ]

    report = ExperimentReport(
        experiment_id="figure10",
        title="Noise robustness on Celebrity",
        headers=["gamma"]
        + [f"{name} error" for name, _ in error_methods]
        + [f"{name} MNAD" for name, _ in mnad_methods],
    )
    series: Dict[str, List[tuple]] = {}
    for gamma in gammas:
        rngs = spawn_generators(seed + int(gamma * 1000), trials)
        accumulated: Dict[str, List[float]] = {}
        for rng in rngs:
            noisy = add_noise(base, gamma, seed=rng)
            for name, factory in error_methods:
                result = factory().fit(noisy.schema, noisy.answers)
                accumulated.setdefault(f"{name} error", []).append(
                    error_rate(result, noisy)
                )
            for name, factory in mnad_methods:
                result = factory().fit(noisy.schema, noisy.answers)
                accumulated.setdefault(f"{name} MNAD", []).append(mnad(result, noisy))
        row: List = [gamma]
        for header in report.headers[1:]:
            values = accumulated.get(header)
            mean = float(np.mean(values)) if values else None
            row.append(mean)
            if mean is not None:
                series.setdefault(header, []).append((gamma, mean))
        report.add_row(*row)
    for name, points in series.items():
        report.add_series(name, points)
    report.add_note(
        f"trials per noise level: {trials}, num_rows={num_rows or 'paper size'}, "
        f"base seed={seed}"
    )
    return report
