"""Incremental assignment engine.

The online protocol of Algorithm 2 interleaves truth inference and
information-gain assignment after *every* collected answer.  Re-deriving the
full candidate pool, worker indexes and answer counts from scratch on each
step is O(rows x cols x answers); this package maintains them as mutable
indexes updated O(1) per new answer so that the per-step cost of the online
loop is driven by the (warm-started) EM refit and one vectorised gain pass.

Layering: ``core`` holds the paper's algorithms, ``engine`` holds the
incremental session state those algorithms consult in the online loop, and
``platform`` / ``experiments`` drive both.  Future scaling work (sharding the
candidate pool, async refits, multi-backend state) plugs in here.
"""

from repro.engine.state import SessionState

__all__ = [
    "SessionState",
    "ShardedSessionState",
    "ShardedAssignmentPolicy",
    "ShardedAsyncPolicy",
    "AsyncRefitEngine",
    "AsyncRefitPolicy",
    "DecisionRecord",
    "DecisionRecorder",
    "HotPathProfile",
    "ModelSnapshot",
    "ProcessShardCoordinator",
    "ShardGroupScorer",
    "VirtualClock",
]

_SHARDING_EXPORTS = ("ShardedSessionState", "ShardedAssignmentPolicy")
_PROFILING_EXPORTS = ("HotPathProfile",)
_PROVENANCE_EXPORTS = ("DecisionRecord", "DecisionRecorder")
_REFIT_EXPORTS = (
    "AsyncRefitEngine",
    "AsyncRefitPolicy",
    "ModelSnapshot",
    "VirtualClock",
)
_COMPOSED_EXPORTS = ("ShardedAsyncPolicy",)
_COORDINATOR_EXPORTS = ("ProcessShardCoordinator", "ShardGroupScorer")


def __getattr__(name):
    # Lazy so that ``core.assignment → engine.state → engine.__init__`` does
    # not re-enter ``core.assignment`` (sharding and the async refit worker
    # build on the policy base classes) while it is still half-initialised.
    if name in _SHARDING_EXPORTS:
        from repro.engine import sharding

        return getattr(sharding, name)
    if name in _REFIT_EXPORTS:
        from repro.engine import refit_worker

        return getattr(refit_worker, name)
    if name in _COMPOSED_EXPORTS:
        from repro.engine import composed

        return getattr(composed, name)
    if name in _COORDINATOR_EXPORTS:
        from repro.engine import coordinator

        return getattr(coordinator, name)
    if name in _PROFILING_EXPORTS:
        from repro.engine import profiling

        return getattr(profiling, name)
    if name in _PROVENANCE_EXPORTS:
        from repro.engine import provenance

        return getattr(provenance, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
