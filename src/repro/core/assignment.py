"""Online task assignment (Section 5, Algorithm 2).

:class:`AssignmentPolicy` is the interface shared by T-Crowd and all the
baseline assigners (CDAS, AskIt!, random, looping, entropy): given an
incoming worker and the answers collected so far, pick the next cell(s) to
assign.  :class:`TCrowdAssigner` implements the paper's policy — rank every
candidate cell by (structure-aware) information gain and greedily take the
top K (Eq. 9).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.answers import AnswerSet
from repro.core.inference import InferenceResult, TCrowdModel
from repro.core.information_gain import InformationGainCalculator
from repro.core.schema import TableSchema
from repro.core.structure_gain import StructureAwareGainCalculator
from repro.utils.exceptions import AssignmentError

Cell = Tuple[int, int]


@dataclass(frozen=True)
class BatchAssignment:
    """A batch of cells assigned to one worker, with their predicted gains."""

    worker: str
    cells: Tuple[Cell, ...]
    gains: Tuple[float, ...]

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def total_gain(self) -> float:
        """Sum of the per-cell gains (the greedy approximation of Eq. 9)."""
        return float(sum(self.gains))


class AssignmentPolicy(abc.ABC):
    """Base class for online task-assignment policies.

    Subclasses implement :meth:`select`.  The base class provides candidate
    filtering: a worker is never assigned a cell they already answered, and
    cells that already collected ``max_answers_per_cell`` answers are
    excluded (the budget mechanism used by the end-to-end experiments).
    """

    def __init__(
        self,
        schema: TableSchema,
        max_answers_per_cell: Optional[int] = None,
    ) -> None:
        self.schema = schema
        self.max_answers_per_cell = max_answers_per_cell

    @property
    def name(self) -> str:
        """Human-readable policy name (used by the experiment harnesses)."""
        return type(self).__name__

    def candidate_cells(self, worker: str, answers: AnswerSet) -> List[Cell]:
        """Cells this worker may still be assigned."""
        counts = answers.answer_counts()
        candidates: List[Cell] = []
        for i in range(self.schema.num_rows):
            for j in range(self.schema.num_columns):
                if (
                    self.max_answers_per_cell is not None
                    and counts[i, j] >= self.max_answers_per_cell
                ):
                    continue
                if answers.has_answered(worker, i, j):
                    continue
                candidates.append((i, j))
        return candidates

    @abc.abstractmethod
    def select(self, worker: str, answers: AnswerSet, k: int = 1) -> BatchAssignment:
        """Select ``k`` cells to assign to ``worker`` given current answers."""

    def observe(self, answers: AnswerSet) -> None:
        """Hook called by the platform after new answers arrive (optional)."""


class TCrowdAssigner(AssignmentPolicy):
    """T-Crowd's assignment policy: top-K cells by information gain.

    Parameters
    ----------
    schema:
        Table schema.
    model:
        Truth-inference model used to refresh posteriors and worker
        qualities; defaults to :class:`TCrowdModel` with default settings.
    use_structure:
        If True (default) rank by the structure-aware gain of Section 5.2,
        otherwise by the inherent gain of Section 5.1.
    refit_every:
        Re-run full truth inference after this many newly collected answers.
        ``1`` reproduces Algorithm 2 exactly; larger values trade a little
        accuracy for speed in large simulations.
    continuous_samples:
        Forwarded to :class:`InformationGainCalculator` (0 = closed form).
    max_answers_per_cell:
        Budget cap per cell (see :class:`AssignmentPolicy`).
    """

    def __init__(
        self,
        schema: TableSchema,
        model: Optional[TCrowdModel] = None,
        use_structure: bool = True,
        refit_every: int = 1,
        continuous_samples: int = 0,
        max_answers_per_cell: Optional[int] = None,
        min_pairs: int = 5,
        seed=None,
    ) -> None:
        super().__init__(schema, max_answers_per_cell=max_answers_per_cell)
        if refit_every < 1:
            raise AssignmentError(f"refit_every must be >= 1, got {refit_every}")
        self.model = model or TCrowdModel()
        self.use_structure = bool(use_structure)
        self.refit_every = int(refit_every)
        self.continuous_samples = int(continuous_samples)
        self.min_pairs = int(min_pairs)
        self.seed = seed
        self._result: Optional[InferenceResult] = None
        self._answers_at_last_fit = -1

    @property
    def name(self) -> str:
        return "T-Crowd (structure-aware)" if self.use_structure else "T-Crowd (inherent)"

    @property
    def last_result(self) -> Optional[InferenceResult]:
        """The most recent truth-inference result (None before the first fit)."""
        return self._result

    # -- policy ---------------------------------------------------------------

    def select(self, worker: str, answers: AnswerSet, k: int = 1) -> BatchAssignment:
        """Assign the top-``k`` candidate cells by information gain."""
        if k < 1:
            raise AssignmentError(f"k must be >= 1, got {k}")
        candidates = self.candidate_cells(worker, answers)
        if not candidates:
            raise AssignmentError(f"No candidate cells left for worker {worker!r}")
        result = self._ensure_result(answers)
        calculator = self._build_calculator(result, answers)
        gains = {
            cell: calculator.gain(worker, cell[0], cell[1]) for cell in candidates
        }
        ranked = sorted(gains.items(), key=lambda item: item[1], reverse=True)[:k]
        cells = tuple(cell for cell, _gain in ranked)
        values = tuple(gain for _cell, gain in ranked)
        return BatchAssignment(worker, cells, values)

    def observe(self, answers: AnswerSet) -> None:
        """Refresh truth inference if enough new answers arrived."""
        self._ensure_result(answers)

    # -- internals -------------------------------------------------------------

    def _ensure_result(self, answers: AnswerSet) -> InferenceResult:
        if len(answers) == 0:
            raise AssignmentError(
                "T-Crowd assignment needs at least one collected answer; "
                "seed each task with initial answers first (Algorithm 2, line 1)"
            )
        stale = (
            self._result is None
            or len(answers) - self._answers_at_last_fit >= self.refit_every
        )
        if stale:
            self._result = self.model.fit(self.schema, answers)
            self._answers_at_last_fit = len(answers)
        return self._result

    def _build_calculator(self, result: InferenceResult, answers: AnswerSet):
        if self.use_structure:
            return StructureAwareGainCalculator(
                result,
                answers,
                continuous_samples=self.continuous_samples,
                min_pairs=self.min_pairs,
                seed=self.seed,
            )
        return InformationGainCalculator(
            result, continuous_samples=self.continuous_samples, seed=self.seed
        )
