"""Answers-to-quality benchmark of the strategy zoo (``--strategies``).

Two measurements feed ``BENCH_engine.json``:

* :func:`verify_strategy_default_identical` — the **safety gate** for the
  strategy seam.  For every serving mode (plain, sharded, async, composed,
  multiprocess) the scripted golden-trace session runs twice: once with the
  default spec (no strategy section beyond the implicit ``"paper"``) and
  once with ``strategy = "paper"`` pinned explicitly.  Assignment sequence
  and decision-chain head must match **bit for bit** — proving the strategy
  plumbing added to the factory, the assigner, the coordinator wire
  protocol and the provenance genesis is invisible when the paper strategy
  is selected.  Hard-failed by ``run_bench.py`` and the CI perf gate.

* :func:`measure_strategy_curves` — the answers-to-quality comparison.
  Every strategy runs the same seeded
  :class:`~repro.platform.CrowdsourcingSession` on every scenario (clean
  crowd, worker churn, spam contamination, difficulty drift — see
  :mod:`repro.platform.scenario`), averaged over a fixed seed panel, and
  the per-checkpoint error-rate curve is recorded.  The paper's gain-based
  strategy must dominate the ``random`` and ``round_robin`` baselines on
  the *clean* scenario (mean error over checkpoints) — the
  ``strategy_paper_dominates_clean`` bit asserted by
  ``check_perf_regression.py``.

The benchmark parameters are **fixed** (not shrunk by ``--smoke``): the
dominance comparison needs the seed panel and the 24-row table to be
statistically meaningful, and every session is fully seeded so the
recorded numbers are deterministic.
"""

from __future__ import annotations

import pathlib
import sys
from typing import Dict, Iterable, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import STRATEGY_NAMES, SessionSpec  # noqa: E402
from repro.datasets import load_celebrity  # noqa: E402
from repro.platform import CrowdsourcingSession  # noqa: E402

#: Every strategy in the zoo, paper first.
STRATEGIES: Tuple[str, ...] = STRATEGY_NAMES

#: Scenario name -> SimulationSpec perturbation knobs.
SCENARIOS: Dict[str, dict] = {
    "clean": {},
    "churn": {"worker_churn_rate": 0.25},
    "spam": {"spam_fraction": 0.3},
    "drift": {"difficulty_drift": 0.03},
}

#: The fixed benchmark configuration (see module docstring).
SEED_PANEL: Tuple[int, ...] = (7, 11, 23)
NUM_ROWS = 24
TARGET_ANSWERS_PER_TASK = 2.5
MODEL_KWARGS = {"max_iterations": 6, "m_step_iterations": 10}


def _strategy_options(name: str, seed: int) -> dict:
    """Extra StrategySpec knobs a strategy needs beyond its name."""
    if name in ("random", "epsilon_greedy"):
        return {"seed": seed}
    return {}


def run_strategy_session(
    strategy: str,
    scenario_kwargs: dict,
    seed: int = 7,
    num_rows: int = NUM_ROWS,
    target_answers_per_task: float = TARGET_ANSWERS_PER_TASK,
    model_kwargs: Optional[dict] = None,
) -> Dict[str, object]:
    """One seeded session of one strategy on one scenario.

    Returns the per-checkpoint error-rate curve (answers-per-task, error)
    plus the mean-over-checkpoints and final error — the quality numbers
    the curves aggregate.
    """
    builder = (
        SessionSpec.builder()
        .model(**dict(model_kwargs or MODEL_KWARGS))
        .policy(refit_every=1, warm_start=True)
        .simulation(
            seed=seed,
            target_answers_per_task=target_answers_per_task,
            **scenario_kwargs,
        )
        .strategy(strategy, **_strategy_options(strategy, seed))
    )
    dataset = load_celebrity(seed=seed, num_rows=num_rows)
    trace = CrowdsourcingSession.from_spec(dataset, builder.build()).run()
    curve = [
        [record.answers_per_task, record.error_rate]
        for record in trace.records
        if record.error_rate is not None
    ]
    errors = [point[1] for point in curve]
    return {
        "curve": curve,
        "mean_error_rate": sum(errors) / max(len(errors), 1),
        "final_error_rate": errors[-1] if errors else None,
        "answers_collected": trace.final.answers_collected,
    }


def measure_strategy_curves(
    seeds: Iterable[int] = SEED_PANEL,
    strategies: Iterable[str] = STRATEGIES,
    scenarios: Optional[Dict[str, dict]] = None,
    num_rows: int = NUM_ROWS,
    target_answers_per_task: float = TARGET_ANSWERS_PER_TASK,
    model_kwargs: Optional[dict] = None,
) -> Dict[str, object]:
    """Answers-to-quality curves for every strategy × scenario.

    Per (strategy, scenario) pair the per-seed results are averaged into
    ``mean_error_rate`` / ``final_error_rate``; the first seed's full curve
    is recorded as the representative trace.  The returned dict carries the
    ``strategy_paper_dominates_clean`` bit: paper's mean error on the clean
    scenario must not exceed either baseline's.
    """
    seeds = tuple(seeds)
    strategies = tuple(strategies)
    scenarios = dict(SCENARIOS if scenarios is None else scenarios)
    curves: Dict[str, dict] = {}
    for scenario_name, scenario_kwargs in scenarios.items():
        per_strategy: Dict[str, dict] = {}
        for strategy in strategies:
            runs = [
                run_strategy_session(
                    strategy,
                    scenario_kwargs,
                    seed=seed,
                    num_rows=num_rows,
                    target_answers_per_task=target_answers_per_task,
                    model_kwargs=model_kwargs,
                )
                for seed in seeds
            ]
            per_strategy[strategy] = {
                "mean_error_rate": sum(r["mean_error_rate"] for r in runs)
                / len(runs),
                "final_error_rate": sum(r["final_error_rate"] for r in runs)
                / len(runs),
                "curve": runs[0]["curve"],
            }
        curves[scenario_name] = per_strategy
    clean = curves.get("clean", {})
    paper_mean = clean.get("paper", {}).get("mean_error_rate")
    dominates = True
    for baseline in ("random", "round_robin"):
        baseline_mean = clean.get(baseline, {}).get("mean_error_rate")
        if paper_mean is not None and baseline_mean is not None:
            dominates &= paper_mean <= baseline_mean
    return {
        "strategy_seeds": list(seeds),
        "strategy_num_rows": int(num_rows),
        "strategy_target_answers_per_task": float(target_answers_per_task),
        "strategy_names": list(strategies),
        "strategy_scenarios": sorted(scenarios),
        "strategy_curves": curves,
        "strategy_paper_dominates_clean": bool(dominates),
    }


def verify_strategy_default_identical(
    scenario: Optional[dict] = None,
) -> Dict[str, object]:
    """Default spec vs pinned ``strategy="paper"``, across every serving mode.

    Compares the full assignment sequence and the decision-chain head of
    the scripted golden-trace session.  Any divergence means the strategy
    seam is not byte-neutral for the default — the regression the
    ``strategy_default_identical`` bit hard-fails on.
    """
    from repro.service.bench import SERVING_MODES, run_scripted_session

    results: Dict[str, object] = {}
    identical = True
    for mode in SERVING_MODES:
        base = run_scripted_session(mode, scenario=scenario)
        pinned = run_scripted_session(
            mode, scenario={**(scenario or {}), "strategy": "paper"}
        )
        same = (
            base["decisions"] == pinned["decisions"]
            and base["estimates"] == pinned["estimates"]
            and base["session"].recorder.chain_head
            == pinned["session"].recorder.chain_head
        )
        results[f"strategy_default_identical_{mode}"] = bool(same)
        identical &= same
    results["strategy_default_identical"] = bool(identical)
    return results


def measure_strategy_bench(scenario: Optional[dict] = None) -> Dict[str, object]:
    """Everything ``run_bench.py --strategies`` records."""
    stats = verify_strategy_default_identical(scenario=scenario)
    stats.update(measure_strategy_curves())
    return stats


if __name__ == "__main__":
    import json

    print(json.dumps(measure_strategy_bench(), indent=2))
