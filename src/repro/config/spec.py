"""The versioned ``SessionSpec``: one serializable description of a session.

Every serving mode the engine grew in PRs 1-4 (incremental, sharded,
async-refit, composed, durable) used to be wired through a different ad-hoc
surface: ``CrowdsourcingSession.__init__`` keyword arguments, the
``measure_engine_speedup`` benchmark knobs (with *different* defaults),
hand-mapped CLI flags in ``benchmarks/run_bench.py``, and the JSON dialect
of ``POST /sessions``.  This module replaces all of them with one typed,
immutable, **versioned** document:

``SessionSpec``
    ``version`` (always ``1``) plus four nested sections —
    :class:`PolicySpec` (with its :class:`ModelSpec`), :class:`ServingSpec`,
    :class:`DurabilitySpec` and :class:`SimulationSpec`.

The spec is the unit that crosses boundaries: it round-trips through
``to_dict()`` / ``from_dict()`` **exactly** (every float survives JSON with
the same ``repr``-based discipline as the WAL codec in
:mod:`repro.service.wal`), it is pinned to ``session.json`` inside durable
directories, it is the body of ``POST /sessions`` and the response of
``GET /sessions/{id}/config`` — and, being plain data, it can ship across a
process boundary next to the ``(epoch, answers_seen)`` snapshot protocol,
which is what the process-level sharding follow-up in ROADMAP.md needs.

Validation is strict and **path-qualified**: every violation raises a
:class:`SpecValidationError` (a :class:`~repro.utils.exceptions.ConfigurationError`)
whose message starts with the dotted field path, e.g.
``serving.shards must be >= 1, got 0`` — the HTTP API surfaces the path in
its 400 responses.  Unknown fields are rejected, never ignored.

This module deliberately imports nothing heavy (no numpy, no engine code):
``python -m repro.config.validate`` must run in a lint-only environment.
The factory that turns a spec into live policy objects lives in
:mod:`repro.config.factory`.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Optional, Tuple

from repro.utils.exceptions import ConfigurationError

#: The one schema version this package reads and writes.  Bump only with an
#: upgrade shim from every older version (the PR-4 service dialect upgrades
#: via :func:`upgrade_legacy_config`).
SPEC_VERSION = 1

#: Service-envelope keys that ride *next to* a spec in a ``POST /sessions``
#: body: where the rows live (``schema`` inline or a named ``dataset``),
#: the caller-chosen ``session_id``, and the ``durable`` flag that asks the
#: server to place the session under its ``--durable-root``.
ENVELOPE_KEYS = ("schema", "dataset", "session_id", "durable")


class SpecValidationError(ConfigurationError):
    """A spec field failed validation; ``path`` is the dotted field path."""

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"{path} {message}")
        self.path = path


# -- field checkers -----------------------------------------------------------


def _check_bool(path: str, value) -> bool:
    if not isinstance(value, bool):
        raise SpecValidationError(path, f"must be a boolean, got {value!r}")
    return value


def _check_int(
    path: str,
    value,
    minimum: Optional[int] = None,
    optional: bool = False,
):
    if value is None:
        if optional:
            return None
        raise SpecValidationError(path, "must be an integer, got None")
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecValidationError(path, f"must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        suffix = " or null" if optional else ""
        raise SpecValidationError(
            path, f"must be >= {minimum}{suffix}, got {value}"
        )
    return int(value)


def _check_float(
    path: str,
    value,
    minimum: Optional[float] = None,
    exclusive: bool = False,
    optional: bool = False,
):
    if value is None:
        if optional:
            return None
        raise SpecValidationError(path, "must be a number, got None")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecValidationError(path, f"must be a number, got {value!r}")
    value = float(value)
    if value != value:  # NaN never validates
        raise SpecValidationError(path, "must be a finite number, got nan")
    if value in (float("inf"), float("-inf")):
        raise SpecValidationError(path, f"must be a finite number, got {value}")
    if minimum is not None:
        if exclusive and value <= minimum:
            raise SpecValidationError(path, f"must be > {minimum}, got {value}")
        if not exclusive and value < minimum:
            raise SpecValidationError(path, f"must be >= {minimum}, got {value}")
    return value


def _check_str(path: str, value, optional: bool = False):
    if value is None:
        if optional:
            return None
        raise SpecValidationError(path, "must be a string, got None")
    if isinstance(value, os.PathLike):
        value = os.fspath(value)
    if not isinstance(value, str):
        raise SpecValidationError(path, f"must be a string, got {value!r}")
    if not value:
        raise SpecValidationError(path, "must be a non-empty string")
    return value


def _reject_unknown(section: str, payload: dict, known: Tuple[str, ...]) -> None:
    if not isinstance(payload, dict):
        raise SpecValidationError(
            section, f"must be a JSON object, got {payload!r}"
        )
    for key in payload:
        if key not in known:
            raise SpecValidationError(
                f"{section}.{key}",
                f"is not a recognised field (expected one of {sorted(known)})",
            )


def _field_names(cls) -> Tuple[str, ...]:
    return tuple(f.name for f in dataclasses.fields(cls))


# -- nested sections ----------------------------------------------------------


#: Assignment-strategy names the spec accepts (must match the registry in
#: :mod:`repro.strategies`; listed here so the spec module stays importable
#: without the strategies package).
STRATEGY_NAMES = (
    "paper",
    "random",
    "round_robin",
    "uncertainty",
    "budget_voi",
    "epsilon_greedy",
)


@dataclass(frozen=True)
class StrategySpec:
    """Which assignment strategy the policy serves (:mod:`repro.strategies`).

    ``name`` selects the strategy; the remaining fields parameterise the
    strategies that take options and are ignored by the ones that do not
    (they still round-trip exactly, so two specs differing only in an
    unused knob compare unequal — the spec is a document, not behaviour):

    * ``epsilon`` / ``base`` — the explore probability and the exploited
      base strategy of ``epsilon_greedy`` (``base`` may be any strategy
      except ``epsilon_greedy`` itself);
    * ``confidence`` / ``min_answers`` — the posterior-confidence
      retirement threshold of ``budget_voi`` and the minimum answers a
      cell must collect before it may retire;
    * ``seed`` — the deterministic score stream of ``random`` and the
      explore draws of ``epsilon_greedy`` (hash-derived, never a stateful
      RNG, so every serving mode and every WAL replay scores identically).

    ``"paper"`` (the default) is byte-for-byte the gain-based selector of
    Sections 5.1/5.2 — specs that never mention a strategy behave exactly
    as they did before the strategy axis existed.
    """

    _SECTION: ClassVar[str] = "policy.strategy"

    name: str = "paper"
    epsilon: float = 0.1
    base: str = "paper"
    confidence: float = 0.9
    min_answers: int = 2
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        s = self._SECTION
        set_ = object.__setattr__
        name = _check_str(f"{s}.name", self.name)
        if name not in STRATEGY_NAMES:
            raise SpecValidationError(
                f"{s}.name",
                f"must be one of {list(STRATEGY_NAMES)}, got {name!r}",
            )
        set_(self, "name", name)
        epsilon = _check_float(f"{s}.epsilon", self.epsilon, 0.0)
        if epsilon > 1.0:
            raise SpecValidationError(
                f"{s}.epsilon", f"must be <= 1.0, got {epsilon}"
            )
        set_(self, "epsilon", epsilon)
        base = _check_str(f"{s}.base", self.base)
        if base not in STRATEGY_NAMES or base == "epsilon_greedy":
            raise SpecValidationError(
                f"{s}.base",
                "must be a non-composite strategy name "
                f"({[n for n in STRATEGY_NAMES if n != 'epsilon_greedy']}), "
                f"got {base!r}",
            )
        set_(self, "base", base)
        confidence = _check_float(
            f"{s}.confidence", self.confidence, 0.0, exclusive=True
        )
        if confidence > 1.0:
            raise SpecValidationError(
                f"{s}.confidence", f"must be <= 1.0, got {confidence}"
            )
        set_(self, "confidence", confidence)
        set_(self, "min_answers",
             _check_int(f"{s}.min_answers", self.min_answers, 0))
        set_(self, "seed", _check_int(f"{s}.seed", self.seed, 0, optional=True))

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload) -> "StrategySpec":
        if isinstance(payload, str):
            # Shorthand: "uncertainty" == {"name": "uncertainty"}.
            return cls(name=payload)
        _reject_unknown(cls._SECTION, payload, _field_names(cls))
        return cls(**payload)


@dataclass(frozen=True)
class ModelSpec:
    """EM truth-inference options (:class:`~repro.core.inference.TCrowdModel`).

    Field-for-field the ``TCrowdModel`` constructor, with identical
    defaults, so ``TCrowdModel(**spec.to_kwargs())`` is always valid.
    """

    _SECTION: ClassVar[str] = "policy.model"

    epsilon: float = 1.0
    max_iterations: int = 50
    tolerance: float = 1e-5
    m_step_iterations: int = 30
    difficulty_regularization: float = 0.1
    phi_regularization: float = 1e-3
    use_difficulty: bool = True
    standardize_continuous: bool = True
    seed: Optional[int] = None
    m_step: str = "lbfgs"

    def __post_init__(self) -> None:
        s = self._SECTION
        set_ = object.__setattr__
        set_(self, "epsilon",
             _check_float(f"{s}.epsilon", self.epsilon, 0.0, exclusive=True))
        set_(self, "max_iterations",
             _check_int(f"{s}.max_iterations", self.max_iterations, 1))
        set_(self, "tolerance",
             _check_float(f"{s}.tolerance", self.tolerance, 0.0, exclusive=True))
        set_(self, "m_step_iterations",
             _check_int(f"{s}.m_step_iterations", self.m_step_iterations, 1))
        set_(self, "difficulty_regularization",
             _check_float(f"{s}.difficulty_regularization",
                          self.difficulty_regularization, 0.0))
        set_(self, "phi_regularization",
             _check_float(f"{s}.phi_regularization", self.phi_regularization, 0.0))
        set_(self, "use_difficulty",
             _check_bool(f"{s}.use_difficulty", self.use_difficulty))
        set_(self, "standardize_continuous",
             _check_bool(f"{s}.standardize_continuous",
                         self.standardize_continuous))
        set_(self, "seed", _check_int(f"{s}.seed", self.seed, 0, optional=True))
        m_step = _check_str(f"{s}.m_step", self.m_step)
        if m_step not in ("lbfgs", "newton"):
            raise SpecValidationError(
                f"{s}.m_step", f"must be 'lbfgs' or 'newton', got {m_step!r}"
            )
        set_(self, "m_step", m_step)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    to_kwargs = to_dict  # ``TCrowdModel(**spec.to_kwargs())``

    @classmethod
    def from_dict(cls, payload: dict) -> "ModelSpec":
        _reject_unknown(cls._SECTION, payload, _field_names(cls))
        return cls(**payload)


@dataclass(frozen=True)
class PolicySpec:
    """Assignment-policy options (:class:`~repro.core.assignment.TCrowdAssigner`).

    Field-for-field the ``TCrowdAssigner`` constructor (minus the schema and
    the serving-time ``refit_tol``, which lives in :class:`ServingSpec`),
    with identical defaults.
    """

    _SECTION: ClassVar[str] = "policy"

    model: ModelSpec = field(default_factory=ModelSpec)
    strategy: StrategySpec = field(default_factory=StrategySpec)
    use_structure: bool = True
    refit_every: int = 1
    continuous_samples: int = 0
    max_answers_per_cell: Optional[int] = None
    min_pairs: int = 5
    seed: Optional[int] = None
    warm_start: bool = True
    vectorized: bool = True
    incremental: bool = True

    def __post_init__(self) -> None:
        s = self._SECTION
        set_ = object.__setattr__
        if not isinstance(self.model, ModelSpec):
            raise SpecValidationError(
                f"{s}.model", f"must be a model object, got {self.model!r}"
            )
        if not isinstance(self.strategy, StrategySpec):
            raise SpecValidationError(
                f"{s}.strategy",
                f"must be a strategy object, got {self.strategy!r}",
            )
        set_(self, "use_structure",
             _check_bool(f"{s}.use_structure", self.use_structure))
        set_(self, "refit_every",
             _check_int(f"{s}.refit_every", self.refit_every, 1))
        set_(self, "continuous_samples",
             _check_int(f"{s}.continuous_samples", self.continuous_samples, 0))
        set_(self, "max_answers_per_cell",
             _check_int(f"{s}.max_answers_per_cell", self.max_answers_per_cell,
                        1, optional=True))
        set_(self, "min_pairs", _check_int(f"{s}.min_pairs", self.min_pairs, 0))
        set_(self, "seed", _check_int(f"{s}.seed", self.seed, 0, optional=True))
        set_(self, "warm_start", _check_bool(f"{s}.warm_start", self.warm_start))
        set_(self, "vectorized", _check_bool(f"{s}.vectorized", self.vectorized))
        set_(self, "incremental",
             _check_bool(f"{s}.incremental", self.incremental))

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["model"] = self.model.to_dict()
        payload["strategy"] = self.strategy.to_dict()
        return payload

    def to_kwargs(self) -> dict:
        """``TCrowdAssigner`` keyword arguments (model/strategy excluded).

        The model and strategy fields are *specs*; the factory builds the
        live objects (``build_model`` / ``repro.strategies.build_strategy``)
        and passes them alongside these kwargs.
        """
        payload = self.to_dict()
        payload.pop("model")
        payload.pop("strategy")
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "PolicySpec":
        _reject_unknown(cls._SECTION, payload, _field_names(cls))
        payload = dict(payload)
        if "model" in payload:
            payload["model"] = ModelSpec.from_dict(payload["model"])
        if "strategy" in payload:
            payload["strategy"] = StrategySpec.from_dict(payload["strategy"])
        return cls(**payload)


@dataclass(frozen=True)
class ServingSpec:
    """How the policy is served: sharding, async refits, staleness.

    ``max_stale_answers`` semantics (the **single** definition — the
    platform session and the benchmarks used to disagree on the default):

    * ``0`` (the default) — *blocking*: every select waits until the model
      has seen every collected answer, which replays the synchronous
      session bit for bit.  This is the mode all recorded equivalence bits
      (``identical_assignments_async`` / ``..._sharded_async``) pin.
    * a positive bound — *bounded staleness*: selects score against the
      latest published snapshot as long as it trails the collected answers
      by at most this many; only a staler snapshot blocks.  The production
      mode.
    * ``null`` — *unbounded*: selects never block on the refit worker.

    ``refit_tol`` is the objective-based early-stopping tolerance of the
    warm-started serving refits (``TCrowdAssigner(refit_tol=...)``); it
    lives here rather than in :class:`PolicySpec` because it tunes the
    serving loop, not the paper's algorithm.

    ``scoring_cache`` (composed mode only) reuses the snapshot-derived gain
    calculator across selects, keyed by ``(epoch, answers_seen)``; the
    cache is behaviour-neutral (a hit requires the exact inputs a rebuild
    would use) and exists purely as an escape hatch for debugging.

    ``processes`` moves the scoring/refit workers out of process: ``0``
    (the default) keeps every serving mode in-process; ``N >= 1`` spawns
    ``N`` shard-group worker processes behind a coordinator
    (:class:`repro.engine.coordinator.ProcessShardCoordinator`).  The
    effective shard count is ``max(shards, processes)`` so every worker
    owns at least one contiguous shard range.

    ``audit`` (default on) records every select into the session's
    decision-provenance ledger
    (:class:`repro.engine.provenance.DecisionRecorder`): lineage, model
    hash and chained reproducibility hash per decision, queryable over
    ``GET /sessions/{id}/decisions``.  ``false`` is the escape hatch for
    latency-critical deployments that would rather lose the audit trail
    than pay the (benchmarked, <10%) recording overhead.
    """

    _SECTION: ClassVar[str] = "serving"

    shards: int = 1
    shard_workers: Optional[int] = None
    async_refit: bool = False
    max_stale_answers: Optional[int] = 0
    refit_tol: Optional[float] = None
    scoring_cache: bool = True
    processes: int = 0
    audit: bool = True

    def __post_init__(self) -> None:
        s = self._SECTION
        set_ = object.__setattr__
        set_(self, "shards", _check_int(f"{s}.shards", self.shards, 1))
        set_(self, "shard_workers",
             _check_int(f"{s}.shard_workers", self.shard_workers, 1,
                        optional=True))
        set_(self, "async_refit",
             _check_bool(f"{s}.async_refit", self.async_refit))
        set_(self, "max_stale_answers",
             _check_int(f"{s}.max_stale_answers", self.max_stale_answers, 0,
                        optional=True))
        set_(self, "refit_tol",
             _check_float(f"{s}.refit_tol", self.refit_tol, 0.0,
                          exclusive=True, optional=True))
        set_(self, "scoring_cache",
             _check_bool(f"{s}.scoring_cache", self.scoring_cache))
        set_(self, "processes",
             _check_int(f"{s}.processes", self.processes, 0))
        set_(self, "audit", _check_bool(f"{s}.audit", self.audit))
        if self.processes and self.async_refit:
            raise SpecValidationError(
                f"{s}.async_refit",
                "must be false when serving.processes >= 1 (worker "
                "processes own their refit schedule; the in-process async "
                "engine would race it)",
            )

    @property
    def wants_wrapper(self) -> bool:
        """True when a serving wrapper (sharded/async/composed) is needed."""
        return self.async_refit or self.shards > 1 or self.processes >= 1

    def describe(self) -> str:
        """Human-readable serving mode, e.g. ``sharded x4 + async refit``."""
        parts = []
        if self.processes >= 1:
            parts.append(f"multiprocess x{self.processes}")
        if self.shards > 1:
            parts.append(f"sharded x{self.shards}")
        if self.async_refit:
            stale = (
                "unbounded"
                if self.max_stale_answers is None
                else self.max_stale_answers
            )
            parts.append(f"async refit (max_stale={stale})")
        return " + ".join(parts) if parts else "incremental"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ServingSpec":
        _reject_unknown(cls._SECTION, payload, _field_names(cls))
        return cls(**payload)


#: Durability backend names (must match ``repro.service.storage``; listed
#: here so the spec module stays importable without the service package).
DURABILITY_BACKENDS = ("jsonl", "sqlite")


@dataclass(frozen=True)
class DurabilitySpec:
    """Write-ahead logging, snapshot cadence and retention
    (:mod:`repro.service.wal` / :mod:`repro.service.storage`).

    ``durable_dir`` is where the WAL and snapshots live; ``None`` disables
    durability (the service can still resolve a directory for you when the
    envelope carries ``"durable": true`` and the server has a
    ``--durable-root``).  ``backend`` picks the storage layout (``jsonl``
    segments or one ``sqlite`` database).  ``wal_fsync`` forces every
    append — and snapshot — to disk: power-loss durability at a heavy
    per-event cost; the flush-only default survives process crashes.
    ``rotate_every_records`` seals a JSONL WAL segment after that many
    records (``None`` keeps the single-file layout; SQLite ignores it);
    ``keep_snapshots`` retains only the newest N snapshots and prunes WAL
    storage their oldest survivor fully covers (``None`` retains
    everything).
    """

    _SECTION: ClassVar[str] = "durability"

    durable_dir: Optional[str] = None
    snapshot_every_answers: int = 200
    wal_fsync: bool = False
    backend: str = "jsonl"
    rotate_every_records: Optional[int] = None
    keep_snapshots: Optional[int] = None

    def __post_init__(self) -> None:
        s = self._SECTION
        set_ = object.__setattr__
        set_(self, "durable_dir",
             _check_str(f"{s}.durable_dir", self.durable_dir, optional=True))
        set_(self, "snapshot_every_answers",
             _check_int(f"{s}.snapshot_every_answers",
                        self.snapshot_every_answers, 1))
        set_(self, "wal_fsync", _check_bool(f"{s}.wal_fsync", self.wal_fsync))
        backend = _check_str(f"{s}.backend", self.backend)
        if backend not in DURABILITY_BACKENDS:
            raise SpecValidationError(
                f"{s}.backend",
                f"must be one of {list(DURABILITY_BACKENDS)}, got {backend!r}",
            )
        set_(self, "backend", backend)
        set_(self, "rotate_every_records",
             _check_int(f"{s}.rotate_every_records",
                        self.rotate_every_records, 1, optional=True))
        set_(self, "keep_snapshots",
             _check_int(f"{s}.keep_snapshots",
                        self.keep_snapshots, 1, optional=True))

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "DurabilitySpec":
        _reject_unknown(cls._SECTION, payload, _field_names(cls))
        return cls(**payload)


@dataclass(frozen=True)
class SimulationSpec:
    """Budget and cadence of a simulated session (the Section 6.3 protocol).

    Only the platform simulator and the benchmarks read this section; the
    live HTTP service ignores it (real crowds bring their own budget).

    The scenario knobs make the simulated crowd adversarial — each one is
    **off at its default** and, when off, consumes *zero* extra RNG draws,
    so every pre-existing seeded trace (the golden-trace fixture, the
    equivalence benchmarks) replays bit for bit:

    * ``worker_churn_rate`` — probability per arrival that the active
      worker subset is resampled (workers leave mid-session, others —
      including previously departed ones — arrive);
    * ``spam_fraction`` / ``spam_contamination`` — a seeded fraction of
      the pool has its contamination raised to ``spam_contamination``
      (adversarial workers answering at random);
    * ``difficulty_drift`` — deterministic multiplicative drift of the
      oracle's row difficulties (``exp(rate * steps)``, capped — the task
      mix gets harder as the session runs).

    All scenario randomness derives from ``seed`` through per-feature
    hash-derived sub-seeds, so a scenario run is exactly replayable.
    """

    _SECTION: ClassVar[str] = "simulation"

    target_answers_per_task: float = 5.0
    initial_answers_per_task: int = 1
    batch_size: Optional[int] = None
    eval_every_answers_per_task: float = 0.5
    seed: Optional[int] = None
    max_steps: Optional[int] = None
    worker_churn_rate: float = 0.0
    spam_fraction: float = 0.0
    spam_contamination: float = 0.9
    difficulty_drift: float = 0.0

    def __post_init__(self) -> None:
        s = self._SECTION
        set_ = object.__setattr__
        set_(self, "target_answers_per_task",
             _check_float(f"{s}.target_answers_per_task",
                          self.target_answers_per_task, 0.0, exclusive=True))
        set_(self, "initial_answers_per_task",
             _check_int(f"{s}.initial_answers_per_task",
                        self.initial_answers_per_task, 1))
        set_(self, "batch_size",
             _check_int(f"{s}.batch_size", self.batch_size, 1, optional=True))
        set_(self, "eval_every_answers_per_task",
             _check_float(f"{s}.eval_every_answers_per_task",
                          self.eval_every_answers_per_task, 0.0,
                          exclusive=True))
        set_(self, "seed", _check_int(f"{s}.seed", self.seed, 0, optional=True))
        set_(self, "max_steps",
             _check_int(f"{s}.max_steps", self.max_steps, 0, optional=True))
        for name, ceiling in (
            ("worker_churn_rate", 0.999),
            ("spam_fraction", 1.0),
            ("spam_contamination", 1.0),
        ):
            value = _check_float(f"{s}.{name}", getattr(self, name), 0.0)
            if value > ceiling:
                raise SpecValidationError(
                    f"{s}.{name}", f"must be <= {ceiling}, got {value}"
                )
            set_(self, name, value)
        set_(self, "difficulty_drift",
             _check_float(f"{s}.difficulty_drift", self.difficulty_drift, 0.0))
        if self.target_answers_per_task <= self.initial_answers_per_task:
            raise SpecValidationError(
                f"{s}.target_answers_per_task",
                "must exceed simulation.initial_answers_per_task "
                f"({self.initial_answers_per_task}), got "
                f"{self.target_answers_per_task}",
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationSpec":
        _reject_unknown(cls._SECTION, payload, _field_names(cls))
        return cls(**payload)


# -- the versioned spec -------------------------------------------------------


@dataclass(frozen=True)
class SessionSpec:
    """The canonical, versioned description of one serving session.

    Immutable; derive variants with :meth:`with_durable_dir` or
    ``dataclasses.replace``.  ``from_dict(to_dict(spec)) == spec`` holds
    exactly for every valid spec (property-tested), including through a
    JSON encode/decode — the discipline that lets the spec cross process
    boundaries.
    """

    version: int = SPEC_VERSION
    policy: PolicySpec = field(default_factory=PolicySpec)
    serving: ServingSpec = field(default_factory=ServingSpec)
    durability: DurabilitySpec = field(default_factory=DurabilitySpec)
    simulation: SimulationSpec = field(default_factory=SimulationSpec)

    def __post_init__(self) -> None:
        if self.version != SPEC_VERSION:
            raise SpecValidationError(
                "version", f"must be {SPEC_VERSION}, got {self.version!r}"
            )
        for name, expected in (
            ("policy", PolicySpec),
            ("serving", ServingSpec),
            ("durability", DurabilitySpec),
            ("simulation", SimulationSpec),
        ):
            if not isinstance(getattr(self, name), expected):
                raise SpecValidationError(
                    name, f"must be a {name} object, got {getattr(self, name)!r}"
                )
        if self.serving.shards > 1 and self.policy.continuous_samples:
            raise SpecValidationError(
                "policy.continuous_samples",
                "must be 0 when serving.shards > 1 (the Monte-Carlo gain "
                "estimator consumes an ordered sample stream that sharding "
                "would reorder)",
            )
        if self.serving.async_refit and self.policy.continuous_samples:
            raise SpecValidationError(
                "policy.continuous_samples",
                "must be 0 when serving.async_refit is true (background "
                "refits would reorder the Monte-Carlo sample stream)",
            )
        if self.serving.processes >= 1 and self.policy.continuous_samples:
            raise SpecValidationError(
                "policy.continuous_samples",
                "must be 0 when serving.processes >= 1 (each worker "
                "process draws its own Monte-Carlo sample stream, which "
                "would diverge from the single-process stream)",
            )

    # -- codecs ---------------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-safe form: every field explicit, floats exact."""
        return {
            "version": self.version,
            "policy": self.policy.to_dict(),
            "serving": self.serving.to_dict(),
            "durability": self.durability.to_dict(),
            "simulation": self.simulation.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SessionSpec":
        """Parse (strictly) the dict produced by :meth:`to_dict`.

        Sections may be omitted (their defaults apply); unknown keys and
        invalid values raise :class:`SpecValidationError` with the dotted
        field path.
        """
        _reject_unknown("spec", payload, _field_names(cls))
        if "version" not in payload:
            raise SpecValidationError(
                "version", f"is required (this library reads version {SPEC_VERSION})"
            )
        return cls(
            version=payload["version"],
            policy=PolicySpec.from_dict(payload.get("policy") or {}),
            serving=ServingSpec.from_dict(payload.get("serving") or {}),
            durability=DurabilitySpec.from_dict(payload.get("durability") or {}),
            simulation=SimulationSpec.from_dict(payload.get("simulation") or {}),
        )

    # -- conveniences ---------------------------------------------------------

    @staticmethod
    def builder() -> "SessionSpecBuilder":
        """A fluent builder::

            SessionSpec.builder().sharded(4).async_refit(max_stale=64) \\
                       .durable(root).build()
        """
        return SessionSpecBuilder()

    def with_durable_dir(self, durable_dir) -> "SessionSpec":
        """This spec with ``durability.durable_dir`` replaced."""
        durability = dataclasses.replace(
            self.durability,
            durable_dir=None if durable_dir is None else os.fspath(durable_dir),
        )
        return dataclasses.replace(self, durability=durability)

    def describe(self) -> str:
        """One-line human summary (serving mode + durability)."""
        text = self.serving.describe()
        if self.durability.durable_dir is not None:
            text += " [durable]"
        return text

    # -- legacy adapters ------------------------------------------------------

    @classmethod
    def from_legacy_kwargs(
        cls,
        *,
        target_answers_per_task: float = 5.0,
        initial_answers_per_task: int = 1,
        batch_size: Optional[int] = None,
        eval_every_answers_per_task: float = 0.5,
        seed=None,
        max_steps: Optional[int] = None,
        shards: Optional[int] = None,
        shard_workers: Optional[int] = None,
        async_refit: bool = False,
        max_stale_answers: Optional[int] = 0,
        durable_dir=None,
        snapshot_every_answers: int = 200,
        wal_fsync: bool = False,
    ) -> "SessionSpec":
        """Adapt the pre-spec ``CrowdsourcingSession`` keyword surface.

        The defaults are the session's historical defaults — in particular
        ``max_stale_answers=0`` (blocking), the value this spec adopted as
        the unified default (see :class:`ServingSpec`).  ``shards`` of
        ``None``/``0``/``1`` all mean "unsharded".  The session's RNG seed
        may be any value :func:`repro.utils.rng.as_generator` accepts, so
        it is only recorded when it is a plain non-negative integer.
        """
        if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
            seed = None
        return cls(
            serving=ServingSpec(
                shards=shards if shards else 1,
                shard_workers=shard_workers,
                async_refit=bool(async_refit),
                max_stale_answers=max_stale_answers,
            ),
            durability=DurabilitySpec(
                durable_dir=(
                    None if durable_dir is None else os.fspath(durable_dir)
                ),
                snapshot_every_answers=snapshot_every_answers,
                wal_fsync=bool(wal_fsync),
            ),
            simulation=SimulationSpec(
                target_answers_per_task=target_answers_per_task,
                initial_answers_per_task=initial_answers_per_task,
                batch_size=batch_size,
                eval_every_answers_per_task=eval_every_answers_per_task,
                seed=seed,
                max_steps=max_steps,
            ),
        )


# -- fluent builder -----------------------------------------------------------


class SessionSpecBuilder:
    """Accumulates sections, then validates once in :meth:`build`."""

    def __init__(self) -> None:
        self._model: Dict[str, object] = {}
        self._policy: Dict[str, object] = {}
        self._serving: Dict[str, object] = {}
        self._durability: Dict[str, object] = {}
        self._simulation: Dict[str, object] = {}

    def model(self, **options) -> "SessionSpecBuilder":
        """Set :class:`ModelSpec` fields."""
        self._model.update(options)
        return self

    def policy(self, **options) -> "SessionSpecBuilder":
        """Set :class:`PolicySpec` fields (model fields via :meth:`model`)."""
        self._policy.update(options)
        return self

    def strategy(self, name: str, **options) -> "SessionSpecBuilder":
        """Select the assignment strategy (see :class:`StrategySpec`)::

            SessionSpec.builder().strategy("epsilon_greedy", epsilon=0.2)
        """
        self._policy["strategy"] = {"name": name, **options}
        return self

    def serving(self, **options) -> "SessionSpecBuilder":
        """Set :class:`ServingSpec` fields directly."""
        self._serving.update(options)
        return self

    def sharded(self, shards: int, workers: Optional[int] = None) -> "SessionSpecBuilder":
        """Serve through a partitioned candidate pool of ``shards`` shards."""
        self._serving["shards"] = shards
        if workers is not None:
            self._serving["shard_workers"] = workers
        return self

    def async_refit(
        self,
        max_stale: Optional[int] = 0,
        refit_tol: Optional[float] = None,
    ) -> "SessionSpecBuilder":
        """Run EM refits in a background worker (see :class:`ServingSpec`)."""
        self._serving["async_refit"] = True
        self._serving["max_stale_answers"] = max_stale
        if refit_tol is not None:
            self._serving["refit_tol"] = refit_tol
        return self

    def durable(
        self,
        durable_dir,
        snapshot_every_answers: Optional[int] = None,
        wal_fsync: Optional[bool] = None,
        backend: Optional[str] = None,
        rotate_every_records: Optional[int] = None,
        keep_snapshots: Optional[int] = None,
    ) -> "SessionSpecBuilder":
        """Log every event to a write-ahead log under ``durable_dir``."""
        self._durability["durable_dir"] = (
            None if durable_dir is None else os.fspath(durable_dir)
        )
        if snapshot_every_answers is not None:
            self._durability["snapshot_every_answers"] = snapshot_every_answers
        if wal_fsync is not None:
            self._durability["wal_fsync"] = wal_fsync
        if backend is not None:
            self._durability["backend"] = backend
        if rotate_every_records is not None:
            self._durability["rotate_every_records"] = rotate_every_records
        if keep_snapshots is not None:
            self._durability["keep_snapshots"] = keep_snapshots
        return self

    def simulation(self, **options) -> "SessionSpecBuilder":
        """Set :class:`SimulationSpec` fields."""
        self._simulation.update(options)
        return self

    def build(self) -> SessionSpec:
        """Validate and freeze the accumulated sections into a spec."""
        policy = dict(self._policy)
        if self._model:
            policy["model"] = dict(self._model)
        payload: Dict[str, object] = {"version": SPEC_VERSION}
        if policy:
            payload["policy"] = policy
        if self._serving:
            payload["serving"] = dict(self._serving)
        if self._durability:
            payload["durability"] = dict(self._durability)
        if self._simulation:
            payload["simulation"] = dict(self._simulation)
        return SessionSpec.from_dict(payload)


# -- service-body helpers -----------------------------------------------------


def split_envelope(body: dict) -> Tuple[dict, dict]:
    """Split a v1 service body into ``(envelope, spec_payload)``.

    The envelope carries :data:`ENVELOPE_KEYS`; everything else must be
    spec fields (validated by :meth:`SessionSpec.from_dict`).
    """
    if not isinstance(body, dict):
        raise SpecValidationError("spec", f"must be a JSON object, got {body!r}")
    envelope = {}
    payload = {}
    for key, value in body.items():
        if key in ENVELOPE_KEYS:
            envelope[key] = value
        else:
            payload[key] = value
    return envelope, payload


def upgrade_legacy_config(config: dict) -> dict:
    """Upgrade the PR-4 ``POST /sessions`` dialect to a v1 spec body.

    The legacy dialect (still accepted, documented here as the upgrade
    path) differs from v1 in four ways:

    * no ``version`` key (its absence is what routes a body through this
      shim);
    * durability fields at the top level (``durable_dir``,
      ``snapshot_every``, ``fsync``) instead of a ``durability`` section
      (``durable_dir``, ``snapshot_every_answers``, ``wal_fsync``);
    * ``refit_tol`` under ``policy`` instead of ``serving``;
    * ``serving.shards`` could be ``null`` to mean "unsharded" (v1 says
      ``1``).

    Returns the equivalent v1 body (envelope keys preserved); raises
    :class:`SpecValidationError` for keys neither dialect defines.
    """
    config = dict(config)
    out: Dict[str, object] = {"version": SPEC_VERSION}
    for key in ENVELOPE_KEYS:
        if key in config:
            out[key] = config.pop(key)
    policy = dict(config.pop("policy", None) or {})
    refit_tol = policy.pop("refit_tol", None)
    if policy:
        out["policy"] = policy
    serving = dict(config.pop("serving", None) or {})
    if serving.get("shards", 1) is None:
        serving.pop("shards")
    if refit_tol is not None:
        serving["refit_tol"] = refit_tol
    if serving:
        out["serving"] = serving
    durability = {}
    if config.get("durable_dir") is not None:
        durability["durable_dir"] = config.pop("durable_dir")
    else:
        config.pop("durable_dir", None)
    if "snapshot_every" in config:
        durability["snapshot_every_answers"] = config.pop("snapshot_every")
    if "fsync" in config:
        durability["wal_fsync"] = config.pop("fsync")
    if durability:
        out["durability"] = durability
    if config:
        key = sorted(config)[0]
        raise SpecValidationError(
            key,
            "is not a recognised legacy session-config key; post a "
            "version-1 spec body instead (see repro.config)",
        )
    return out
