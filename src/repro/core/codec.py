"""Exact-float model-state codec and canonical hashing.

The write-ahead log and the decision-provenance layer share one
serialization discipline: every float goes through Python's ``repr``-based
JSON encoding, which round-trips IEEE-754 doubles bit for bit, and every
hash is computed over *canonical* JSON (sorted keys, no whitespace) so two
processes that hold the same model state produce the same digest.

:func:`serialize_result` / :func:`deserialize_result` moved here from
:mod:`repro.service.wal` (which re-exports them unchanged) so the engine
layer can hash model states without importing the service layer.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.core.inference import InferenceResult
from repro.core.posteriors import CategoricalPosterior, GaussianPosterior
from repro.core.schema import TableSchema
from repro.core.worker_model import WorkerModel
from repro.utils.exceptions import DurabilityError


def serialize_result(result: InferenceResult) -> dict:
    """Serialize an :class:`InferenceResult` to a JSON-safe dict, exactly.

    Every float goes through Python's ``repr``-based JSON encoding, which
    round-trips IEEE-754 doubles bit for bit; categorical posteriors are
    restored without renormalisation
    (:meth:`~repro.core.posteriors.CategoricalPosterior.from_normalized`),
    so ``deserialize_result(serialize_result(r), r.schema)`` reproduces the
    result's arrays and posteriors to the last bit — the precondition for
    replaying the warm-start chain identically after recovery.
    """
    posteriors = []
    for (row, col), posterior in result.posteriors.items():
        if posterior.is_categorical:
            payload = [float(p) for p in posterior.probs]
            kind = "c"
        else:
            payload = [float(posterior.mean), float(posterior.variance)]
            kind = "g"
        posteriors.append([int(row), int(col), kind, payload])
    return {
        "epsilon": float(result.worker_model.epsilon),
        "worker_ids": list(result.worker_ids),
        "alpha": [float(x) for x in result.alpha],
        "beta": [float(x) for x in result.beta],
        "phi": [float(x) for x in result.phi],
        "column_scale": [float(x) for x in result.column_scale],
        "column_offset": [float(x) for x in result.column_offset],
        "posteriors": posteriors,
        "objective_trace": [float(x) for x in result.objective_trace],
        "n_iterations": int(result.n_iterations),
        "converged": bool(result.converged),
        "stopped_by": str(result.stopped_by),
    }


def deserialize_result(payload: dict, schema: TableSchema) -> InferenceResult:
    """Rebuild the :class:`InferenceResult` serialized by :func:`serialize_result`."""
    posteriors = {}
    for row, col, kind, data in payload["posteriors"]:
        row, col = int(row), int(col)
        if kind == "c":
            posteriors[(row, col)] = CategoricalPosterior.from_normalized(
                schema.columns[col].labels, np.asarray(data, dtype=float)
            )
        elif kind == "g":
            posteriors[(row, col)] = GaussianPosterior(
                float(data[0]), float(data[1])
            )
        else:
            raise DurabilityError(f"Unknown posterior kind {kind!r} in snapshot")
    return InferenceResult(
        schema=schema,
        worker_model=WorkerModel(float(payload["epsilon"])),
        worker_ids=list(payload["worker_ids"]),
        alpha=np.asarray(payload["alpha"], dtype=float),
        beta=np.asarray(payload["beta"], dtype=float),
        phi=np.asarray(payload["phi"], dtype=float),
        column_scale=np.asarray(payload["column_scale"], dtype=float),
        column_offset=np.asarray(payload["column_offset"], dtype=float),
        posteriors=posteriors,
        objective_trace=list(payload["objective_trace"]),
        n_iterations=int(payload["n_iterations"]),
        converged=bool(payload["converged"]),
        stopped_by=str(payload["stopped_by"]),
    )


def canonical_json(payload) -> str:
    """The one canonical JSON text of a payload: sorted keys, no whitespace.

    Floats encode via ``repr`` (the stdlib default), so bit-identical
    doubles — and only bit-identical doubles — produce identical text.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_hash(payload) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def model_state_hash(result: InferenceResult) -> str:
    """Canonical hash of a model state: two equal digests mean two refits
    landed on bit-identical inference results."""
    return payload_hash(serialize_result(result))
