"""Figure 5 — effectiveness of assignment heuristics.

All heuristics use T-Crowd's truth inference (as in the paper's case study);
only the assignment criterion differs:

* Random, Looping, Entropy (raw uniform entropy),
* Inherent Information Gain (Section 5.1),
* Structure-Aware Information Gain (Section 5.2).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.assignment_simple import (
    EntropyAssigner,
    LoopingAssigner,
    RandomAssigner,
)
from repro.core.assignment import TCrowdAssigner
from repro.core.inference import TCrowdModel
from repro.datasets import load_restaurant
from repro.experiments.reporting import ExperimentReport
from repro.platform import CrowdsourcingSession


def run_figure5(
    seed: int = 11,
    num_rows: Optional[int] = 40,
    target_answers_per_task: float = 4.0,
    initial_answers_per_task: int = 1,
    eval_every: float = 0.5,
    refit_every: Optional[int] = None,
    model_kwargs: Optional[dict] = None,
    warm_start: bool = False,
) -> ExperimentReport:
    """Reproduce Figure 5 (assignment heuristics on Restaurant).

    As with Figure 2, ``warm_start`` defaults to ``False`` so the reproduced
    curves replay the validated seed trajectories; pass ``True`` to opt the
    refitting policies into the engine's warm-started EM.
    """
    kwargs = {"seed": seed}
    if num_rows:
        kwargs["num_rows"] = num_rows
    dataset = load_restaurant(**kwargs)
    schema = dataset.schema
    refit = refit_every or max(schema.num_columns, 5)
    model = TCrowdModel(**(model_kwargs or {"max_iterations": 15, "m_step_iterations": 20}))

    heuristics = [
        ("Random", RandomAssigner(schema, seed=seed + 1)),
        ("Looping", LoopingAssigner(schema)),
        (
            "Entropy",
            EntropyAssigner(
                schema, model=model, refit_every=refit, warm_start=warm_start
            ),
        ),
        (
            "Inherent Information Gain",
            TCrowdAssigner(
                schema, model=model, use_structure=False, refit_every=refit,
                warm_start=warm_start,
            ),
        ),
        (
            "Structure-Aware Information Gain",
            TCrowdAssigner(
                schema, model=model, use_structure=True, refit_every=refit,
                warm_start=warm_start,
            ),
        ),
    ]

    report = ExperimentReport(
        experiment_id="figure5",
        title="Effectiveness of assignment heuristics on Restaurant",
        headers=["Heuristic", "final answers/task", "final ErrorRate", "final MNAD"],
    )
    for name, policy in heuristics:
        session = CrowdsourcingSession(
            dataset,
            policy,
            model,
            target_answers_per_task=target_answers_per_task,
            initial_answers_per_task=initial_answers_per_task,
            eval_every_answers_per_task=eval_every,
            seed=seed + 100,
        )
        trace = session.run()
        final = trace.final
        report.add_row(name, round(final.answers_per_task, 2), final.error_rate, final.mnad)
        report.add_series(f"{name} ErrorRate", trace.series("error_rate"))
        report.add_series(f"{name} MNAD", trace.series("mnad"))
    report.add_note(
        f"num_rows={num_rows or 'paper size'}, budget={target_answers_per_task} "
        f"answers/task, seed={seed}; all heuristics use T-Crowd inference"
    )
    return report
