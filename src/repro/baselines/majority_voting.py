"""Majority Voting baseline (categorical data only)."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Tuple

from repro.baselines.base import BaselineResult, TruthInferenceMethod
from repro.core.answers import AnswerSet
from repro.core.schema import TableSchema


class MajorityVoting(TruthInferenceMethod):
    """Pick the most frequent answer of each categorical cell.

    Ties are broken deterministically by label order (the first label of the
    column's label set among the tied ones), so repeated runs are identical.
    """

    name = "Majority Voting"

    def supports_continuous(self) -> bool:
        return False

    def fit(self, schema: TableSchema, answers: AnswerSet) -> BaselineResult:
        estimates: Dict[Tuple[int, int], object] = {}
        for col in schema.categorical_indices:
            column = schema.columns[col]
            for row in range(schema.num_rows):
                cell_answers = answers.answers_for_cell(row, col)
                if not cell_answers:
                    continue
                counts = Counter(answer.value for answer in cell_answers)
                best_count = max(counts.values())
                tied = [label for label, count in counts.items() if count == best_count]
                estimates[(row, col)] = min(tied, key=column.label_index)
        return BaselineResult(schema, self.name, estimates)
