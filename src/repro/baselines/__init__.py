"""Baseline truth-inference and task-assignment methods compared in the paper.

Truth inference (Section 6.2): Majority Voting, Median, Dawid & Skene (the
paper's "EM"), GLAD, ZenCrowd, GTM, CRH and CATD.

Task assignment (Sections 6.3-6.4): CDAS, AskIt!, and the Random / Looping /
Entropy heuristics; CRH and CATD use random assignment combined with their
own inference, which the experiment harness composes from these pieces.
"""

from repro.baselines.base import BaselineResult, TruthInferenceMethod
from repro.baselines.catd import CATD
from repro.baselines.crh import CRH
from repro.baselines.dawid_skene import DawidSkene
from repro.baselines.glad import GLAD
from repro.baselines.gtm import GTM
from repro.baselines.majority_voting import MajorityVoting
from repro.baselines.median import MedianAggregator
from repro.baselines.zencrowd import ZenCrowd
from repro.baselines.assignment_askit import AskItAssigner
from repro.baselines.assignment_cdas import CDASAssigner
from repro.baselines.assignment_simple import (
    EntropyAssigner,
    LoopingAssigner,
    RandomAssigner,
)

__all__ = [
    "AskItAssigner",
    "BaselineResult",
    "CATD",
    "CDASAssigner",
    "CRH",
    "DawidSkene",
    "EntropyAssigner",
    "GLAD",
    "GTM",
    "LoopingAssigner",
    "MajorityVoting",
    "MedianAggregator",
    "RandomAssigner",
    "TruthInferenceMethod",
    "ZenCrowd",
]
