"""Decision provenance: ledger chaining, cross-mode identity, audit API.

The golden-trace audit matrix is the load-bearing test here: the scripted
scenario replayed through every serving mode — incremental, sharded, async
at ``max_stale_answers=0``, the composed policy and the ``processes=2``
coordinator — must produce *hash-identical* decision ledgers, because the
hashed core of a record carries only mode-invariant facts (the shard
lineage annotations ride outside the hash).  Crash recovery must re-derive
the same ledger from the WAL on both storage backends, and the HTTP layer
must serve it faithfully.
"""

from __future__ import annotations

import pytest

from repro.config import SessionSpec
from repro.core.assignment import BatchAssignment
from repro.engine.provenance import (
    DEFAULT_PAGE_LIMIT,
    GENESIS_HASH,
    MAX_PAGE_LIMIT,
    DecisionRecorder,
    record_core,
)
from repro.core.codec import payload_hash
from repro.service.app import ServiceServer
from repro.service.bench import (
    SERVING_MODES,
    ServiceClient,
    run_scripted_session,
    verify_audit_replay,
)
SCHEMA_SPEC = {
    "entity_attribute": "item",
    "num_rows": 4,
    "columns": [
        {"name": "color", "type": "categorical", "labels": ["red", "green", "blue"]},
        {"name": "weight", "type": "continuous", "domain": [0.0, 100.0]},
    ],
}

FAST_MODEL = {"max_iterations": 3, "m_step_iterations": 6}


def _assignment(worker="w0", cells=((0, 0), (0, 1)), gains=(2.0, 1.0)):
    return BatchAssignment(worker=worker, cells=tuple(cells), gains=tuple(gains))


def _record(recorder, n, *, answers_seen=5, worker="w0"):
    return recorder.record(
        _assignment(worker=worker),
        answers_seen=answers_seen,
        answers_total=answers_seen + n,
        candidates=8,
        model_hash="m" * 64,
    )


class TestDecisionRecorder:
    def test_records_chain_from_genesis(self):
        recorder = DecisionRecorder()
        first = _record(recorder, 0)
        second = _record(recorder, 1)
        assert first.decision_id == 0 and second.decision_id == 1
        assert first.prev_hash == GENESIS_HASH
        assert second.prev_hash == first.record_hash
        assert recorder.chain_head == second.record_hash
        assert recorder.count == 2

    def test_epoch_derives_from_answers_seen_transitions(self):
        recorder = DecisionRecorder()
        a = _record(recorder, 0, answers_seen=5)
        b = _record(recorder, 1, answers_seen=5)
        c = _record(recorder, 2, answers_seen=9)
        assert (a.epoch, b.epoch, c.epoch) == (0, 0, 1)
        assert c.staleness == (9 + 2) - 9

    def test_client_side_recompute_matches_record_hash(self):
        recorder = DecisionRecorder()
        record = _record(recorder, 0).to_dict()
        assert payload_hash(record_core(record)) == record["record_hash"]
        # The lineage annotations must NOT be hash-covered.
        assert "shards" not in record_core(record)
        assert "record_hash" not in record_core(record)

    def test_shards_annotation_does_not_move_the_hash(self):
        plain = DecisionRecorder()
        annotated = DecisionRecorder()
        bare = _record(plain, 0)
        dressed = annotated.record(
            _assignment(),
            answers_seen=5,
            answers_total=5,
            candidates=8,
            model_hash="m" * 64,
            shards=({"shard": 0, "candidates": 8, "process": 1},),
        )
        assert bare.record_hash == dressed.record_hash
        assert dressed.shards and not bare.shards

    def test_get_unknown_id_raises_key_error(self):
        recorder = DecisionRecorder()
        _record(recorder, 0)
        with pytest.raises(KeyError):
            recorder.get(5)

    def test_page_clamps_and_paginates(self):
        recorder = DecisionRecorder()
        for n in range(7):
            _record(recorder, n)
        assert [r.decision_id for r in recorder.page(0, 3)] == [0, 1, 2]
        assert [r.decision_id for r in recorder.page(5, 100)] == [5, 6]
        assert recorder.page(7, 10) == []
        assert len(recorder.page(0, MAX_PAGE_LIMIT + 999)) == 7
        assert DEFAULT_PAGE_LIMIT <= MAX_PAGE_LIMIT

    def test_state_restore_round_trip(self):
        recorder = DecisionRecorder()
        for n in range(3):
            _record(recorder, n)
        clone = DecisionRecorder()
        clone.restore(recorder.state())
        assert clone.count == 3
        assert clone.chain_head == recorder.chain_head
        assert clone.state() == recorder.state()
        # The restored chain keeps extending identically.
        a, b = _record(recorder, 3), _record(clone, 3)
        assert a.record_hash == b.record_hash

    def test_replay_verifies_and_counts_mismatches(self):
        live = DecisionRecorder()
        logged = [_record(live, n).to_dict() for n in range(2)]

        replayer = DecisionRecorder()
        replayer.begin_replay()
        _record(replayer, 0)
        replayer.apply_logged(logged[0])
        assert replayer.replay_verified == 1
        assert replayer.replay_mismatches == 0

        # A tampered logged record must be detected — and still committed
        # verbatim (the log is the source of truth for what *was* served).
        _record(replayer, 1)
        tampered = dict(logged[1], record_hash="f" * 64)
        replayer.apply_logged(tampered)
        replayer.end_replay()
        assert replayer.replay_mismatches == 1
        assert replayer.get(1).record_hash == "f" * 64

    def test_sink_fires_on_live_commits_only(self):
        seen = []
        recorder = DecisionRecorder()
        recorder.sink = seen.append
        committed = _record(recorder, 0)
        assert [r.decision_id for r in seen] == [0]
        replayer = DecisionRecorder()
        replayer.sink = seen.append
        replayer.begin_replay()
        _record(replayer, 0)
        replayer.apply_logged(committed.to_dict())
        replayer.end_replay()
        assert len(seen) == 1  # replayed commits do not re-emit


class TestGoldenAuditMatrix:
    """Identical decision chains across every serving mode."""

    @pytest.fixture(scope="class")
    def ledgers(self):
        ledgers = {}
        for mode in SERVING_MODES:
            outcome = run_scripted_session(mode)
            recorder = outcome["session"].recorder
            ledgers[mode] = [r.to_dict() for r in recorder.page(0, MAX_PAGE_LIMIT)]
        return ledgers

    def test_chain_heads_identical_across_modes(self, ledgers):
        heads = {
            mode: records[-1]["record_hash"] for mode, records in ledgers.items()
        }
        assert len(set(heads.values())) == 1, heads
        counts = {mode: len(records) for mode, records in ledgers.items()}
        assert len(set(counts.values())) == 1, counts
        assert min(counts.values()) >= 3

    def test_hashed_cores_identical_record_for_record(self, ledgers):
        reference = [record_core(r) for r in ledgers["plain"]]
        for mode, records in ledgers.items():
            assert [record_core(r) for r in records] == reference, mode

    def test_lineage_annotations_reflect_the_topology(self, ledgers):
        for record in ledgers["sharded"]:
            assert {block["shard"] for block in record["shards"]} == {0, 1, 2}
        for record in ledgers["multiprocess"]:
            assert {block["process"] for block in record["shards"]} == {0, 1}
            assert sum(b["candidates"] for b in record["shards"]) == record[
                "candidates"
            ]


class TestAuditCrashRecovery:
    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_recovered_ledger_is_identical(self, backend, tmp_path):
        summary = verify_audit_replay(backend=backend, directory=tmp_path)
        assert summary["audit_replay_identical"], summary
        assert summary["audit_replay_mismatches"] == 0, summary
        assert summary["audit_replay_verified"] >= 1, summary

    def test_recovery_chain_continues_across_modes(self, tmp_path):
        summary = verify_audit_replay(mode="sharded", directory=tmp_path)
        assert summary["audit_replay_identical"], summary


@pytest.fixture(scope="module")
def server():
    with ServiceServer() as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.address)


def _create(client, **serving):
    spec = (
        SessionSpec.builder()
        .model(**FAST_MODEL)
        .policy(refit_every=1)
        .serving(**serving)
        .build()
    )
    body = client.create_session({"schema": dict(SCHEMA_SPEC), **spec.to_dict()})
    return body["session_id"]


def _seed_and_select(client, session_id, selects=2):
    for row in range(4):
        client.post_answers(
            session_id,
            f"seed-{row % 2}",
            [(row, 0, "red"), (row, 1, 10.0 + row)],
        )
    served = 0
    for attempt in range(20):
        status, body = client.get_tasks(session_id, f"w{attempt}", k=2)
        if status != 200:
            continue
        client.post_answers(
            session_id,
            f"w{attempt}",
            [(row, col, "red" if col == 0 else 50.0) for row, col in body["cells"]],
        )
        served += 1
        if served >= selects:
            break
    return served


class TestDecisionsAPI:
    def test_ledger_served_over_http(self, client):
        session_id = _create(client)
        served = _seed_and_select(client, session_id, selects=2)
        assert served == 2
        page = client._expect("GET", f"/sessions/{session_id}/decisions")
        assert page["total"] == 2 and page["next_since"] is None
        for n, record in enumerate(page["decisions"]):
            assert record["decision_id"] == n
            assert payload_hash(record_core(record)) == record["record_hash"]
        assert page["chain_head"] == page["decisions"][-1]["record_hash"]

        single = client._expect(
            "GET", f"/sessions/{session_id}/decisions/1"
        )
        assert single["session_id"] == session_id
        assert single["decision_id"] == 1

        stats = client._expect("GET", f"/sessions/{session_id}")
        assert stats["decisions_recorded"] == 2
        assert stats["decision_chain_hash"] == page["chain_head"]
        client.delete_session(session_id)

    def test_pagination_and_errors(self, client):
        session_id = _create(client)
        _seed_and_select(client, session_id, selects=3)
        page = client._expect(
            "GET", f"/sessions/{session_id}/decisions?since=1&limit=1"
        )
        assert [r["decision_id"] for r in page["decisions"]] == [1]
        assert page["next_since"] == 2

        status, _ = client.request("GET", f"/sessions/{session_id}/decisions/99")
        assert status == 404
        status, _ = client.request("GET", f"/sessions/{session_id}/decisions/abc")
        assert status == 400
        status, _ = client.request(
            "GET", f"/sessions/{session_id}/decisions?since=-1"
        )
        assert status == 400
        status, _ = client.request(
            "GET",
            f"/sessions/{session_id}/decisions?limit={MAX_PAGE_LIMIT + 1}",
        )
        assert status == 400
        status, _ = client.request(
            "POST", f"/sessions/{session_id}/decisions", {}
        )
        assert status == 405
        client.delete_session(session_id)

    def test_audit_off_is_an_explicit_400(self, client):
        session_id = _create(client, audit=False)
        _seed_and_select(client, session_id, selects=1)
        status, body = client.request("GET", f"/sessions/{session_id}/decisions")
        assert status == 400 and "audit" in body["error"]
        status, _ = client.request("GET", f"/sessions/{session_id}/decisions/0")
        assert status == 400
        stats = client._expect("GET", f"/sessions/{session_id}")
        assert stats["decisions_recorded"] is None
        assert stats["decision_chain_hash"] is None
        client.delete_session(session_id)

    def test_audit_off_policy_has_no_recorder(self):
        from repro.service.bench import scripted_spec
        from repro.config.factory import build_policy
        from repro.service.registry import schema_from_dict

        schema = schema_from_dict(SCHEMA_SPEC)
        spec = scripted_spec("plain", {"model_kwargs": FAST_MODEL}, audit=False)
        assert build_policy(schema, spec).recorder is None

    def test_metrics_expose_chain_head_and_totals(self, client):
        session_id = _create(client)
        _seed_and_select(client, session_id, selects=1)
        page = client._expect("GET", f"/sessions/{session_id}/decisions")
        metrics = client.get_metrics()
        assert "repro_decisions_total 1" in metrics
        assert (
            f'repro_decision_chain_hash{{session_id="{session_id}",'
            f'chain_head="{page["chain_head"]}"}} 1' in metrics
        )
        client.delete_session(session_id)


class TestMetricsCardinality:
    def test_unknown_paths_bucket_as_other(self, client):
        for path in ("/bogus", "/sessions/x/unknownverb/y", "/a/b/c/d/e"):
            client.request("GET", path)
        metrics = client.get_metrics()
        labels = set()
        for line in metrics.splitlines():
            if line.startswith("repro_service_requests_total{"):
                labels.add(line.split('endpoint="')[1].split('"')[0])
        assert "other" in labels
        known = {
            "healthz", "metrics", "sessions", "session", "tasks", "answers",
            "estimates", "workers", "config", "decisions", "other",
        }
        assert labels <= known, labels - known
