"""Tests for inherent and structure-aware information gain."""

import numpy as np
import pytest

from repro.core.information_gain import InformationGainCalculator
from repro.core.structure_gain import StructureAwareGainCalculator
from repro.utils.exceptions import ConfigurationError


class TestInherentInformationGain:
    def test_gain_positive_for_every_cell(self, mixed_schema, fitted_result):
        calculator = InformationGainCalculator(fitted_result)
        worker = fitted_result.worker_ids[0]
        for cell in list(mixed_schema.cells())[:16]:
            assert calculator.gain(worker, *cell) >= -1e-9

    def test_better_worker_has_higher_gain(self, mixed_schema, fitted_result):
        calculator = InformationGainCalculator(fitted_result)
        cont_col = mixed_schema.continuous_indices[0]
        cat_col = mixed_schema.categorical_indices[0]
        for col in (cont_col, cat_col):
            expert_gain = calculator.gain("expert", 0, col)
            spammer_gain = calculator.gain("spammer", 0, col)
            assert expert_gain >= spammer_gain

    def test_quality_override_controls_categorical_gain(self, mixed_schema, fitted_result):
        calculator = InformationGainCalculator(fitted_result)
        cat_col = mixed_schema.categorical_indices[0]
        high = calculator.gain("average", 0, cat_col, quality_override=0.95)
        low = calculator.gain("average", 0, cat_col, quality_override=0.4)
        assert high > low

    def test_variance_override_controls_continuous_gain(self, mixed_schema, fitted_result):
        calculator = InformationGainCalculator(fitted_result)
        cont_col = mixed_schema.continuous_indices[0]
        precise = calculator.gain("average", 0, cont_col, variance_override=0.5)
        noisy = calculator.gain("average", 0, cont_col, variance_override=500.0)
        assert precise > noisy

    def test_continuous_closed_form_matches_formula(self, mixed_schema, fitted_result):
        calculator = InformationGainCalculator(fitted_result)
        cont_col = mixed_schema.continuous_indices[0]
        posterior = fitted_result.posterior(0, cont_col)
        answer_variance = fitted_result.answer_variance("good", 0, cont_col)
        expected = 0.5 * np.log(
            posterior.variance / posterior.updated_variance(answer_variance)
        )
        assert calculator.gain("good", 0, cont_col) == pytest.approx(expected)

    def test_sampling_estimator_close_to_closed_form(self, mixed_schema, fitted_result):
        closed = InformationGainCalculator(fitted_result)
        sampled = InformationGainCalculator(fitted_result, continuous_samples=400, seed=0)
        cont_col = mixed_schema.continuous_indices[0]
        closed_gain = closed.gain("good", 0, cont_col)
        sampled_gain = sampled.gain("good", 0, cont_col)
        assert sampled_gain == pytest.approx(closed_gain, rel=0.15, abs=0.05)

    def test_categorical_gain_zero_for_chance_level_worker(self, mixed_schema, fitted_result):
        calculator = InformationGainCalculator(fitted_result)
        cat_col = mixed_schema.categorical_indices[0]
        num_labels = mixed_schema.columns[cat_col].num_labels
        gain = calculator.gain("average", 0, cat_col, quality_override=1.0 / num_labels)
        assert gain == pytest.approx(0.0, abs=1e-6)

    def test_gains_for_worker_returns_all_candidates(self, mixed_schema, fitted_result):
        calculator = InformationGainCalculator(fitted_result)
        candidates = list(mixed_schema.cells())[:6]
        gains = calculator.gains_for_worker("good", candidates)
        assert set(gains) == set(candidates)

    def test_negative_sample_count_rejected(self, fitted_result):
        with pytest.raises(ConfigurationError):
            InformationGainCalculator(fitted_result, continuous_samples=-1)


class TestStructureAwareGain:
    def test_falls_back_to_inherent_without_row_history(self, mixed_schema, mixed_answers, fitted_result):
        structure = StructureAwareGainCalculator(fitted_result, mixed_answers, min_pairs=3)
        inherent = InformationGainCalculator(fitted_result)
        # Find a (worker, row) pair where the worker answered nothing.
        target = None
        for row in range(mixed_schema.num_rows):
            for worker in fitted_result.worker_ids:
                if not mixed_answers.worker_answers_in_row(worker, row):
                    target = (worker, row)
                    break
            if target:
                break
        if target is None:
            pytest.skip("every worker answered every row in this fixture")
        worker, row = target
        for col in range(mixed_schema.num_columns):
            assert structure.gain(worker, row, col) == pytest.approx(
                inherent.gain(worker, row, col)
            )

    def test_gain_differs_with_row_history(self, mixed_schema, mixed_answers, fitted_result):
        structure = StructureAwareGainCalculator(fitted_result, mixed_answers, min_pairs=3)
        inherent = InformationGainCalculator(fitted_result)
        differences = 0
        for answer in mixed_answers:
            worker, row = answer.worker, answer.row
            for col in range(mixed_schema.num_columns):
                if mixed_answers.has_answered(worker, row, col):
                    continue
                if mixed_answers.worker_answers_in_row(worker, row):
                    if abs(
                        structure.gain(worker, row, col) - inherent.gain(worker, row, col)
                    ) > 1e-12:
                        differences += 1
            if differences:
                break
        assert differences > 0

    def test_gains_for_worker(self, mixed_schema, mixed_answers, fitted_result):
        structure = StructureAwareGainCalculator(fitted_result, mixed_answers, min_pairs=3)
        worker = fitted_result.worker_ids[0]
        candidates = list(mixed_schema.cells())[:8]
        gains = structure.gains_for_worker(worker, candidates)
        assert set(gains) == set(candidates)
        assert all(np.isfinite(value) for value in gains.values())

    def test_accepts_prefitted_correlation_model(self, mixed_answers, fitted_result):
        from repro.core.correlation import AttributeCorrelationModel

        correlation = AttributeCorrelationModel.fit(mixed_answers, fitted_result, min_pairs=3)
        structure = StructureAwareGainCalculator(
            fitted_result, mixed_answers, correlation_model=correlation
        )
        assert structure.correlation is correlation
