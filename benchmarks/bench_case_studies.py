"""Benchmarks: Figures 3, 4 and 6 — the Restaurant case studies."""

from conftest import FAST_MODEL, run_once

from repro.experiments import (
    run_figure3_worker_consistency,
    run_figure4_quality_calibration,
    run_figure6_attribute_correlation,
)


def test_figure3_worker_consistency(benchmark, report_writer):
    """Regenerate the Figure 3 heat-map data (per-worker per-attribute error)."""
    report = run_once(
        benchmark, run_figure3_worker_consistency, seed=11, num_rows=80, top_workers=25
    )
    report_writer(report)
    assert report.headers[0] == "Worker"
    assert 1 <= len(report.rows) <= 25


def test_figure4_quality_calibration(benchmark, report_writer):
    """Regenerate Figure 4: estimated-vs-actual worker quality calibration."""
    report = run_once(
        benchmark, run_figure4_quality_calibration, seed=11, num_rows=120,
        model_kwargs=FAST_MODEL,
    )
    report_writer(report)
    correlations = [row[2] for row in report.rows]
    assert correlations and all(value > 0 for value in correlations)


def test_figure6_attribute_correlation(benchmark, report_writer):
    """Regenerate Figure 6: Aspect x Sentiment contingency + span-error correlation."""
    report = run_once(
        benchmark, run_figure6_attribute_correlation, seed=11, num_rows=120,
        model_kwargs=FAST_MODEL,
    )
    report_writer(report)
    assert len(report.rows) == 2  # correct / wrong rows of the contingency table
    assert any("Pearson" in note for note in report.notes)
