"""CATD baseline (Li et al., PVLDB 2014).

CATD is a confidence-aware truth-discovery method designed for long-tail
data: a worker (source) who gave only a few answers gets a weight derived
from the upper bound of a chi-squared confidence interval on their error
variance, instead of a point estimate, so that low-activity workers are not
over-trusted.  The weight of worker ``u`` is

    w_u = chi2.ppf(1 - alpha/2, df=n_u) / sum_of_normalised_squared_errors_u

and truths are weighted votes / weighted means, iterated to convergence.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

import numpy as np
from scipy import stats

from repro.baselines.base import BaselineResult, TruthInferenceMethod
from repro.baselines.crh import CRH
from repro.core.answers import AnswerSet
from repro.core.schema import TableSchema
from repro.utils.numerics import safe_var


class CATD(TruthInferenceMethod):
    """CATD: confidence-aware truth discovery with chi-squared interval weights."""

    name = "CATD"

    def __init__(self, alpha: float = 0.05, max_iterations: int = 20,
                 tolerance: float = 1e-4) -> None:
        self.alpha = float(alpha)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)

    def fit(self, schema: TableSchema, answers: AnswerSet) -> BaselineResult:
        if len(answers) == 0:
            return BaselineResult(schema, self.name, {})
        workers = sorted({a.worker for a in answers})
        answer_counts = {worker: 0 for worker in workers}
        for answer in answers:
            answer_counts[answer.worker] += 1

        column_var: Dict[int, float] = {}
        for col in schema.continuous_indices:
            values = np.array(
                [float(a.value) for a in answers.answers_in_column(col)], dtype=float
            )
            column_var[col] = safe_var(values)

        by_cell: Dict[Tuple[int, int], list] = defaultdict(list)
        for answer in answers:
            by_cell[(answer.row, answer.col)].append(answer)

        weights = {worker: 1.0 for worker in workers}
        estimates = CRH._update_truths(schema, by_cell, weights, column_var)
        for _iteration in range(self.max_iterations):
            new_weights = self._update_weights(
                schema, answers, estimates, column_var, workers, answer_counts
            )
            new_estimates = CRH._update_truths(schema, by_cell, new_weights, column_var)
            delta = max(
                abs(new_weights[worker] - weights[worker]) for worker in workers
            )
            weights, estimates = new_weights, new_estimates
            if delta < self.tolerance:
                break
        return BaselineResult(schema, self.name, estimates, worker_weights=weights)

    def _update_weights(self, schema, answers, estimates, column_var, workers,
                        answer_counts):
        losses = {worker: 0.0 for worker in workers}
        for answer in answers:
            truth = estimates[(answer.row, answer.col)]
            column = schema.columns[answer.col]
            if column.is_categorical:
                losses[answer.worker] += 0.0 if answer.value == truth else 1.0
            else:
                losses[answer.worker] += (
                    (float(answer.value) - float(truth)) ** 2 / column_var[answer.col]
                )
        weights = {}
        for worker in workers:
            df = max(answer_counts[worker], 1)
            interval = float(stats.chi2.ppf(1.0 - self.alpha / 2.0, df))
            weights[worker] = interval / max(losses[worker], 1e-6)
        # Normalise so the average weight is one (keeps the scale of the
        # weighted means comparable across iterations).
        mean_weight = float(np.mean(list(weights.values())))
        if mean_weight > 0:
            weights = {worker: weight / mean_weight for worker, weight in weights.items()}
        return weights
