"""End-to-end crowdsourcing session (the simulated Section 6.3 protocol).

A :class:`CrowdsourcingSession` wires together a dataset (with its answer
oracle), an assignment policy, a truth-inference method used for evaluation,
a budget and a worker arrival process, and produces a :class:`SessionTrace`
of effectiveness-versus-budget records — the series plotted in Figures 2
and 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.answers import AnswerSet
from repro.core.assignment import AssignmentPolicy, TCrowdAssigner
from repro.datasets.base import CrowdDataset
from repro.metrics import error_rate, mnad
from repro.platform.arrival import WorkerArrivalProcess
from repro.platform.budget import Budget
from repro.utils.exceptions import AssignmentError, ConfigurationError
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class SessionRecord:
    """Snapshot of effectiveness after a given amount of budget was spent."""

    answers_collected: int
    answers_per_task: float
    error_rate: Optional[float]
    mnad: Optional[float]
    spent_money: float


@dataclass
class SessionTrace:
    """Sequence of :class:`SessionRecord` produced by one session run."""

    policy_name: str
    inference_name: str
    dataset_name: str
    records: List[SessionRecord] = field(default_factory=list)

    def series(self, metric: str) -> List[tuple]:
        """Return ``(answers_per_task, value)`` pairs for ``metric``."""
        return [
            (record.answers_per_task, getattr(record, metric))
            for record in self.records
            if getattr(record, metric) is not None
        ]

    @property
    def final(self) -> SessionRecord:
        """The last recorded snapshot."""
        if not self.records:
            raise ConfigurationError("The session produced no records")
        return self.records[-1]

    def answers_to_reach(self, metric: str, target: float) -> Optional[float]:
        """Smallest answers-per-task at which ``metric`` dropped to ``target``.

        Returns ``None`` if the target was never reached — the convergence
        statistic the paper quotes ("converges ... before the average number
        of answers per task is 3").
        """
        for record in self.records:
            value = getattr(record, metric)
            if value is not None and value <= target:
                return record.answers_per_task
        return None


class CrowdsourcingSession:
    """Simulate an end-to-end crowdsourcing run of one assignment policy.

    Parameters
    ----------
    dataset:
        A simulated dataset carrying an :class:`AnswerOracle` and a worker
        pool (all loaders in :mod:`repro.datasets` provide both).
    policy:
        The assignment policy under test.
    inference:
        Object with ``fit(schema, answers)`` used to evaluate effectiveness
        at the checkpoints (each system is evaluated with its own inference,
        as in the paper).
    target_answers_per_task:
        Total budget expressed in answers per cell.
    initial_answers_per_task:
        Answers per cell collected before the policy starts (Algorithm 2
        line 1 initialises every task with several answers).
    batch_size:
        Number of tasks per HIT; defaults to the number of columns (the
        paper's AMT setting).
    eval_every_answers_per_task:
        Evaluation checkpoint spacing on the answers-per-task axis.
    shards:
        When > 1, serve the policy through a
        :class:`~repro.engine.ShardedAssignmentPolicy` partitioned into this
        many contiguous row-range shards (requires a
        :class:`~repro.core.assignment.TCrowdAssigner`).  The recorded trace
        is identical to the unsharded run — sharding only changes how the
        candidate pool is stored and scored.
    shard_workers:
        Optional thread-pool size for concurrent per-shard scoring.
    async_refit:
        Serve the policy through an
        :class:`~repro.engine.AsyncRefitPolicy` (requires a
        :class:`~repro.core.assignment.TCrowdAssigner`): truth-inference
        refits run in a background worker and selects score against the
        latest published :class:`~repro.engine.ModelSnapshot`.  Combined
        with ``shards`` > 1 the session serves the composed
        :class:`~repro.engine.ShardedAsyncPolicy` — per-shard scoring over
        async snapshots.
    max_stale_answers:
        Bounded-staleness knob for ``async_refit`` (see
        :class:`~repro.engine.AsyncRefitEngine`).  The default ``0`` blocks
        every select until the model has seen all answers, which replays
        the synchronous session exactly (also in the composed
        sharded+async mode); a positive bound lets selects run against a
        snapshot at most that many answers behind.
    durable_dir:
        When set, every session event (seed batches, selects, collected
        answers) is logged to a write-ahead log in this directory with
        periodic engine-state snapshots (see
        :class:`~repro.service.wal.DurableSession`), so a killed run can be
        recovered and continued bit-identically.  The directory must be
        fresh — resuming over an old log would corrupt the experiment.
    snapshot_every_answers:
        Snapshot cadence for ``durable_dir`` (answers between snapshots).
    wal_fsync:
        Force every WAL append to disk (power-loss durability) instead of
        the default flush-only (process-crash durability).
    """

    def __init__(
        self,
        dataset: CrowdDataset,
        policy: AssignmentPolicy,
        inference,
        target_answers_per_task: float = 5.0,
        initial_answers_per_task: int = 1,
        batch_size: Optional[int] = None,
        eval_every_answers_per_task: float = 0.5,
        seed=None,
        max_steps: Optional[int] = None,
        shards: Optional[int] = None,
        shard_workers: Optional[int] = None,
        async_refit: bool = False,
        max_stale_answers: Optional[int] = 0,
        durable_dir=None,
        snapshot_every_answers: int = 200,
        wal_fsync: bool = False,
    ) -> None:
        if dataset.oracle is None or dataset.worker_pool is None:
            raise ConfigurationError(
                "The dataset must carry an AnswerOracle and a WorkerPool to "
                "simulate a live session"
            )
        if target_answers_per_task <= initial_answers_per_task:
            raise ConfigurationError(
                "target_answers_per_task must exceed initial_answers_per_task"
            )
        self._owned_policy = None
        wants_wrapper = async_refit or (shards is not None and shards > 1)
        if wants_wrapper and not isinstance(policy, TCrowdAssigner):
            raise ConfigurationError(
                "shards > 1 / async_refit require a TCrowdAssigner policy, "
                f"got {type(policy).__name__}"
            )
        if async_refit and shards is not None and shards > 1:
            from repro.engine import ShardedAsyncPolicy

            policy = ShardedAsyncPolicy(
                policy,
                num_shards=shards,
                max_workers=shard_workers,
                max_stale_answers=max_stale_answers,
            )
            self._owned_policy = policy
        elif shards is not None and shards > 1:
            from repro.engine import ShardedAssignmentPolicy

            policy = ShardedAssignmentPolicy(
                policy, num_shards=shards, max_workers=shard_workers
            )
            self._owned_policy = policy
        elif async_refit:
            from repro.engine import AsyncRefitPolicy

            policy = AsyncRefitPolicy(policy, max_stale_answers=max_stale_answers)
            self._owned_policy = policy
        self.dataset = dataset
        self.policy = policy
        self.inference = inference
        self.target_answers_per_task = float(target_answers_per_task)
        self.initial_answers_per_task = int(initial_answers_per_task)
        self.batch_size = batch_size or dataset.schema.num_columns
        self.eval_every = float(eval_every_answers_per_task)
        self.max_steps = max_steps
        self.durable_dir = durable_dir
        self.snapshot_every_answers = int(snapshot_every_answers)
        self.wal_fsync = bool(wal_fsync)
        self.durable = None
        self._rng = as_generator(seed)
        self.arrival = WorkerArrivalProcess(
            dataset.worker_pool, seed=self._rng.integers(0, 2**31 - 1)
        )

    # -- helpers -----------------------------------------------------------------

    def _seed_answers(self, answers: AnswerSet) -> AnswerSet:
        """Collect the initial answers (Algorithm 2, line 1): one HIT per row."""
        schema = self.dataset.schema
        pool = self.dataset.worker_pool
        worker_ids = pool.worker_ids()
        activities = pool.activities()
        for row in range(schema.num_rows):
            chosen = self._rng.choice(
                len(worker_ids),
                size=self.initial_answers_per_task,
                replace=False,
                p=activities,
            )
            for index in chosen:
                worker = worker_ids[int(index)]
                items = [
                    (row, col, self.dataset.oracle.answer(worker, row, col, self._rng))
                    for col in range(schema.num_columns)
                ]
                if self.durable is not None:
                    self.durable.append_answers(worker, items, observe=False)
                else:
                    for r, c, value in items:
                        answers.add_answer(worker, r, c, value)
        return answers

    def _evaluate(self, answers: AnswerSet, budget: Budget, trace: SessionTrace) -> None:
        schema = self.dataset.schema
        result = self.inference.fit(schema, answers)
        err = (
            error_rate(result, self.dataset)
            if schema.categorical_indices
            else None
        )
        distance = (
            mnad(result, self.dataset) if schema.continuous_indices else None
        )
        trace.records.append(
            SessionRecord(
                answers_collected=len(answers),
                answers_per_task=answers.mean_answers_per_cell(),
                error_rate=err,
                mnad=distance,
                spent_money=budget.spent_money,
            )
        )

    # -- main loop ----------------------------------------------------------------

    def run(self) -> SessionTrace:
        """Run the session until the budget is exhausted; return the trace."""
        try:
            return self._run()
        finally:
            # The session owns the wrapper it built (sharded scoring pool or
            # async refit worker): release its threads.  Selects after
            # close() still work — sharded scoring just runs sequentially,
            # and the async engine only loses its background worker.
            if self.durable is not None:
                self.durable.close()
            if self._owned_policy is not None:
                self._owned_policy.close()

    def _run(self) -> SessionTrace:
        schema = self.dataset.schema
        if self.durable_dir is not None:
            from repro.service.wal import DurableSession

            self.durable = DurableSession(
                schema,
                self.policy,
                directory=self.durable_dir,
                snapshot_every=self.snapshot_every_answers,
                fsync=self.wal_fsync,
                fresh=True,
            )
            answers = self.durable.answers
        else:
            answers = AnswerSet(schema)
        self._seed_answers(answers)
        extra_answers = int(
            round(
                (self.target_answers_per_task - self.initial_answers_per_task)
                * schema.num_cells
            )
        )
        budget = Budget(total_answers=max(extra_answers, 1))
        trace = SessionTrace(
            policy_name=self.policy.name,
            inference_name=getattr(self.inference, "name", type(self.inference).__name__),
            dataset_name=self.dataset.name,
        )
        self._evaluate(answers, budget, trace)
        next_checkpoint = answers.mean_answers_per_cell() + self.eval_every

        steps = 0
        consecutive_failures = 0
        failure_limit = 10 * len(self.dataset.worker_pool)
        while not budget.exhausted:
            # The engine's incremental state knows when every cell reached its
            # answer cap; stop immediately instead of drawing workers until
            # the consecutive-failure limit trips (the recorded trace is
            # identical either way — no further answer could be collected).
            state = self.policy.session_state(answers)
            if state is not None and not state.has_open_cells():
                break
            if self.max_steps is not None and steps >= self.max_steps:
                break
            steps += 1
            worker = self.arrival.next_worker()
            batch = min(self.batch_size, budget.remaining_answers)
            try:
                if self.durable is not None:
                    assignment = self.durable.select(worker, k=batch)
                else:
                    assignment = self.policy.select(worker, answers, k=batch)
            except AssignmentError:
                # This worker has no candidate cells left; try another one,
                # but give up if no worker can be assigned anything anymore.
                consecutive_failures += 1
                if consecutive_failures >= failure_limit:
                    break
                continue
            consecutive_failures = 0
            items = [
                (row, col, self.dataset.oracle.answer(worker, row, col, self._rng))
                for row, col in assignment.cells
            ]
            if self.durable is not None:
                self.durable.append_answers(worker, items)
            else:
                for row, col, value in items:
                    answers.add_answer(worker, row, col, value)
            budget.charge(len(assignment.cells))
            if self.durable is None:
                self.policy.observe(answers)
            if answers.mean_answers_per_cell() >= next_checkpoint or budget.exhausted:
                self._evaluate(answers, budget, trace)
                next_checkpoint += self.eval_every
        return trace
