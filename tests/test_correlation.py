"""Tests for the attribute error-correlation models (repro.core.correlation)."""

import numpy as np
import pytest

from repro.core.correlation import (
    AttributeCorrelationModel,
    BernoulliError,
    GaussianError,
    answer_error,
)
from repro.core.inference import TCrowdModel
from repro.utils.exceptions import DataError


@pytest.fixture(scope="module")
def correlation_setup(request):
    """Fit a correlation model on the shared mixed answers."""
    mixed_schema = request.getfixturevalue("mixed_schema")
    mixed_answers = request.getfixturevalue("mixed_answers")
    result = TCrowdModel(max_iterations=15, seed=2).fit(mixed_schema, mixed_answers)
    model = AttributeCorrelationModel.fit(mixed_answers, result, min_pairs=3)
    return mixed_schema, mixed_answers, result, model


class TestErrorDistributions:
    def test_bernoulli_error_clipped(self):
        assert BernoulliError(1.7).p_wrong == 1.0
        assert BernoulliError(-0.3).p_wrong == 0.0
        assert BernoulliError(0.3).quality() == pytest.approx(0.7)
        assert BernoulliError(0.3).is_categorical

    def test_gaussian_error_floor_and_moment(self):
        error = GaussianError(2.0, 0.0)
        assert error.variance > 0
        assert error.second_moment() == pytest.approx(error.variance + 4.0)
        assert not error.is_categorical


class TestAnswerError:
    def test_categorical_error_is_indicator(self, correlation_setup):
        schema, answers, result, _model = correlation_setup
        for answer in answers:
            if schema.columns[answer.col].is_categorical:
                error = answer_error(answer, result)
                assert error in (0.0, 1.0)
                expected = 0.0 if answer.value == result.estimate(answer.row, answer.col) else 1.0
                assert error == expected
                break

    def test_continuous_error_is_signed_difference(self, correlation_setup):
        schema, answers, result, _model = correlation_setup
        for answer in answers:
            if schema.columns[answer.col].is_continuous:
                error = answer_error(answer, result)
                expected = float(answer.value) - float(result.estimate(answer.row, answer.col))
                assert error == pytest.approx(expected)
                break


class TestAttributeCorrelationModel:
    def test_marginals_exist_for_every_column(self, correlation_setup):
        schema, _answers, _result, model = correlation_setup
        for col, column in enumerate(schema.columns):
            marginal = model.marginal_error(col)
            assert marginal.is_categorical == column.is_categorical

    def test_marginal_unknown_column(self, correlation_setup):
        *_rest, model = correlation_setup
        with pytest.raises(DataError):
            model.marginal_error(99)

    def test_pairwise_models_fitted(self, correlation_setup):
        schema, _answers, _result, model = correlation_setup
        # The fixture answers are dense enough to fit every ordered pair.
        fitted = [
            (j, k)
            for j in range(schema.num_columns)
            for k in range(schema.num_columns)
            if j != k and model.has_pair(j, k)
        ]
        assert fitted, "expected at least one fitted column pair"

    def test_weight_symmetric_in_magnitude(self, correlation_setup):
        schema, _answers, _result, model = correlation_setup
        for j in range(schema.num_columns):
            for k in range(schema.num_columns):
                if j != k and model.has_pair(j, k) and model.has_pair(k, j):
                    assert abs(model.weight(j, k)) == pytest.approx(
                        abs(model.weight(k, j)), abs=1e-9
                    )

    def test_weight_zero_for_missing_pair(self, correlation_setup):
        *_rest, model = correlation_setup
        assert model.weight(0, 0) == 0.0

    def test_conditional_error_types(self, correlation_setup):
        schema, _answers, _result, model = correlation_setup
        cat = schema.categorical_indices[0]
        cont = schema.continuous_indices[0]
        if model.has_pair(cat, cont):
            assert model.conditional_error(cat, cont, 0.5).is_categorical
        if model.has_pair(cont, cat):
            assert not model.conditional_error(cont, cat, 1.0).is_categorical
        if model.has_pair(cat, schema.categorical_indices[1]):
            conditional = model.conditional_error(cat, schema.categorical_indices[1], 1.0)
            assert 0.0 <= conditional.p_wrong <= 1.0

    def test_conditional_falls_back_to_marginal(self, correlation_setup):
        schema, answers, result, _model = correlation_setup
        sparse = AttributeCorrelationModel.fit(answers, result, min_pairs=10**9)
        marginal = sparse.marginal_error(0)
        conditional = sparse.conditional_error(0, 1, 1.0)
        assert conditional.p_wrong == pytest.approx(marginal.p_wrong)

    def test_predict_error_without_evidence_is_marginal(self, correlation_setup):
        schema, _answers, _result, model = correlation_setup
        prediction = model.predict_error(0, {})
        assert prediction.p_wrong == pytest.approx(model.marginal_error(0).p_wrong)

    def test_predict_error_with_evidence(self, correlation_setup):
        schema, _answers, _result, model = correlation_setup
        cat0, cat1 = schema.categorical_indices[:2]
        if not model.has_pair(cat0, cat1):
            pytest.skip("pair not fitted in fixture")
        wrong_prediction = model.predict_error(cat0, {cat1: 1.0})
        right_prediction = model.predict_error(cat0, {cat1: 0.0})
        assert 0.0 <= wrong_prediction.p_wrong <= 1.0
        assert 0.0 <= right_prediction.p_wrong <= 1.0

    def test_predict_error_continuous_target(self, correlation_setup):
        schema, _answers, _result, model = correlation_setup
        cont0, cont1 = schema.continuous_indices[:2]
        if not model.has_pair(cont0, cont1):
            pytest.skip("pair not fitted in fixture")
        prediction = model.predict_error(cont0, {cont1: 2.0})
        assert prediction.variance > 0


class TestSyntheticCorrelationRecovery:
    def test_strong_positive_continuous_correlation_recovered(self, mixed_schema):
        """Errors generated with a shared per-(worker,row) shift must yield a
        clearly positive fitted correlation between the two continuous columns."""
        from repro.core.answers import AnswerSet

        rng = np.random.default_rng(9)
        answers = AnswerSet(mixed_schema)
        cont_cols = mixed_schema.continuous_indices
        for i in range(mixed_schema.num_rows):
            for worker in ("a", "b", "c", "d"):
                shared = rng.normal(0.0, 5.0)
                for j in range(mixed_schema.num_columns):
                    column = mixed_schema.columns[j]
                    if column.is_categorical:
                        answers.add_answer(worker, i, j, column.labels[0])
                    else:
                        answers.add_answer(
                            worker, i, j, 50.0 + shared + rng.normal(0.0, 1.0)
                        )
        result = TCrowdModel(max_iterations=10).fit(mixed_schema, answers)
        model = AttributeCorrelationModel.fit(answers, result, min_pairs=5)
        weight = model.weight(cont_cols[0], cont_cols[1])
        assert weight > 0.5
