"""Online task assignment (Section 5, Algorithm 2).

:class:`AssignmentPolicy` is the interface shared by T-Crowd and all the
baseline assigners (CDAS, AskIt!, random, looping, entropy): given an
incoming worker and the answers collected so far, pick the next cell(s) to
assign.  :class:`TCrowdAssigner` implements the paper's policy — rank every
candidate cell by (structure-aware) information gain and greedily take the
top K (Eq. 9).

The online loop runs on the incremental engine layer
(:mod:`repro.engine`): candidate filtering consults a
:class:`~repro.engine.SessionState` updated O(1) per new answer, refits are
warm-started from the previous :class:`~repro.core.inference.InferenceResult`,
and gains are scored in one vectorised batch.  Every fast path has a
compatibility switch (``incremental`` / ``warm_start`` / ``vectorized``) that
restores the from-scratch behaviour of the seed implementation; the
benchmarks use those switches to verify that both paths take identical
assignment decisions.

One deliberate behaviour change sits outside the switches: the Monte-Carlo
gain estimator (``continuous_samples > 0``) now draws from a single
persistent generator shared by every calculator this assigner builds.  The
seed implementation re-created the generator per ``select``, which with an
integer seed replayed the *same* samples on every call — the dead-seed bug
this fixes.  The closed-form path (``continuous_samples=0``, the default and
the only path the equivalence benchmark exercises) is unaffected.
"""

from __future__ import annotations

import abc
import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.inference import InferenceResult, TCrowdModel
from repro.core.information_gain import InformationGainCalculator
from repro.core.schema import TableSchema
from repro.core.structure_gain import StructureAwareGainCalculator
from repro.engine.state import SessionState
from repro.utils.exceptions import AssignmentError
from repro.utils.rng import as_generator

Cell = Tuple[int, int]


def refit_model(
    model,
    schema: TableSchema,
    answers: AnswerSet,
    previous: Optional[InferenceResult] = None,
    warm_start: bool = True,
    tol: Optional[float] = None,
) -> InferenceResult:
    """Run truth inference, warm-starting from ``previous`` when supported.

    Shared by every refitting policy so the warm-start contract (capability
    check + ``init=`` keyword) lives in one place.  ``tol`` requests
    objective-based early stopping (see :meth:`TCrowdModel.fit`) and is
    forwarded only to models that advertise ``supports_objective_tol`` —
    baseline models with plain ``fit(schema, answers)`` signatures are
    untouched.
    """
    init = (
        previous
        if warm_start and getattr(model, "supports_warm_start", False)
        else None
    )
    kwargs = {}
    if tol is not None and getattr(model, "supports_objective_tol", False):
        kwargs["tol"] = tol
    if init is not None:
        return model.fit(schema, answers, init=init, **kwargs)
    return model.fit(schema, answers, **kwargs)


def top_k_stable(gains: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest gains, ties broken by ascending index.

    Matches ``sorted(gains.items(), key=value, reverse=True)[:k]`` over a
    row-major candidate list (Python's sort is stable and does not reorder
    equal elements under ``reverse=True``).  For large pools an
    ``argpartition`` pre-selects the top values so only the short head is
    fully sorted.
    """
    n = len(gains)
    if k >= n:
        return np.argsort(-gains, kind="stable")
    partition = np.argpartition(-gains, k - 1)
    threshold = gains[partition[k - 1]]
    head = np.flatnonzero(gains >= threshold)
    return head[np.argsort(-gains[head], kind="stable")][:k]


def merge_top_k_stable(parts: Sequence[np.ndarray], k: int) -> np.ndarray:
    """Global stable top-``k`` over the virtual concatenation of ``parts``.

    Each part is a gains array over a contiguous block of the global
    candidate list (the sharded engine scores one block per shard).  The
    global winners are found without materialising the concatenation: every
    global top-``k`` element must sit in its own part's stable top-``k``
    (anything a part drops is tied-or-worse *and* later in index order than
    ``k`` elements of that same part), so a heap merge of the per-part heads
    by ``(-gain, global index)`` reproduces :func:`top_k_stable` over
    ``np.concatenate(parts)`` bit for bit.

    ``k == 1`` short-circuits the heap entirely: the global winner is the
    best of the per-part winners, compared by the same ``(-gain, global
    index)`` key, so one :func:`min` over at most ``len(parts)`` candidates
    replaces the merge.
    """
    if k == 1:
        best: Optional[Tuple[float, int]] = None
        offset = 0
        for gains in parts:
            if len(gains):
                local = int(top_k_stable(np.asarray(gains), 1)[0])
                key = (-float(gains[local]), offset + local)
                if best is None or key < best:
                    best = key
            offset += len(gains)
        if best is None:
            return np.zeros(0, dtype=np.int64)
        return np.array([best[1]], dtype=np.int64)
    heads = []
    offset = 0
    for gains in parts:
        if len(gains):
            local = top_k_stable(np.asarray(gains), k)
            heads.append(
                [(-float(gains[i]), offset + int(i)) for i in local]
            )
        offset += len(gains)
    merged = heapq.merge(*heads)
    return np.fromiter(
        (index for _neg_gain, index in itertools.islice(merged, k)),
        dtype=np.int64,
    )


def _single_shard_lineage(candidates: int, assignment) -> Tuple[dict, ...]:
    """The one-shard lineage annotation of an unsharded select."""
    return (
        {
            "shard": 0,
            "candidates": int(candidates),
            "winners": [
                [int(row), int(col), float(gain)]
                for (row, col), gain in zip(assignment.cells, assignment.gains)
            ],
        },
    )


@dataclass(frozen=True)
class BatchAssignment:
    """A batch of cells assigned to one worker, with their predicted gains."""

    worker: str
    cells: Tuple[Cell, ...]
    gains: Tuple[float, ...]

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def total_gain(self) -> float:
        """Sum of the per-cell gains (the greedy approximation of Eq. 9)."""
        return float(sum(self.gains))


class AssignmentPolicy(abc.ABC):
    """Base class for online task-assignment policies.

    Subclasses implement :meth:`select`.  The base class provides candidate
    filtering: a worker is never assigned a cell they already answered, and
    cells that already collected ``max_answers_per_cell`` answers are
    excluded (the budget mechanism used by the end-to-end experiments).

    ``incremental=True`` (default) backs the filtering with a
    :class:`~repro.engine.SessionState` kept in sync with the answer set —
    O(new answers) per call instead of a full table rescan; ``False``
    restores the seed implementation's from-scratch scan.
    """

    def __init__(
        self,
        schema: TableSchema,
        max_answers_per_cell: Optional[int] = None,
        incremental: bool = True,
    ) -> None:
        self.schema = schema
        self.max_answers_per_cell = max_answers_per_cell
        self.incremental = bool(incremental)
        self._state: Optional[SessionState] = None
        self._recorder = None

    def set_recorder(self, recorder) -> None:
        """Attach a :class:`~repro.engine.DecisionRecorder` (None detaches).

        Attached to the *outermost* serving policy only — wrappers record
        the merged decision themselves instead of forwarding the recorder
        to their inner assigner, so each select yields exactly one record.
        """
        self._recorder = recorder

    @property
    def recorder(self):
        """The attached decision recorder (None when auditing is off)."""
        return self._recorder

    def _record_decision(
        self,
        assignment: "BatchAssignment",
        *,
        answers_seen: int,
        answers_total: int,
        candidates: int,
        result=None,
        model_hash=None,
        shards: Sequence[dict] = (),
    ) -> None:
        """Chain one audit record if a recorder is attached (else no-op)."""
        if self._recorder is not None:
            self._recorder.record(
                assignment,
                answers_seen=answers_seen,
                answers_total=answers_total,
                candidates=candidates,
                result=result,
                model_hash=model_hash,
                shards=shards,
            )

    @property
    def name(self) -> str:
        """Human-readable policy name (used by the experiment harnesses)."""
        return type(self).__name__

    def session_state(self, answers: AnswerSet) -> Optional[SessionState]:
        """The policy's incremental session state, synced to ``answers``.

        Returns ``None`` for policies running with ``incremental=False``.
        """
        if not self.incremental:
            return None
        if self._state is None:
            self._state = SessionState(
                self.schema, max_answers_per_cell=self.max_answers_per_cell
            )
        return self._state.sync(answers)

    def candidate_cells(self, worker: str, answers: AnswerSet) -> List[Cell]:
        """Cells this worker may still be assigned (row-major order)."""
        state = self.session_state(answers)
        if state is not None:
            return state.candidate_cells(worker)
        counts = answers.answer_counts()
        candidates: List[Cell] = []
        for i in range(self.schema.num_rows):
            for j in range(self.schema.num_columns):
                if (
                    self.max_answers_per_cell is not None
                    and counts[i, j] >= self.max_answers_per_cell
                ):
                    continue
                if answers.has_answered(worker, i, j):
                    continue
                candidates.append((i, j))
        return candidates

    @abc.abstractmethod
    def select(self, worker: str, answers: AnswerSet, k: int = 1) -> BatchAssignment:
        """Select ``k`` cells to assign to ``worker`` given current answers."""

    def observe(self, answers: AnswerSet) -> None:
        """Hook called by the platform after new answers arrive (optional)."""


class TCrowdAssigner(AssignmentPolicy):
    """T-Crowd's assignment policy: top-K cells by information gain.

    Parameters
    ----------
    schema:
        Table schema.
    model:
        Truth-inference model used to refresh posteriors and worker
        qualities; defaults to :class:`TCrowdModel` with default settings.
    use_structure:
        If True (default) rank by the structure-aware gain of Section 5.2,
        otherwise by the inherent gain of Section 5.1.
    refit_every:
        Re-run full truth inference after this many newly collected answers.
        ``1`` reproduces Algorithm 2 exactly; larger values trade a little
        accuracy for speed in large simulations.
    continuous_samples:
        Forwarded to :class:`InformationGainCalculator` (0 = closed form).
    max_answers_per_cell:
        Budget cap per cell (see :class:`AssignmentPolicy`).
    seed:
        Seed for the Monte-Carlo gain estimator; defaults to the model's
        generator so one reproducible stream is shared by every calculator
        this assigner builds.
    warm_start:
        Warm-start each refit from the previous inference result (converges
        to the cold-start fixed point within the EM tolerance).  ``False``
        restores the seed implementation's cold start.
    refit_tol:
        Optional objective-based early-stopping tolerance forwarded to
        warm-started refits (see :meth:`TCrowdModel.fit`).  ``None`` (the
        default) keeps the model's fixed iteration budget, so the
        equivalence benchmarks are unaffected.
    vectorized:
        Score all candidates through :meth:`InformationGainCalculator.gains_batch`
        with stable top-K selection instead of the per-cell scalar loop.
    incremental:
        See :class:`AssignmentPolicy`.
    strategy:
        Optional :class:`~repro.strategies.AssignmentStrategy` overriding
        *what scores candidate cells* (``None``, the default, is the
        paper's gain — byte-for-byte the pre-strategy behaviour).  The
        strategy only replaces the calculator built by
        :meth:`_build_calculator`; candidate filtering, refit cadence,
        stable top-K / shard merge and provenance stay shared, which is
        why any strategy serves identically through every serving mode.
        This module never imports the strategies package — the factory
        (:func:`repro.config.factory.build_assigner`) builds the object
        from ``PolicySpec.strategy`` and injects it here.
    """

    def __init__(
        self,
        schema: TableSchema,
        model: Optional[TCrowdModel] = None,
        use_structure: bool = True,
        refit_every: int = 1,
        continuous_samples: int = 0,
        max_answers_per_cell: Optional[int] = None,
        min_pairs: int = 5,
        seed=None,
        warm_start: bool = True,
        vectorized: bool = True,
        incremental: bool = True,
        refit_tol: Optional[float] = None,
        strategy=None,
    ) -> None:
        super().__init__(
            schema,
            max_answers_per_cell=max_answers_per_cell,
            incremental=incremental,
        )
        if refit_every < 1:
            raise AssignmentError(f"refit_every must be >= 1, got {refit_every}")
        self.model = model or TCrowdModel()
        self.use_structure = bool(use_structure)
        self.refit_every = int(refit_every)
        self.continuous_samples = int(continuous_samples)
        self.min_pairs = int(min_pairs)
        self.seed = seed
        self.warm_start = bool(warm_start)
        self.refit_tol = None if refit_tol is None else float(refit_tol)
        self.vectorized = bool(vectorized)
        self.strategy = strategy
        self._rng = as_generator(
            seed if seed is not None else getattr(self.model, "rng", None)
        )
        self._result: Optional[InferenceResult] = None
        self._answers_at_last_fit = -1

    @property
    def name(self) -> str:
        base = (
            "T-Crowd (structure-aware)"
            if self.use_structure
            else "T-Crowd (inherent)"
        )
        if self.strategy is not None:
            return f"{base} [{self.strategy.name}]"
        return base

    @property
    def last_result(self) -> Optional[InferenceResult]:
        """The most recent truth-inference result (None before the first fit)."""
        return self._result

    @property
    def answers_at_last_fit(self) -> int:
        """Answer-set size at the most recent refit (-1 before the first)."""
        return self._answers_at_last_fit

    # -- policy ---------------------------------------------------------------

    def prepare_scoring(self, answers: AnswerSet):
        """Refit if stale and return the gain calculator for ``answers``.

        Convenience composition of the two real seams —
        :meth:`_ensure_result` (the refit cadence) and
        :meth:`_build_calculator` (what scores are computed with).  Every
        serving mode goes through those two: the vectorized :meth:`select`
        calls them via :meth:`rank_candidates`, the scalar path and the
        sharded wrapper (:class:`~repro.engine.ShardedAssignmentPolicy`)
        call this method, and the async policy substitutes a snapshot
        result into the same :meth:`rank_candidates`.  None of the paths
        can diverge on *when* they refit or *what* they score with — the
        precondition for their bit-identical decisions.
        """
        result = self._ensure_result(answers)
        return self._build_calculator(result, answers)

    def select(self, worker: str, answers: AnswerSet, k: int = 1) -> BatchAssignment:
        """Assign the top-``k`` candidate cells by information gain."""
        if k < 1:
            raise AssignmentError(f"k must be >= 1, got {k}")
        candidates = self.candidate_cells(worker, answers)
        if not candidates:
            raise AssignmentError(f"No candidate cells left for worker {worker!r}")
        if self.vectorized:
            result = self._ensure_result(answers)
            assignment = self.rank_candidates(result, worker, answers, candidates, k)
        else:
            calculator = self.prepare_scoring(answers)
            gains = {
                cell: calculator.gain(worker, cell[0], cell[1])
                for cell in candidates
            }
            ranked = sorted(
                gains.items(), key=lambda item: item[1], reverse=True
            )[:k]
            cells = tuple(cell for cell, _gain in ranked)
            values = tuple(gain for _cell, gain in ranked)
            assignment = BatchAssignment(worker, cells, values)
        self._record_decision(
            assignment,
            answers_seen=self._answers_at_last_fit,
            answers_total=len(answers),
            candidates=len(candidates),
            result=self._result,
            shards=_single_shard_lineage(len(candidates), assignment),
        )
        return assignment

    def rank_candidates(
        self,
        result: InferenceResult,
        worker: str,
        answers: AnswerSet,
        candidates: List[Cell],
        k: int,
    ) -> BatchAssignment:
        """Vectorised stable top-``k`` over ``candidates`` scored with ``result``.

        The one scoring block shared by every serving mode that brings its
        own inference result — :meth:`select` (the result of the policy's
        own refit cadence) and the async policy (a
        :class:`~repro.engine.ModelSnapshot`'s result) — so ranking and
        tie-breaking cannot drift between them.
        """
        calculator = self._build_calculator(result, answers)
        gains = calculator.gains_batch(worker, candidates)
        order = top_k_stable(gains, k)
        cells = tuple(candidates[index] for index in order)
        values = tuple(float(gains[index]) for index in order)
        return BatchAssignment(worker, cells, values)

    def observe(self, answers: AnswerSet) -> None:
        """Refresh truth inference if enough new answers arrived."""
        self._ensure_result(answers)

    def calculator_for(self, result: InferenceResult, answers: AnswerSet):
        """Gain calculator scoring with an externally supplied ``result``.

        The public seam used by serving modes that bring their own inference
        result — the sharded scorer reading async
        :class:`~repro.engine.ModelSnapshot`s builds its per-shard
        calculator here, so its scores come from exactly the same
        calculator construction as :meth:`rank_candidates`.
        """
        return self._build_calculator(result, answers)

    def final_result(self, answers: AnswerSet) -> InferenceResult:
        """Truth inference over *all* of ``answers`` (end-of-session estimates).

        Unlike :meth:`observe`, which honours the ``refit_every`` cadence,
        this catches the model fully up (warm-started per the knobs) and
        records the fit in the refit bookkeeping — it is a real event in the
        warm-start chain, which is what lets the service layer's WAL replay
        reproduce estimate requests deterministically.
        """
        if self._result is None or self._answers_at_last_fit < len(answers):
            tol = self.refit_tol if self.warm_start and self._result else None
            self._result = refit_model(
                self.model, self.schema, answers,
                previous=self._result, warm_start=self.warm_start, tol=tol,
            )
            self._answers_at_last_fit = len(answers)
        return self._result

    # -- durability ------------------------------------------------------------

    def snapshot_state(self) -> Optional[Tuple[InferenceResult, int]]:
        """``(result, answers_seen)`` of the last refit, for durable snapshots.

        ``None`` before the first fit.  Together with :meth:`restore_state`
        this is the contract the service layer's write-ahead log uses to
        persist and rebuild the warm-start chain bit-identically.
        """
        if self._result is None:
            return None
        return self._result, self._answers_at_last_fit

    def restore_state(self, result: InferenceResult, answers_seen: int) -> None:
        """Restore the refit bookkeeping captured by :meth:`snapshot_state`."""
        self._result = result
        self._answers_at_last_fit = int(answers_seen)

    # -- internals -------------------------------------------------------------

    def _ensure_result(self, answers: AnswerSet) -> InferenceResult:
        if len(answers) == 0:
            raise AssignmentError(
                "T-Crowd assignment needs at least one collected answer; "
                "seed each task with initial answers first (Algorithm 2, line 1)"
            )
        stale = (
            self._result is None
            or len(answers) - self._answers_at_last_fit >= self.refit_every
        )
        if stale:
            # The tolerance only makes sense once there is a previous result
            # to warm-start from; the first (cold) fit keeps the full budget.
            tol = self.refit_tol if self.warm_start and self._result else None
            self._result = refit_model(
                self.model, self.schema, answers,
                previous=self._result, warm_start=self.warm_start, tol=tol,
            )
            self._answers_at_last_fit = len(answers)
        return self._result

    def _build_calculator(self, result: InferenceResult, answers: AnswerSet):
        """The calculator scoring this state — strategy-aware dispatcher.

        Every serving mode funnels scoring through here (directly, via
        :meth:`prepare_scoring`, :meth:`rank_candidates` or
        :meth:`calculator_for`), so swapping the strategy swaps scoring
        for *all* of them at once while everything around the scores —
        candidate filtering, stable top-K, shard merge, provenance —
        stays shared.
        """
        if self.strategy is not None:
            return self.strategy.build_calculator(self, result, answers)
        return self.paper_calculator(result, answers)

    def paper_calculator(self, result: InferenceResult, answers: AnswerSet):
        """The paper's gain calculator (Sections 5.1/5.2), strategy-blind.

        Public so composing strategies (``budget_voi``, ``epsilon_greedy``
        with a ``paper`` base) can reach the inner gain without recursing
        through the strategy dispatch of :meth:`_build_calculator`.
        """
        if self.use_structure:
            return StructureAwareGainCalculator(
                result,
                answers,
                continuous_samples=self.continuous_samples,
                min_pairs=self.min_pairs,
                seed=self._rng,
            )
        return InformationGainCalculator(
            result, continuous_samples=self.continuous_samples, seed=self._rng
        )
