"""Tests for the tcrowd-experiments command-line interface."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_known_experiments_registered(self):
        for name in ("table7", "figure2", "figure5", "figure10", "efficiency"):
            assert name in EXPERIMENTS

    def test_parser_defaults(self):
        args = build_parser().parse_args(["table7"])
        assert args.experiment == "table7"
        assert args.seed == 7
        assert not args.quick

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["not-an-experiment"])

    def test_parser_dataset_choice(self):
        args = build_parser().parse_args(["figure2", "--dataset", "Emotion"])
        assert args.dataset == "Emotion"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure2", "--dataset", "Unknown"])


class TestMain:
    def test_quick_table7_to_file(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        code = main(["table7", "--quick", "--seed", "3", "--output", str(output)])
        assert code == 0
        text = output.read_text()
        assert "table7" in text
        assert "T-Crowd" in text
        printed = capsys.readouterr().out
        assert "T-Crowd" in printed

    def test_quick_synthetic_runs_all_three_sweeps(self, capsys):
        code = main(["synthetic", "--quick", "--seed", "3"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "figure7" in printed
        assert "figure8" in printed
        assert "figure9" in printed


class StubReport:
    """Minimal stand-in for ExperimentReport in dispatch tests."""

    def __init__(self, name):
        self.name = name

    def to_text(self):
        return f"[report:{self.name}]"


class TestMainDispatch:
    """Dispatch logic of main() exercised against stubbed experiments, so
    the 'all' fan-out and the output plumbing are covered without running
    the (slow) real harnesses."""

    @pytest.fixture()
    def stubbed(self, monkeypatch):
        import repro.experiments.cli as cli

        calls = []

        def make(name):
            def runner(args):
                calls.append((name, args.seed, args.quick))
                return [StubReport(name)]

            return runner

        monkeypatch.setattr(
            cli, "EXPERIMENTS", {name: make(name) for name in cli.EXPERIMENTS}
        )
        return calls

    def test_all_runs_every_registered_experiment(self, stubbed, tmp_path, capsys):
        from repro.experiments.cli import EXPERIMENTS, main

        output = tmp_path / "all.txt"
        assert main(["all", "--output", str(output)]) == 0
        ran = [name for name, _seed, _quick in stubbed]
        assert ran == sorted(EXPERIMENTS)
        text = output.read_text()
        for name in EXPERIMENTS:
            assert f"[report:{name}]" in text
        capsys.readouterr()

    def test_single_experiment_runs_only_itself(self, stubbed, capsys):
        from repro.experiments.cli import main

        assert main(["engine", "--seed", "11", "--quick"]) == 0
        assert stubbed == [("engine", 11, True)]
        assert "[report:engine]" in capsys.readouterr().out

    def test_engine_experiment_registered(self):
        from repro.experiments.cli import EXPERIMENTS, build_parser

        assert "engine" in EXPERIMENTS
        args = build_parser().parse_args(["engine", "--quick"])
        assert args.experiment == "engine"

    def test_output_file_not_written_on_parse_error(self, tmp_path):
        from repro.experiments.cli import main

        output = tmp_path / "never.txt"
        with pytest.raises(SystemExit):
            main(["nonsense", "--output", str(output)])
        assert not output.exists()
