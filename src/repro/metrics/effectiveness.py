"""Error Rate and MNAD (Section 6.2) plus supporting measures.

* **Error Rate** — fraction of categorical cells whose estimated truth does
  not match the ground truth.
* **MNAD** (Mean Normalized Absolute Distance) — per continuous column, the
  RMSE between estimated and true values normalised by the column's standard
  deviation, averaged over the continuous columns.  Following the paper's
  Section 6.5.2 discussion the default normaliser is the standard deviation
  of the collected *answers* in the column; ``normalize_by="truth"`` switches
  to the ground-truth standard deviation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.datasets.base import CrowdDataset
from repro.utils.exceptions import DataError


def as_estimates(source, dataset: CrowdDataset) -> Dict[Tuple[int, int], object]:
    """Normalise an estimate source into a ``{(row, col): value}`` mapping.

    ``source`` may already be such a mapping, or any object exposing an
    ``estimates()`` method (e.g. :class:`~repro.core.inference.InferenceResult`
    or a baseline result).
    """
    if isinstance(source, Mapping):
        return dict(source)
    if hasattr(source, "estimates"):
        return dict(source.estimates())
    raise DataError(
        f"Cannot interpret {type(source).__name__} as truth estimates"
    )


def error_rate(
    source,
    dataset: CrowdDataset,
    columns: Optional[Iterable[int]] = None,
) -> float:
    """Error rate over the categorical cells of ``dataset``.

    ``columns`` restricts the computation to a subset of categorical columns;
    cells missing from the estimates count as errors (a method that does not
    answer a task cannot be credited for it).
    """
    estimates = as_estimates(source, dataset)
    selected = set(columns) if columns is not None else set(dataset.schema.categorical_indices)
    selected &= set(dataset.schema.categorical_indices)
    cells = [(i, j) for (i, j) in dataset.schema.cells() if j in selected]
    if not cells:
        raise DataError("The dataset has no categorical cells to score")
    wrong = 0
    for cell in cells:
        estimate = estimates.get(cell)
        if estimate is None or estimate != dataset.ground_truth[cell]:
            wrong += 1
    return wrong / len(cells)


def column_rmse(source, dataset: CrowdDataset, col: int) -> float:
    """RMSE of the estimates of one continuous column against the ground truth."""
    column = dataset.schema.columns[col]
    if not column.is_continuous:
        raise DataError(f"Column {column.name!r} is not continuous")
    estimates = as_estimates(source, dataset)
    errors = []
    for i in range(dataset.schema.num_rows):
        estimate = estimates.get((i, col))
        truth = float(dataset.ground_truth[(i, col)])
        if estimate is None:
            # Penalise missing estimates by the column's full spread.
            errors.append(dataset.column_truth_std(col) * 2.0)
        else:
            errors.append(float(estimate) - truth)
    return float(np.sqrt(np.mean(np.square(errors))))


def _column_answer_std(dataset: CrowdDataset, col: int) -> float:
    values = np.array(
        [float(a.value) for a in dataset.answers.answers_in_column(col)], dtype=float
    )
    if len(values) < 2:
        return max(dataset.column_truth_std(col), 1e-9)
    return max(float(np.std(values)), 1e-9)


def mnad(
    source,
    dataset: CrowdDataset,
    columns: Optional[Iterable[int]] = None,
    normalize_by: str = "answers",
) -> float:
    """Mean Normalized Absolute Distance over the continuous columns."""
    if normalize_by not in ("answers", "truth"):
        raise DataError(f"normalize_by must be 'answers' or 'truth', got {normalize_by!r}")
    selected = set(columns) if columns is not None else set(dataset.schema.continuous_indices)
    selected &= set(dataset.schema.continuous_indices)
    if not selected:
        raise DataError("The dataset has no continuous cells to score")
    normalized = []
    for col in sorted(selected):
        rmse = column_rmse(source, dataset, col)
        if normalize_by == "answers":
            denominator = _column_answer_std(dataset, col)
        else:
            denominator = max(dataset.column_truth_std(col), 1e-9)
        normalized.append(rmse / denominator)
    return float(np.mean(normalized))


def pearson_correlation(x, y) -> float:
    """Pearson correlation coefficient (used by the calibration case study)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y) or len(x) < 2:
        raise DataError("pearson_correlation needs two equally sized vectors (>= 2)")
    if float(np.std(x)) < 1e-12 or float(np.std(y)) < 1e-12:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])
