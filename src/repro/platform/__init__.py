"""AMT-like crowdsourcing platform simulator.

The end-to-end experiments of Sections 6.3-6.4 run each assignment policy
against a live crowd; this package provides the simulated equivalent: a
worker-arrival process over the dataset's worker pool, a budget in answers,
and a session loop that alternates assignment, answer collection (through
the dataset's :class:`~repro.datasets.workers.AnswerOracle`) and periodic
evaluation of the policy's own truth-inference method against the ground
truth.
"""

from repro.platform.arrival import WorkerArrivalProcess
from repro.platform.budget import Budget
from repro.platform.scenario import (
    DifficultyDrift,
    SessionScenario,
    build_scenario,
    scenario_seed,
    spam_pool,
)
from repro.platform.session import CrowdsourcingSession, SessionRecord, SessionTrace

__all__ = [
    "Budget",
    "CrowdsourcingSession",
    "DifficultyDrift",
    "SessionRecord",
    "SessionScenario",
    "SessionTrace",
    "WorkerArrivalProcess",
    "build_scenario",
    "scenario_seed",
    "spam_pool",
]
