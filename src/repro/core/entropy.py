"""Uniform entropy for heterogeneous cells (Section 5.1).

Categorical cells use Shannon entropy, continuous cells differential entropy.
The two are not directly comparable (differential entropy can be negative),
but their *differences* are: discretising a continuous variable with bin width
``Delta`` gives ``H_s(X^Delta) + ln(Delta) -> H_d(X)``, so subtracting two
differential entropies approximates subtracting two Shannon entropies of the
discretised variables.  That is why task assignment ranks cells by *delta*
entropy (information gain) instead of by raw entropy.
"""

from __future__ import annotations

import numpy as np

from repro.core.posteriors import CategoricalPosterior, GaussianPosterior
from repro.utils.exceptions import ConfigurationError
from repro.utils.numerics import safe_log


def shannon_entropy(probs) -> float:
    """Shannon entropy (natural log) of a discrete distribution."""
    probs = np.asarray(probs, dtype=float)
    total = probs.sum()
    if not np.isfinite(total) or total <= 0:
        raise ConfigurationError("probs must sum to a positive finite value")
    probs = probs / total
    return float(-np.sum(probs * safe_log(probs)))


def differential_entropy(variance: float) -> float:
    """Differential entropy of a Gaussian: ``0.5 * ln(2 pi e variance)``."""
    if not variance > 0:
        raise ConfigurationError(f"variance must be positive, got {variance}")
    return 0.5 * float(np.log(2.0 * np.pi * np.e * variance))


def uniform_entropy(posterior) -> float:
    """Entropy ``H(T_ij)`` of either posterior family (Section 5.1)."""
    if isinstance(posterior, (CategoricalPosterior, GaussianPosterior)):
        return posterior.entropy()
    raise ConfigurationError(
        f"Unsupported posterior type {type(posterior).__name__}"
    )


def delta_entropy_comparable(before: float, after: float) -> float:
    """Delta entropy ``H(before) - H(after)``.

    Both arguments must be entropies of the *same* cell (hence the same
    datatype), which is what makes the delta comparable across datatypes.
    """
    return before - after
