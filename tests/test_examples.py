"""Smoke tests keeping the runnable examples in working order.

Each example is imported from the ``examples/`` directory and executed with
reduced parameters so the whole module stays fast.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    """Import an example script as a module without executing its __main__ guard."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleScripts:
    def test_examples_directory_contents(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "celebrity_truth_inference.py",
            "adaptive_task_assignment.py",
            "worker_quality_analysis.py",
            "custom_table_collection.py",
        } <= names

    def test_quickstart_runs_and_recovers_truths(self, capsys):
        module = _load_example("quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "Estimated truths" in output
        assert "Great Britain" in output          # picture 3's nationality
        assert "Unified worker quality" in output

    def test_celebrity_truth_inference_small(self, capsys, monkeypatch):
        module = _load_example("celebrity_truth_inference.py")
        monkeypatch.setattr(
            sys, "argv", ["celebrity_truth_inference.py", "--rows", "20", "--seed", "3"]
        )
        module.main()
        output = capsys.readouterr().out
        assert "T-Crowd" in output
        assert "Best error rate" in output

    def test_worker_quality_analysis_small(self, capsys, monkeypatch):
        module = _load_example("worker_quality_analysis.py")
        monkeypatch.setattr(
            sys, "argv", ["worker_quality_analysis.py", "--rows", "30", "--top", "8"]
        )
        module.main()
        output = capsys.readouterr().out
        assert "Calibration" in output
        assert "estimated quality" in output

    @pytest.mark.slow
    def test_adaptive_task_assignment_small(self, capsys, monkeypatch):
        module = _load_example("adaptive_task_assignment.py")
        monkeypatch.setattr(
            sys, "argv",
            ["adaptive_task_assignment.py", "--rows", "10", "--budget", "2.5"],
        )
        module.main()
        output = capsys.readouterr().out
        assert "Structure-aware IG" in output
        assert "answers/task" in output

    @pytest.mark.slow
    def test_custom_table_collection(self, capsys):
        module = _load_example("custom_table_collection.py")
        module.main()
        output = capsys.readouterr().out
        assert "Final catalogue quality" in output
        assert "error rate" in output
