"""Tests for the crowdsourcing-platform simulator (repro.platform)."""

import pytest

from repro.baselines.assignment_simple import RandomAssigner
from repro.baselines.combined import CombinedInference
from repro.config import SessionSpec, SimulationSpec
from repro.core.assignment import TCrowdAssigner
from repro.core.inference import TCrowdModel
from repro.datasets import WorkerPool, generate_synthetic
from repro.platform import (
    Budget,
    CrowdsourcingSession,
    DifficultyDrift,
    WorkerArrivalProcess,
    build_scenario,
    spam_pool,
)
from repro.utils.exceptions import ConfigurationError


class TestBudget:
    def test_charge_and_exhaustion(self):
        budget = Budget(total_answers=5)
        assert not budget.exhausted
        budget.charge(3)
        assert budget.remaining_answers == 2
        budget.charge(2)
        assert budget.exhausted
        assert budget.remaining_answers == 0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Budget(total_answers=5).charge(-1)

    def test_money_accounting(self):
        budget = Budget(total_answers=10, cost_per_answer=0.05)
        budget.charge(4)
        assert budget.spent_money == pytest.approx(0.2)

    def test_from_answers_per_task(self, mixed_schema):
        budget = Budget.from_answers_per_task(mixed_schema, 2.0)
        assert budget.total_answers == 2 * mixed_schema.num_cells
        budget.charge(mixed_schema.num_cells)
        assert budget.answers_per_task(mixed_schema) == pytest.approx(1.0)

    def test_positive_total_required(self):
        with pytest.raises(ConfigurationError):
            Budget(total_answers=0)

    def test_zero_budget_rate_rejected(self, mixed_schema):
        # A session budgeted at 0 answers per task must fail at
        # construction, not loop on an empty budget.
        with pytest.raises(ConfigurationError):
            Budget.from_answers_per_task(mixed_schema, 0.0)

    def test_overspend_clamps_remaining(self):
        budget = Budget(total_answers=3)
        budget.charge(5)
        assert budget.exhausted
        assert budget.remaining_answers == 0


class TestWorkerArrivalProcess:
    def test_yields_known_workers(self):
        pool = WorkerPool.generate(10, seed=0)
        arrival = WorkerArrivalProcess(pool, seed=1)
        workers = list(arrival.stream(50))
        assert len(workers) == 50
        assert set(workers) <= set(pool.worker_ids())

    def test_sessions_create_repeat_visits(self):
        pool = WorkerPool.generate(30, seed=0)
        arrival = WorkerArrivalProcess(pool, seed=2, session_continue_probability=0.9)
        workers = list(arrival.stream(100))
        repeats = sum(1 for a, b in zip(workers, workers[1:]) if a == b)
        assert repeats > 30

    def test_no_sessions_when_probability_zero(self):
        pool = WorkerPool.generate(30, seed=0)
        arrival = WorkerArrivalProcess(pool, seed=3, session_continue_probability=0.0)
        workers = list(arrival.stream(200))
        assert len(set(workers)) > 10

    def test_reproducible(self):
        pool = WorkerPool.generate(10, seed=0)
        a = list(WorkerArrivalProcess(pool, seed=7).stream(20))
        b = list(WorkerArrivalProcess(pool, seed=7).stream(20))
        assert a == b

    def test_invalid_probability(self):
        pool = WorkerPool.generate(5, seed=0)
        with pytest.raises(ConfigurationError):
            WorkerArrivalProcess(pool, session_continue_probability=1.0)

    def test_invalid_churn_parameters(self):
        pool = WorkerPool.generate(5, seed=0)
        with pytest.raises(ConfigurationError):
            WorkerArrivalProcess(pool, churn_rate=1.0)
        with pytest.raises(ConfigurationError):
            WorkerArrivalProcess(pool, churn_rate=0.2, active_fraction=0.0)

    def test_churn_off_draws_are_unchanged(self):
        # churn_rate=0 must not consume a single extra variate: the stream
        # is identical to a process that never knew about the knob, and the
        # whole pool stays eligible.
        pool = WorkerPool.generate(12, seed=0)
        baseline = WorkerArrivalProcess(pool, seed=7)
        explicit = WorkerArrivalProcess(
            pool, seed=7, churn_rate=0.0, active_fraction=0.2
        )
        assert explicit.active_worker_ids() == pool.worker_ids()
        assert list(baseline.stream(100)) == list(explicit.stream(100))

    def test_churn_restricts_arrivals_to_active_subset(self):
        pool = WorkerPool.generate(20, seed=0)
        arrival = WorkerArrivalProcess(
            pool, seed=5, churn_rate=0.3, active_fraction=0.3
        )
        assert len(arrival.active_worker_ids()) == 6
        for _ in range(100):
            worker = arrival.next_worker()
            assert worker in arrival.active_worker_ids()

    def test_churned_worker_re_arrival(self):
        pool = WorkerPool.generate(20, seed=0)
        arrival = WorkerArrivalProcess(
            pool,
            seed=11,
            session_continue_probability=0.0,
            churn_rate=0.5,
            active_fraction=0.3,
        )
        everyone = set(pool.worker_ids())
        churned_out = everyone - set(arrival.active_worker_ids())
        re_arrived = set()
        for _ in range(300):
            worker = arrival.next_worker()
            if worker in churned_out:
                re_arrived.add(worker)
            churned_out |= everyone - set(arrival.active_worker_ids())
        # Churn is not permanent: workers who left the platform came back
        # and picked up HITs again.
        assert re_arrived

    def test_churn_reproducible(self):
        pool = WorkerPool.generate(15, seed=0)
        kwargs = dict(seed=9, churn_rate=0.4, active_fraction=0.4)
        a = list(WorkerArrivalProcess(pool, **kwargs).stream(80))
        b = list(WorkerArrivalProcess(pool, **kwargs).stream(80))
        assert a == b


class TestCrowdsourcingSession:
    @pytest.fixture(scope="class")
    def session_dataset(self):
        return generate_synthetic(
            num_rows=10, num_columns=4, categorical_ratio=0.5,
            answers_per_task=2, num_workers=15, seed=8,
        )

    def test_requires_oracle(self, session_dataset):
        stripped = session_dataset.with_answers(session_dataset.answers)
        stripped.oracle = None
        with pytest.raises(ConfigurationError):
            CrowdsourcingSession(
                stripped, RandomAssigner(stripped.schema, seed=0),
                CombinedInference(), target_answers_per_task=3.0,
            )

    def test_budget_must_exceed_seed(self, session_dataset):
        with pytest.raises(ConfigurationError):
            CrowdsourcingSession(
                session_dataset, RandomAssigner(session_dataset.schema, seed=0),
                CombinedInference(), target_answers_per_task=1.0,
                initial_answers_per_task=1,
            )

    def test_random_policy_session(self, session_dataset):
        session = CrowdsourcingSession(
            session_dataset,
            RandomAssigner(session_dataset.schema, seed=0),
            CombinedInference(),
            target_answers_per_task=3.0,
            initial_answers_per_task=1,
            eval_every_answers_per_task=1.0,
            seed=4,
        )
        trace = session.run()
        assert trace.records[0].answers_per_task == pytest.approx(1.0)
        assert trace.final.answers_per_task == pytest.approx(3.0, abs=0.1)
        assert trace.final.error_rate is not None
        assert trace.final.mnad is not None
        # Budget axis is monotone.
        apts = [record.answers_per_task for record in trace.records]
        assert apts == sorted(apts)

    def test_quality_improves_with_budget(self, session_dataset):
        session = CrowdsourcingSession(
            session_dataset,
            RandomAssigner(session_dataset.schema, seed=1),
            CombinedInference(),
            target_answers_per_task=5.0,
            initial_answers_per_task=1,
            eval_every_answers_per_task=2.0,
            seed=5,
        )
        trace = session.run()
        # Going from 1 to 5 answers per task should not leave the estimate
        # quality worse than at the start (small slack for the stochastic
        # denominator of MNAD).
        assert trace.final.mnad <= trace.records[0].mnad + 0.05

    def test_tcrowd_policy_session(self, session_dataset):
        model = TCrowdModel(max_iterations=6, m_step_iterations=10)
        policy = TCrowdAssigner(
            session_dataset.schema, model=model, refit_every=8, use_structure=True
        )
        session = CrowdsourcingSession(
            session_dataset, policy, model,
            target_answers_per_task=2.5,
            initial_answers_per_task=1,
            eval_every_answers_per_task=1.0,
            seed=6,
        )
        trace = session.run()
        assert trace.policy_name.startswith("T-Crowd")
        assert len(trace.records) >= 2

    def test_trace_helpers(self, session_dataset):
        session = CrowdsourcingSession(
            session_dataset,
            RandomAssigner(session_dataset.schema, seed=2),
            CombinedInference(),
            target_answers_per_task=3.0,
            eval_every_answers_per_task=1.0,
            seed=7,
        )
        trace = session.run()
        series = trace.series("mnad")
        assert all(len(point) == 2 for point in series)
        # answers_to_reach returns None for unreachable targets and a value
        # within the budget for trivially reachable ones.
        assert trace.answers_to_reach("mnad", -1.0) is None
        assert trace.answers_to_reach("mnad", 10.0) is not None

    def test_max_steps_guard(self, session_dataset):
        session = CrowdsourcingSession(
            session_dataset,
            RandomAssigner(session_dataset.schema, seed=3),
            CombinedInference(),
            target_answers_per_task=4.0,
            eval_every_answers_per_task=1.0,
            seed=8,
            max_steps=2,
        )
        trace = session.run()
        assert trace.final.answers_per_task < 4.0


class TestSessionTraceEdgeCases:
    def _record(self, answers_per_task, error_rate=None, mnad=None):
        from repro.platform.session import SessionRecord

        return SessionRecord(
            answers_collected=int(answers_per_task * 10),
            answers_per_task=answers_per_task,
            error_rate=error_rate,
            mnad=mnad,
            spent_money=0.0,
        )

    def _trace(self, records=()):
        from repro.platform.session import SessionTrace

        return SessionTrace("policy", "inference", "dataset", list(records))

    def test_final_raises_on_empty_trace(self):
        with pytest.raises(ConfigurationError):
            self._trace().final

    def test_answers_to_reach_on_empty_trace(self):
        assert self._trace().answers_to_reach("error_rate", 0.5) is None

    def test_answers_to_reach_when_target_never_reached(self):
        trace = self._trace(
            [
                self._record(1.0, error_rate=0.5),
                self._record(2.0, error_rate=0.4),
                self._record(3.0, error_rate=0.35),
            ]
        )
        assert trace.answers_to_reach("error_rate", 0.1) is None

    def test_answers_to_reach_skips_missing_metric_values(self):
        trace = self._trace(
            [
                self._record(1.0, error_rate=0.5),          # mnad missing
                self._record(2.0, error_rate=0.4, mnad=0.3),
            ]
        )
        assert trace.answers_to_reach("mnad", 0.3) == pytest.approx(2.0)
        # A metric that never gets a value is never reached.
        trace_missing = self._trace([self._record(1.0, error_rate=0.5)])
        assert trace_missing.answers_to_reach("mnad", 1.0) is None

    def test_answers_to_reach_returns_first_crossing(self):
        trace = self._trace(
            [
                self._record(1.0, error_rate=0.5),
                self._record(2.0, error_rate=0.2),
                self._record(3.0, error_rate=0.1),
            ]
        )
        assert trace.answers_to_reach("error_rate", 0.2) == pytest.approx(2.0)


class TestAsyncRefitSession:
    @pytest.fixture(scope="class")
    def async_dataset(self):
        return generate_synthetic(
            num_rows=8, num_columns=3, categorical_ratio=0.5,
            answers_per_task=2, num_workers=12, seed=9,
        )

    @staticmethod
    def _spec_builder():
        return (
            SessionSpec.builder()
            .model(max_iterations=4, m_step_iterations=8)
            .policy(refit_every=1)
            .simulation(
                target_answers_per_task=1.6,
                eval_every_answers_per_task=0.5,
                seed=6,
            )
        )

    def _session(self, dataset, spec=None):
        spec = spec if spec is not None else self._spec_builder().build()
        model = TCrowdModel(max_iterations=4, m_step_iterations=8)
        policy = TCrowdAssigner(
            dataset.schema, model=model, refit_every=1,
        )
        return CrowdsourcingSession(dataset, policy, model, spec=spec)

    def test_async_exact_session_replays_synchronous_trace(self, async_dataset):
        sync_trace = self._session(async_dataset).run()
        async_trace = self._session(
            async_dataset,
            spec=self._spec_builder().async_refit(max_stale=0).build(),
        ).run()
        assert async_trace.records == sync_trace.records
        assert async_trace.policy_name.endswith("[async refit]")

    def test_from_spec_builds_policy_and_inference(self, async_dataset):
        """from_spec needs nothing but the dataset and the spec document."""
        spec = self._spec_builder().build()
        session = CrowdsourcingSession.from_spec(async_dataset, spec)
        assert session.spec is spec
        trace = session.run()
        assert trace.final.answers_per_task > 1.0
        reference = CrowdsourcingSession.from_spec(async_dataset, spec).run()
        assert trace.records == reference.records

    def test_bounded_staleness_session_completes(self, async_dataset):
        trace = self._session(
            async_dataset,
            spec=self._spec_builder().async_refit(max_stale=6).build(),
        ).run()
        assert trace.final.answers_per_task > 1.0
        assert trace.final.error_rate is not None

    def test_composed_sharded_async_session_replays_synchronous_trace(
        self, async_dataset
    ):
        """shards + async_refit compose (ShardedAsyncPolicy); at
        max_stale_answers=0 the composed session must replay the
        synchronous trace bit for bit."""
        sync_trace = self._session(async_dataset).run()
        composed_trace = self._session(
            async_dataset,
            spec=self._spec_builder().sharded(2).async_refit(max_stale=0).build(),
        ).run()
        assert composed_trace.records == sync_trace.records
        assert composed_trace.policy_name.endswith("[sharded x2 + async refit]")

    def test_composed_session_with_bounded_staleness_completes(self, async_dataset):
        trace = self._session(
            async_dataset,
            spec=self._spec_builder().sharded(2).async_refit(max_stale=6).build(),
        ).run()
        assert trace.final.answers_per_task > 1.0

    def test_async_requires_tcrowd_policy(self, async_dataset):
        model = TCrowdModel(max_iterations=4, m_step_iterations=8)
        spec = SessionSpec.builder().async_refit().simulation(
            target_answers_per_task=2.0
        ).build()
        with pytest.raises(ConfigurationError):
            CrowdsourcingSession(
                async_dataset,
                RandomAssigner(async_dataset.schema, seed=0),
                model,
                spec=spec,
            )


class TestLegacyKwargsShim:
    """The pre-spec keyword surface keeps working, with a DeprecationWarning."""

    @pytest.fixture(scope="class")
    def shim_dataset(self):
        return generate_synthetic(
            num_rows=6, num_columns=3, categorical_ratio=0.5,
            answers_per_task=2, num_workers=10, seed=21,
        )

    def _policy(self, dataset):
        return TCrowdAssigner(
            dataset.schema,
            model=TCrowdModel(max_iterations=3, m_step_iterations=6),
            refit_every=1,
        )

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_legacy_serving_kwargs_warn_and_match_spec_path(self, shim_dataset):
        with pytest.warns(DeprecationWarning, match="async_refit.*shards"):
            legacy = CrowdsourcingSession(
                shim_dataset,
                self._policy(shim_dataset),
                TCrowdModel(max_iterations=3, m_step_iterations=6),
                target_answers_per_task=1.5,
                seed=13,
                shards=2,
                async_refit=True,
                max_stale_answers=0,
            )
        spec = (
            SessionSpec.builder()
            .sharded(2)
            .async_refit(max_stale=0)
            .simulation(target_answers_per_task=1.5, seed=13)
            .build()
        )
        assert legacy.spec == spec
        via_spec = CrowdsourcingSession(
            shim_dataset,
            self._policy(shim_dataset),
            TCrowdModel(max_iterations=3, m_step_iterations=6),
            spec=spec,
        )
        assert legacy.run().records == via_spec.run().records

    def test_simulation_kwargs_do_not_warn(self, shim_dataset, recwarn):
        CrowdsourcingSession(
            shim_dataset,
            self._policy(shim_dataset),
            TCrowdModel(max_iterations=3, m_step_iterations=6),
            target_answers_per_task=1.5,
            seed=13,
        )
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_spec_and_legacy_kwargs_are_mutually_exclusive(self, shim_dataset):
        with pytest.raises(ConfigurationError, match="not both"):
            CrowdsourcingSession(
                shim_dataset,
                self._policy(shim_dataset),
                TCrowdModel(max_iterations=3, m_step_iterations=6),
                target_answers_per_task=1.5,
                spec=SessionSpec.builder().simulation(
                    target_answers_per_task=1.5
                ).build(),
            )

    def test_single_worker_session_stops_gracefully(self):
        dataset = generate_synthetic(
            num_rows=5, num_columns=3, categorical_ratio=0.5,
            answers_per_task=1, num_workers=1, seed=12,
        )
        session = CrowdsourcingSession(
            dataset,
            RandomAssigner(dataset.schema, seed=0),
            CombinedInference(),
            target_answers_per_task=3.0,
            eval_every_answers_per_task=1.0,
            seed=3,
        )
        # The only worker answered every cell during seeding, so no further
        # assignment is possible; the session must terminate with the seed
        # evaluation rather than loop on assignment failures.
        trace = session.run()
        assert len(trace.records) >= 1
        assert trace.final.answers_per_task == pytest.approx(1.0)


class TestSessionBudgetEdges:
    def test_final_burst_is_clamped_to_the_budget(self):
        # batch_size does not divide the extra budget: the last arrival
        # asks for a full batch but may only receive the remainder — the
        # session must land exactly on the target, never overshoot it.
        dataset = generate_synthetic(
            num_rows=5, num_columns=3, categorical_ratio=0.5,
            answers_per_task=2, num_workers=15, seed=14,
        )
        session = CrowdsourcingSession(
            dataset,
            RandomAssigner(dataset.schema, seed=0),
            CombinedInference(),
            target_answers_per_task=2.0,
            initial_answers_per_task=1,
            batch_size=4,  # extra budget is 15 answers: 3 full bursts + 3
            eval_every_answers_per_task=1.0,
            seed=15,
        )
        trace = session.run()
        assert trace.final.answers_per_task == pytest.approx(2.0)
        assert trace.final.answers_collected <= 2 * dataset.schema.num_cells


class TestScenario:
    """Seeded crowd perturbations (repro.platform.scenario)."""

    @pytest.fixture(scope="class")
    def scenario_dataset(self):
        return generate_synthetic(
            num_rows=8, num_columns=3, categorical_ratio=0.5,
            answers_per_task=2, num_workers=20, seed=17,
        )

    def test_spam_pool_deterministic(self):
        pool = WorkerPool.generate(20, seed=0)
        first, first_ids = spam_pool(pool, 0.3, 0.9, seed=7)
        second, second_ids = spam_pool(pool, 0.3, 0.9, seed=7)
        assert first_ids == second_ids
        assert len(first_ids) == 6
        for a, b in zip(first, second):
            assert a == b
        # A different seed converts a different subset.
        _, other_ids = spam_pool(pool, 0.3, 0.9, seed=8)
        assert other_ids != first_ids

    def test_spam_pool_raises_contamination_monotonically(self):
        pool = WorkerPool.generate(20, seed=0)
        spammed, ids = spam_pool(pool, 0.25, 0.9, seed=7)
        originals = {worker.worker_id: worker for worker in pool}
        for worker in spammed:
            if worker.worker_id in ids:
                assert worker.contamination >= 0.9
            else:
                assert worker == originals[worker.worker_id]
        # The input pool is never mutated.
        assert all(worker.contamination < 0.9 for worker in pool)

    def test_spam_pool_zero_fraction_is_identity(self):
        pool = WorkerPool.generate(10, seed=0)
        same, ids = spam_pool(pool, 0.0, 0.9, seed=7)
        assert same is pool
        assert ids == frozenset()

    def test_difficulty_drift_advances_and_caps(self, scenario_dataset):
        import dataclasses

        import numpy as np

        oracle = dataclasses.replace(scenario_dataset.oracle)
        base = np.array(oracle.row_difficulty, copy=True)
        drift = DifficultyDrift(oracle, rate=1.0)
        drift.advance()
        assert oracle.row_difficulty == pytest.approx(base * np.e)
        drift.advance(100)
        assert oracle.row_difficulty == pytest.approx(base * 10.0)  # capped

    def test_clean_scenario_is_the_dataset_itself(self, scenario_dataset):
        scenario = build_scenario(scenario_dataset, SimulationSpec(), seed=7)
        assert scenario.pool is scenario_dataset.worker_pool
        assert scenario.oracle is scenario_dataset.oracle
        assert scenario.drift is None
        assert scenario.spam_worker_ids == frozenset()

    def test_perturbed_scenario_never_mutates_the_dataset(self, scenario_dataset):
        import numpy as np

        before = np.array(scenario_dataset.oracle.row_difficulty, copy=True)
        simulation = SimulationSpec(spam_fraction=0.3, difficulty_drift=0.5)
        scenario = build_scenario(scenario_dataset, simulation, seed=7)
        assert scenario.oracle is not scenario_dataset.oracle
        assert scenario.spam_worker_ids
        scenario.drift.advance(5)
        assert scenario_dataset.oracle.row_difficulty == pytest.approx(before)

    @pytest.mark.parametrize(
        "knobs",
        [
            {"worker_churn_rate": 0.5},
            {"spam_fraction": 0.3, "spam_contamination": 0.95},
            {"difficulty_drift": 0.05},
        ],
    )
    def test_perturbed_sessions_replay_exactly(self, scenario_dataset, knobs):
        spec = (
            SessionSpec.builder()
            .model(max_iterations=3, m_step_iterations=6)
            .policy(refit_every=2)
            .simulation(
                target_answers_per_task=1.5,
                eval_every_answers_per_task=0.5,
                seed=19,
                **knobs,
            )
            .build()
        )
        first = CrowdsourcingSession.from_spec(scenario_dataset, spec).run()
        second = CrowdsourcingSession.from_spec(scenario_dataset, spec).run()
        assert first.records == second.records
