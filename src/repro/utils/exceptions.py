"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch every library failure with a single ``except`` clause while
still being able to distinguish configuration problems from data problems.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a model or experiment is configured with invalid options."""


class DataError(ReproError):
    """Raised when a dataset, schema or answer set is malformed."""


class InferenceError(ReproError):
    """Raised when truth inference cannot be completed (e.g. no answers)."""


class AssignmentError(ReproError):
    """Raised when a task-assignment policy cannot produce an assignment."""


class DurabilityError(ReproError):
    """Raised when a write-ahead log or snapshot store is inconsistent."""


class ServiceUnavailableError(ReproError):
    """Raised when a serving backend (e.g. a shard worker process) is down.

    The HTTP layer maps this to ``503 Service Unavailable`` — a dead shard
    worker surfaces as a fast, explicit error instead of a hang.
    """
