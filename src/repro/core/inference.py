"""T-Crowd truth inference (Section 4, Algorithm 1).

The model couples every worker's answers on *all* columns — categorical and
continuous — through a single per-worker variance ``phi_u``, per-row
difficulty ``alpha_i`` and per-column difficulty ``beta_j``.  Inference is an
EM loop:

* **E-step** (Eq. 4): per-cell truth posteriors.  Continuous cells get a
  Gaussian posterior whose precision is the sum of the answer precisions
  ``1 / (alpha_i beta_j phi_u)`` plus the prior precision; categorical cells
  get a multinomial posterior proportional to the product of per-answer
  likelihoods under Eq. 3.
* **M-step** (Eq. 5): maximise the expected complete-data log-likelihood over
  ``alpha, beta, phi`` by gradient ascent.  We optimise in log-space (which
  guarantees positivity), use analytic gradients, and renormalise the
  geometric mean of ``alpha`` and ``beta`` to one after each step because the
  likelihood only depends on the products ``alpha_i beta_j phi_u``.

Continuous columns are internally standardised (z-scored using the collected
answers) so that a single window parameter ``epsilon`` is meaningful across
columns of very different scales; all reported posteriors and estimates are
transformed back to the original scale.  Entropy *differences* — the
information-gain criterion of Section 5 — are invariant under this affine
transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import optimize

from repro.core.answers import AnswerSet, IndexedAnswers
from repro.core.posteriors import CategoricalPosterior, GaussianPosterior, Posterior
from repro.core.schema import TableSchema
from repro.core.worker_model import WorkerModel
from repro.utils.exceptions import InferenceError
from repro.utils.numerics import normalize_log_probs, safe_erf
from repro.utils.rng import as_generator
from repro.utils.validation import require_positive

#: Clip range for worker qualities inside likelihood evaluations.
_Q_FLOOR = 1e-9
#: Lower bound of any variance handled by the optimiser.
VARIANCE_FLOOR = 1e-8
_VAR_FLOOR = VARIANCE_FLOOR


@dataclass
class InferenceResult:
    """Output of :meth:`TCrowdModel.fit`.

    Exposes the per-cell truth posteriors, the estimated worker qualities and
    cell difficulties, and the diagnostics (objective trace, iteration count)
    used by the efficiency experiments (Figure 12).
    """

    schema: TableSchema
    worker_model: WorkerModel
    worker_ids: List[str]
    alpha: np.ndarray
    beta: np.ndarray
    phi: np.ndarray
    column_scale: np.ndarray
    column_offset: np.ndarray
    posteriors: Dict[Tuple[int, int], Posterior]
    objective_trace: List[float] = field(default_factory=list)
    n_iterations: int = 0
    converged: bool = False
    stopped_by: str = "max_iterations"

    def __post_init__(self) -> None:
        self._worker_index = {worker: u for u, worker in enumerate(self.worker_ids)}

    @property
    def iterations_run(self) -> int:
        """Number of EM iterations the fit actually ran (see ``stopped_by``)."""
        return self.n_iterations

    # -- truth estimates ----------------------------------------------------

    def posterior(self, row: int, col: int) -> Posterior:
        """Truth posterior of cell ``(row, col)``; prior-based if unanswered."""
        key = (row, col)
        if key in self.posteriors:
            return self.posteriors[key]
        column = self.schema.columns[col]
        if column.is_categorical:
            return CategoricalPosterior.uniform(column.labels)
        prior_var = max(float(self.column_scale[col]) ** 2, _VAR_FLOOR)
        return GaussianPosterior(float(self.column_offset[col]), prior_var)

    def estimate(self, row: int, col: int):
        """Estimated truth ``T^hat_ij`` of cell ``(row, col)``."""
        return self.posterior(row, col).point_estimate()

    def estimates(self) -> Dict[Tuple[int, int], object]:
        """Estimated truths for every cell of the table."""
        return {
            (i, j): self.estimate(i, j)
            for i in range(self.schema.num_rows)
            for j in range(self.schema.num_columns)
        }

    # -- worker quality -----------------------------------------------------

    def has_worker(self, worker: str) -> bool:
        """True if the worker contributed at least one answer."""
        return worker in self._worker_index

    def worker_variance(self, worker: str) -> float:
        """Inherent (standardised-scale) answer variance ``phi_u``."""
        try:
            return float(self.phi[self._worker_index[worker]])
        except KeyError as exc:
            raise InferenceError(f"Unknown worker {worker!r}") from exc

    def worker_quality(self, worker: str) -> float:
        """Unified quality ``q_u = erf(eps / sqrt(2 phi_u))`` in [0, 1]."""
        return float(
            self.worker_model.quality_from_variance(self.worker_variance(worker))
        )

    def worker_qualities(self) -> Dict[str, float]:
        """Unified quality of every worker."""
        return {worker: self.worker_quality(worker) for worker in self.worker_ids}

    def cell_quality(self, worker: str, row: int, col: int) -> float:
        """Per-cell quality ``q^u_ij = erf(eps / sqrt(2 alpha_i beta_j phi_u))``."""
        variance = self.standardized_answer_variance(worker, row, col)
        return float(self.worker_model.quality_from_variance(variance))

    def phi_for(self, worker: str) -> float:
        """Inherent variance ``phi_u``; the crowd median for unseen workers."""
        u = self._worker_index.get(worker)
        return float(self.phi[u]) if u is not None else float(np.median(self.phi))

    def standardized_answer_variance(self, worker: str, row: int, col: int) -> float:
        """Answer variance ``alpha_i beta_j phi_u`` in the standardised scale."""
        phi = self.phi_for(worker)
        return max(float(self.alpha[row] * self.beta[col] * phi), _VAR_FLOOR)

    def answer_variance(self, worker: str, row: int, col: int) -> float:
        """Answer variance of ``worker`` on cell ``(row, col)`` in original scale."""
        scale = float(self.column_scale[col])
        return self.standardized_answer_variance(worker, row, col) * scale**2

    def row_difficulty(self, row: int) -> float:
        """Estimated difficulty ``alpha_i`` of row ``row``."""
        return float(self.alpha[row])

    def column_difficulty(self, col: int) -> float:
        """Estimated difficulty ``beta_j`` of column ``col``."""
        return float(self.beta[col])


class _Workspace:
    """Vectorised scratch space shared by the E- and M-steps."""

    def __init__(
        self,
        schema: TableSchema,
        indexed: IndexedAnswers,
        standardize_continuous: bool,
    ) -> None:
        self.schema = schema
        self.indexed = indexed
        num_cols = schema.num_columns
        # Per-column standardisation (continuous columns only).
        self.offset = np.zeros(num_cols)
        self.scale = np.ones(num_cols)
        if standardize_continuous:
            for j in schema.continuous_indices:
                mask = (indexed.cols == j) & indexed.is_continuous
                if not np.any(mask):
                    continue
                values = indexed.values[mask]
                self.offset[j] = float(np.mean(values))
                std = float(np.std(values))
                if std > 1e-9:
                    self.scale[j] = std
        # Continuous answers (standardised).
        cont = indexed.is_continuous
        self.cont_rows = indexed.rows[cont]
        self.cont_cols = indexed.cols[cont]
        self.cont_workers = indexed.workers[cont]
        self.cont_values = (
            indexed.values[cont] - self.offset[self.cont_cols]
        ) / self.scale[self.cont_cols]
        # Categorical answers.
        cat = indexed.is_categorical
        self.cat_rows = indexed.rows[cat]
        self.cat_cols = indexed.cols[cat]
        self.cat_workers = indexed.workers[cat]
        self.cat_labels = indexed.label_indices[cat]
        # Cell bookkeeping: continuous cells.
        self.cont_cells, self.cont_cell_of_answer = self._group_cells(
            self.cont_rows, self.cont_cols, num_cols
        )
        self.cat_cells, self.cat_cell_of_answer = self._group_cells(
            self.cat_rows, self.cat_cols, num_cols
        )
        self.cat_label_counts = np.array(
            [schema.columns[c].num_labels for (_r, c) in self.cat_cells], dtype=int
        )
        self.max_labels = int(self.cat_label_counts.max()) if len(self.cat_cells) else 0
        # Weak Gaussian prior for continuous cells (standardised space).
        self.prior_mean = 0.0
        self.prior_variance = 10.0
        # E-step outputs, filled in by TCrowdModel._e_step.
        self.cont_post_mean = np.zeros(len(self.cont_cells))
        self.cont_post_var = np.ones(len(self.cont_cells))
        self.cat_post = (
            np.zeros((len(self.cat_cells), self.max_labels))
            if self.max_labels
            else np.zeros((0, 0))
        )

    @staticmethod
    def _group_cells(rows: np.ndarray, cols: np.ndarray, num_cols: int):
        """Assign a dense id to each distinct ``(row, col)`` pair.

        Cell ids are dense in row-major order; grouping is a single
        ``np.unique`` pass instead of a per-answer Python loop.
        """
        keys = rows * np.int64(num_cols) + cols
        unique_keys, cell_of_answer = np.unique(keys, return_inverse=True)
        cells: List[Tuple[int, int]] = [
            (int(key // num_cols), int(key % num_cols)) for key in unique_keys
        ]
        return cells, cell_of_answer.astype(np.int64)


class TCrowdModel:
    """The T-Crowd truth-inference model (Algorithm 1).

    Parameters
    ----------
    epsilon:
        Width of the quality window in Eq. 2, in standardised units.
    max_iterations:
        Maximum number of EM iterations (the paper reports convergence in
        fewer than 20).
    tolerance:
        EM stops when the largest absolute change of any parameter (in log
        space) falls below this threshold.
    m_step_iterations:
        Number of L-BFGS steps used to maximise Eq. 5 in each M-step.
    difficulty_regularization:
        Strength of the quadratic prior pulling ``log alpha`` and ``log beta``
        toward zero; keeps difficulties anchored for rows/columns with few
        answers.
    phi_regularization:
        (Weaker) quadratic prior on ``log phi``.
    use_difficulty:
        If ``False``, fixes ``alpha_i = beta_j = 1`` (ablation of Section 4.2).
    standardize_continuous:
        Internally z-score continuous columns (recommended; see module docs).
    m_step:
        ``"lbfgs"`` (default) maximises Eq. 5 with bounded L-BFGS over the
        concatenated log-parameters — the reference path every equivalence
        bit is pinned against.  ``"newton"`` runs the ECME-style cyclic
        Newton M-step instead (:meth:`_m_step_newton`): the expected
        log-likelihood is coordinate-wise separable given the other blocks,
        so each ``log alpha_i`` / ``log beta_j`` / ``log phi_u`` gets an
        exact 1-D Newton update from analytic curvature.  Same stationary
        points, fewer EM iterations on cold starts; any non-improving sweep
        falls back to the L-BFGS step, keeping EM monotone.
    """

    def __init__(
        self,
        epsilon: float = 1.0,
        max_iterations: int = 50,
        tolerance: float = 1e-5,
        m_step_iterations: int = 30,
        difficulty_regularization: float = 0.1,
        phi_regularization: float = 1e-3,
        use_difficulty: bool = True,
        standardize_continuous: bool = True,
        seed=None,
        m_step: str = "lbfgs",
    ) -> None:
        require_positive(epsilon, "epsilon")
        require_positive(max_iterations, "max_iterations")
        require_positive(tolerance, "tolerance")
        require_positive(m_step_iterations, "m_step_iterations")
        if m_step not in ("lbfgs", "newton"):
            raise InferenceError(
                f"m_step must be 'lbfgs' or 'newton', got {m_step!r}"
            )
        self.worker_model = WorkerModel(epsilon)
        self.epsilon = float(epsilon)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.m_step_iterations = int(m_step_iterations)
        self.difficulty_regularization = float(difficulty_regularization)
        self.phi_regularization = float(phi_regularization)
        self.use_difficulty = bool(use_difficulty)
        self.standardize_continuous = bool(standardize_continuous)
        self.seed = seed
        self.m_step = str(m_step)
        self.rng = as_generator(seed)

    #: Advertises the ``init=`` keyword of :meth:`fit` to the assigners.
    supports_warm_start = True
    #: Advertises the ``tol=`` / ``max_iter=`` keywords of :meth:`fit`.
    supports_objective_tol = True

    # -- public API ----------------------------------------------------------

    def fit(
        self,
        schema: TableSchema,
        answers: AnswerSet,
        init: Optional[InferenceResult] = None,
        tol: Optional[float] = None,
        max_iter: Optional[int] = None,
    ) -> InferenceResult:
        """Run EM truth inference over ``answers`` and return the result.

        ``init`` warm-starts the EM loop from a previous
        :class:`InferenceResult` (typically the fit over a slightly smaller
        answer set in the online loop of Algorithm 2): the prior
        ``log alpha / log beta / log phi`` replace the zero initialisation,
        with workers unseen by ``init`` starting at the median ``log phi``.
        EM still iterates to the usual convergence criterion, so the result
        matches a cold start up to the optimiser tolerance — only the number
        of iterations (the dominant online cost) shrinks.

        ``tol`` adds objective-based early stopping on top of the parameter
        criterion: EM stops once the expected complete-data log-likelihood
        (:meth:`_objective`, already evaluated every iteration for
        ``objective_trace``) improves by less than ``tol * max(1, |Q|)``
        between successive iterations — the standard relative
        log-likelihood criterion.  The difficulty parameters creep along a
        near-flat likelihood ridge for many iterations, so a warm-started
        refit in the online loop typically stops after two or three
        iterations instead of the fixed budget while decoding to the same
        truth estimates as the full-budget refit (asserted in
        ``tests/test_refit_worker.py``); a cold start, whose early
        iterations still gain whole units of log-likelihood, is unaffected.
        The stop needs two recorded objective values, so at least two
        iterations always run.  ``max_iter`` caps the iteration budget for
        this call only (defaults to ``self.max_iterations``).

        The result's ``stopped_by`` field records which criterion fired:
        ``"parameters"``, ``"objective"`` or ``"max_iterations"``.
        """
        if len(answers) == 0:
            raise InferenceError("Cannot run truth inference on an empty answer set")
        if tol is not None:
            require_positive(tol, "tol")
        if max_iter is not None:
            require_positive(max_iter, "max_iter")
        iteration_budget = self.max_iterations if max_iter is None else int(max_iter)
        indexed = answers.indexed()
        ws = _Workspace(schema, indexed, self.standardize_continuous)

        log_alpha, log_beta, log_phi = self._initial_parameters(
            init, schema, indexed
        )

        objective_trace: List[float] = []
        converged = False
        stopped_by = "max_iterations"
        iteration = 0
        self._e_step(ws, log_alpha, log_beta, log_phi)
        for iteration in range(1, iteration_budget + 1):
            previous = np.concatenate([log_alpha, log_beta, log_phi])
            log_alpha, log_beta, log_phi = self._m_step(
                ws, log_alpha, log_beta, log_phi
            )
            self._e_step(ws, log_alpha, log_beta, log_phi)
            objective_trace.append(
                self._objective(ws, log_alpha, log_beta, log_phi)
            )
            current = np.concatenate([log_alpha, log_beta, log_phi])
            if np.max(np.abs(current - previous)) < self.tolerance:
                converged = True
                stopped_by = "parameters"
                break
            if (
                tol is not None
                and len(objective_trace) >= 2
                and abs(objective_trace[-1] - objective_trace[-2])
                <= tol * max(1.0, abs(objective_trace[-1]))
            ):
                converged = True
                stopped_by = "objective"
                break

        posteriors = self._build_posteriors(ws)
        return InferenceResult(
            schema=schema,
            worker_model=self.worker_model,
            worker_ids=list(indexed.worker_ids),
            alpha=np.exp(log_alpha),
            beta=np.exp(log_beta),
            phi=np.exp(log_phi),
            column_scale=ws.scale.copy(),
            column_offset=ws.offset.copy(),
            posteriors=posteriors,
            objective_trace=objective_trace,
            n_iterations=iteration,
            converged=converged,
            stopped_by=stopped_by,
        )

    # -- initialisation --------------------------------------------------------

    def _initial_parameters(
        self,
        init: Optional[InferenceResult],
        schema: TableSchema,
        indexed: IndexedAnswers,
    ):
        """Zero (cold) or warm-start parameters in log space."""
        num_rows = schema.num_rows
        num_cols = schema.num_columns
        num_workers = indexed.num_workers
        log_alpha = np.zeros(num_rows)
        log_beta = np.zeros(num_cols)
        log_phi = np.zeros(num_workers)
        if init is None:
            return log_alpha, log_beta, log_phi
        if len(init.alpha) == num_rows and len(init.beta) == num_cols:
            log_alpha = np.log(np.maximum(init.alpha, _VAR_FLOOR))
            log_beta = np.log(np.maximum(init.beta, _VAR_FLOOR))
        prior_log_phi = np.log(np.maximum(init.phi, _VAR_FLOOR))
        log_phi.fill(float(np.median(prior_log_phi)))
        for u, worker in enumerate(indexed.worker_ids):
            prior_u = init._worker_index.get(worker)
            if prior_u is not None:
                log_phi[u] = prior_log_phi[prior_u]
        # Stay inside the L-BFGS box of the M-step.
        return (
            np.clip(log_alpha, -10.0, 10.0),
            np.clip(log_beta, -10.0, 10.0),
            np.clip(log_phi, -10.0, 10.0),
        )

    # -- E-step ---------------------------------------------------------------

    def _answer_variances(self, ws, log_alpha, log_beta, log_phi, rows, cols, workers):
        """Per-answer variance ``alpha_i beta_j phi_u`` (standardised space)."""
        log_v = log_alpha[rows] + log_beta[cols] + log_phi[workers]
        return np.maximum(np.exp(log_v), _VAR_FLOOR)

    def _e_step(self, ws: _Workspace, log_alpha, log_beta, log_phi) -> None:
        """Compute per-cell truth posteriors given the current parameters."""
        # Continuous cells: Gaussian posterior per Eq. 4.
        if len(ws.cont_cells):
            variances = self._answer_variances(
                ws, log_alpha, log_beta, log_phi,
                ws.cont_rows, ws.cont_cols, ws.cont_workers,
            )
            weights = 1.0 / variances
            num_cells = len(ws.cont_cells)
            sum_w = np.bincount(
                ws.cont_cell_of_answer, weights=weights, minlength=num_cells
            )
            sum_wa = np.bincount(
                ws.cont_cell_of_answer,
                weights=weights * ws.cont_values,
                minlength=num_cells,
            )
            prior_precision = 1.0 / ws.prior_variance
            post_precision = sum_w + prior_precision
            ws.cont_post_var = 1.0 / post_precision
            ws.cont_post_mean = (
                sum_wa + ws.prior_mean * prior_precision
            ) * ws.cont_post_var
        # Categorical cells: multinomial posterior per Eq. 4.
        if len(ws.cat_cells):
            variances = self._answer_variances(
                ws, log_alpha, log_beta, log_phi,
                ws.cat_rows, ws.cat_cols, ws.cat_workers,
            )
            quality = np.clip(
                safe_erf(self.epsilon / np.sqrt(2.0 * variances)),
                _Q_FLOOR,
                1.0 - _Q_FLOOR,
            )
            label_counts = ws.cat_label_counts[ws.cat_cell_of_answer]
            log_correct = np.log(quality)
            log_wrong = np.log((1.0 - quality) / np.maximum(label_counts - 1, 1))
            num_cells = len(ws.cat_cells)
            base = np.bincount(
                ws.cat_cell_of_answer, weights=log_wrong, minlength=num_cells
            )
            delta = np.bincount(
                ws.cat_cell_of_answer * ws.max_labels + ws.cat_labels,
                weights=log_correct - log_wrong,
                minlength=num_cells * ws.max_labels,
            ).reshape(num_cells, ws.max_labels)
            log_post = base[:, None] + delta
            # Mask out label slots beyond each cell's label-set size.
            label_grid = np.arange(ws.max_labels)[None, :]
            invalid = label_grid >= ws.cat_label_counts[:, None]
            log_post[invalid] = -np.inf
            ws.cat_post = normalize_log_probs(log_post, axis=1)
            ws.cat_post[invalid] = 0.0

    # -- M-step ---------------------------------------------------------------

    def _pack(self, log_alpha, log_beta, log_phi) -> np.ndarray:
        if self.use_difficulty:
            return np.concatenate([log_alpha, log_beta, log_phi])
        return log_phi.copy()

    def _unpack(self, theta, num_rows, num_cols, num_workers):
        if self.use_difficulty:
            log_alpha = theta[:num_rows]
            log_beta = theta[num_rows:num_rows + num_cols]
            log_phi = theta[num_rows + num_cols:]
        else:
            log_alpha = np.zeros(num_rows)
            log_beta = np.zeros(num_cols)
            log_phi = theta
        return log_alpha, log_beta, log_phi

    def _objective_and_grad(self, theta, ws: _Workspace, shapes):
        """Return ``(-Q, -dQ/dtheta)`` for the L-BFGS maximisation of Eq. 5."""
        num_rows, num_cols, num_workers = shapes
        log_alpha, log_beta, log_phi = self._unpack(
            theta, num_rows, num_cols, num_workers
        )
        objective = 0.0
        grad_alpha = np.zeros(num_rows)
        grad_beta = np.zeros(num_cols)
        grad_phi = np.zeros(num_workers)

        # Continuous answers.
        if len(ws.cont_cells):
            variances = self._answer_variances(
                ws, log_alpha, log_beta, log_phi,
                ws.cont_rows, ws.cont_cols, ws.cont_workers,
            )
            residual_sq = (
                ws.cont_values - ws.cont_post_mean[ws.cont_cell_of_answer]
            ) ** 2 + ws.cont_post_var[ws.cont_cell_of_answer]
            objective += float(
                np.sum(
                    -0.5 * np.log(2.0 * np.pi * variances)
                    - residual_sq / (2.0 * variances)
                )
            )
            dq_dv = -0.5 / variances + residual_sq / (2.0 * variances**2)
            contribution = dq_dv * variances  # d/d(log-parameter)
            grad_alpha += np.bincount(
                ws.cont_rows, weights=contribution, minlength=num_rows
            )
            grad_beta += np.bincount(
                ws.cont_cols, weights=contribution, minlength=num_cols
            )
            grad_phi += np.bincount(
                ws.cont_workers, weights=contribution, minlength=num_workers
            )

        # Categorical answers.
        if len(ws.cat_cells):
            variances = self._answer_variances(
                ws, log_alpha, log_beta, log_phi,
                ws.cat_rows, ws.cat_cols, ws.cat_workers,
            )
            u_arg = self.epsilon / np.sqrt(2.0 * variances)
            quality = np.clip(safe_erf(u_arg), _Q_FLOOR, 1.0 - _Q_FLOOR)
            label_counts = ws.cat_label_counts[ws.cat_cell_of_answer]
            p_correct = ws.cat_post[ws.cat_cell_of_answer, ws.cat_labels]
            objective += float(
                np.sum(
                    p_correct * np.log(quality)
                    + (1.0 - p_correct)
                    * (np.log(1.0 - quality) - np.log(np.maximum(label_counts - 1, 1)))
                )
            )
            dq_dv = -(u_arg / (variances * np.sqrt(np.pi))) * np.exp(-u_arg**2)
            dobj_dq = p_correct / quality - (1.0 - p_correct) / (1.0 - quality)
            contribution = dobj_dq * dq_dv * variances
            grad_alpha += np.bincount(
                ws.cat_rows, weights=contribution, minlength=num_rows
            )
            grad_beta += np.bincount(
                ws.cat_cols, weights=contribution, minlength=num_cols
            )
            grad_phi += np.bincount(
                ws.cat_workers, weights=contribution, minlength=num_workers
            )

        # Quadratic priors on the log-parameters (keep them anchored).
        reg_ab = self.difficulty_regularization
        reg_phi = self.phi_regularization
        objective -= 0.5 * reg_ab * float(np.sum(log_alpha**2) + np.sum(log_beta**2))
        objective -= 0.5 * reg_phi * float(np.sum(log_phi**2))
        grad_alpha -= reg_ab * log_alpha
        grad_beta -= reg_ab * log_beta
        grad_phi -= reg_phi * log_phi

        if self.use_difficulty:
            grad = np.concatenate([grad_alpha, grad_beta, grad_phi])
        else:
            grad = grad_phi
        return -objective, -grad

    def _m_step(self, ws: _Workspace, log_alpha, log_beta, log_phi):
        """One M-step, dispatched on the ``m_step`` knob."""
        if self.m_step == "newton":
            return self._m_step_newton(ws, log_alpha, log_beta, log_phi)
        return self._m_step_lbfgs(ws, log_alpha, log_beta, log_phi)

    def _m_step_lbfgs(self, ws: _Workspace, log_alpha, log_beta, log_phi):
        """Maximise Eq. 5 over the (log) parameters by L-BFGS."""
        shapes = (len(log_alpha), len(log_beta), len(log_phi))
        theta0 = self._pack(log_alpha, log_beta, log_phi)
        result = optimize.minimize(
            self._objective_and_grad,
            theta0,
            args=(ws, shapes),
            jac=True,
            method="L-BFGS-B",
            bounds=[(-10.0, 10.0)] * len(theta0),
            options={"maxiter": self.m_step_iterations},
        )
        log_alpha, log_beta, log_phi = self._unpack(result.x, *shapes)
        return self._recenter(log_alpha, log_beta, log_phi)

    def _recenter(self, log_alpha, log_beta, log_phi):
        """Remove the scale ambiguity: the likelihood only sees the products
        ``alpha_i * beta_j * phi_u``, so re-centre alpha and beta at geometric
        mean one and fold the shift into phi."""
        if self.use_difficulty:
            mean_alpha = float(np.mean(log_alpha))
            mean_beta = float(np.mean(log_beta))
            log_alpha = log_alpha - mean_alpha
            log_beta = log_beta - mean_beta
            log_phi = log_phi + mean_alpha + mean_beta
        return log_alpha, log_beta, log_phi

    def _newton_terms(self, ws: _Workspace, log_alpha, log_beta, log_phi):
        """Per-answer first and second derivatives of Eq. 5 in log-variance.

        Every answer touches the parameters only through its own
        log-variance ``lv = log alpha_i + log beta_j + log phi_u``, so the
        per-answer pairs ``(dQ/dlv, d2Q/dlv2)`` aggregate (``np.bincount``)
        into exact per-coordinate gradients *and curvatures* for whichever
        block is being updated — the quantity L-BFGS has to estimate from
        gradient history, computed here in closed form.
        """
        terms = []
        if len(ws.cont_cells):
            variances = self._answer_variances(
                ws, log_alpha, log_beta, log_phi,
                ws.cont_rows, ws.cont_cols, ws.cont_workers,
            )
            residual_sq = (
                ws.cont_values - ws.cont_post_mean[ws.cont_cell_of_answer]
            ) ** 2 + ws.cont_post_var[ws.cont_cell_of_answer]
            half_ratio = residual_sq / (2.0 * variances)
            # Q = -0.5 lv - r^2 / (2 e^lv) + const per answer.
            grad = -0.5 + half_ratio
            curvature = -half_ratio
            terms.append(
                (ws.cont_rows, ws.cont_cols, ws.cont_workers, grad, curvature)
            )
        if len(ws.cat_cells):
            variances = self._answer_variances(
                ws, log_alpha, log_beta, log_phi,
                ws.cat_rows, ws.cat_cols, ws.cat_workers,
            )
            u_arg = self.epsilon / np.sqrt(2.0 * variances)
            quality = np.clip(safe_erf(u_arg), _Q_FLOOR, 1.0 - _Q_FLOOR)
            p_correct = ws.cat_post[ws.cat_cell_of_answer, ws.cat_labels]
            gauss = np.exp(-u_arg**2) / np.sqrt(np.pi)
            # q = erf(u), u = eps / sqrt(2 e^lv)  =>  du/dlv = -u/2.
            dq = -u_arg * gauss
            d2q = 0.5 * u_arg * gauss * (1.0 - 2.0 * u_arg**2)
            dobj_dq = p_correct / quality - (1.0 - p_correct) / (1.0 - quality)
            d2obj_dq2 = (
                -p_correct / quality**2
                - (1.0 - p_correct) / (1.0 - quality) ** 2
            )
            grad = dobj_dq * dq
            curvature = d2obj_dq2 * dq**2 + dobj_dq * d2q
            terms.append(
                (ws.cat_rows, ws.cat_cols, ws.cat_workers, grad, curvature)
            )
        return terms

    def _m_step_newton(self, ws: _Workspace, log_alpha, log_beta, log_phi):
        """ECME-style cyclic Newton maximisation of Eq. 5.

        Given the other two blocks, Eq. 5 separates per coordinate within a
        block, so each sweep applies one exact 1-D Newton update per
        ``log alpha_i``, ``log beta_j`` and ``log phi_u`` in turn
        (Gauss-Seidel order: each block sees the others' fresh values).
        Safeguards keep the ascent honest on the near-flat difficulty
        ridge: curvature is floored away from zero, steps are clipped to
        one log-unit, parameters stay inside the same ±10 box as the
        L-BFGS path, and a sweep that fails to improve the objective
        discards the Newton result for this M-step and falls back to
        :meth:`_m_step_lbfgs` — so EM stays monotone whichever path runs.
        """
        before = (log_alpha.copy(), log_beta.copy(), log_phi.copy())
        objective_before = self._objective(ws, log_alpha, log_beta, log_phi)
        log_alpha = log_alpha.copy()
        log_beta = log_beta.copy()
        log_phi = log_phi.copy()
        blocks = ("alpha", "beta", "phi") if self.use_difficulty else ("phi",)
        # Exact-curvature sweeps converge quadratically near the block
        # optimum, and EM only needs an *improving* M-step (generalized EM),
        # so a handful of sweeps replaces the L-BFGS iteration budget; the
        # near-flat difficulty ridge would otherwise eat the whole budget
        # creeping below the parameter tolerance.
        for _sweep in range(min(self.m_step_iterations, 4)):
            largest_step = 0.0
            for block in blocks:
                terms = self._newton_terms(ws, log_alpha, log_beta, log_phi)
                if block == "alpha":
                    params, reg, pick = (
                        log_alpha, self.difficulty_regularization, 0,
                    )
                elif block == "beta":
                    params, reg, pick = (
                        log_beta, self.difficulty_regularization, 1,
                    )
                else:
                    params, reg, pick = log_phi, self.phi_regularization, 2
                size = len(params)
                grad = np.zeros(size)
                curvature = np.zeros(size)
                for entry in terms:
                    index = entry[pick]
                    grad += np.bincount(index, weights=entry[3], minlength=size)
                    curvature += np.bincount(
                        index, weights=entry[4], minlength=size
                    )
                grad -= reg * params
                curvature -= reg
                # Maximisation: step = grad / (-curvature); floor the
                # curvature and clip the step so flat or locally convex
                # coordinates move a bounded distance uphill.
                step = np.clip(
                    grad / np.maximum(-curvature, 1e-8), -1.0, 1.0
                )
                updated = np.clip(params + step, -10.0, 10.0)
                if size:
                    largest_step = max(
                        largest_step, float(np.max(np.abs(updated - params)))
                    )
                if block == "alpha":
                    log_alpha = updated
                elif block == "beta":
                    log_beta = updated
                else:
                    log_phi = updated
            if largest_step < self.tolerance:
                break
        log_alpha, log_beta, log_phi = self._recenter(
            log_alpha, log_beta, log_phi
        )
        objective_after = self._objective(ws, log_alpha, log_beta, log_phi)
        if not np.isfinite(objective_after) or objective_after < objective_before:
            return self._m_step_lbfgs(ws, *before)
        return log_alpha, log_beta, log_phi

    def _objective(self, ws: _Workspace, log_alpha, log_beta, log_phi) -> float:
        """Expected complete-data log-likelihood at the current parameters."""
        shapes = (len(log_alpha), len(log_beta), len(log_phi))
        theta = self._pack(log_alpha, log_beta, log_phi)
        negative, _grad = self._objective_and_grad(theta, ws, shapes)
        return -float(negative)

    # -- result assembly -------------------------------------------------------

    def _build_posteriors(self, ws: _Workspace) -> Dict[Tuple[int, int], Posterior]:
        """Convert E-step outputs to posterior objects in the original scale."""
        posteriors: Dict[Tuple[int, int], Posterior] = {}
        for cell_id, (row, col) in enumerate(ws.cont_cells):
            scale = float(ws.scale[col])
            offset = float(ws.offset[col])
            posteriors[(row, col)] = GaussianPosterior(
                float(ws.cont_post_mean[cell_id]) * scale + offset,
                max(float(ws.cont_post_var[cell_id]) * scale**2, _VAR_FLOOR),
            )
        for cell_id, (row, col) in enumerate(ws.cat_cells):
            column = ws.schema.columns[col]
            probs = ws.cat_post[cell_id, : column.num_labels]
            posteriors[(row, col)] = CategoricalPosterior(column.labels, probs)
        return posteriors
