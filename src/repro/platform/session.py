"""End-to-end crowdsourcing session (the simulated Section 6.3 protocol).

A :class:`CrowdsourcingSession` wires together a dataset (with its answer
oracle), an assignment policy, a truth-inference method used for evaluation,
a budget and a worker arrival process, and produces a :class:`SessionTrace`
of effectiveness-versus-budget records — the series plotted in Figures 2
and 5 of the paper.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import SessionSpec
from repro.config.factory import build_assigner, build_model, wrap_policy
from repro.core.answers import AnswerSet
from repro.core.assignment import AssignmentPolicy
from repro.datasets.base import CrowdDataset
from repro.metrics import error_rate, mnad
from repro.platform.arrival import WorkerArrivalProcess
from repro.platform.budget import Budget
from repro.platform.scenario import build_scenario
from repro.utils.exceptions import AssignmentError, ConfigurationError
from repro.utils.rng import as_generator

#: Sentinel distinguishing "keyword not passed" from an explicit value, so
#: the legacy-kwargs shim only warns when a deprecated knob is actually used.
_UNSET = object()


@dataclass(frozen=True)
class SessionRecord:
    """Snapshot of effectiveness after a given amount of budget was spent."""

    answers_collected: int
    answers_per_task: float
    error_rate: Optional[float]
    mnad: Optional[float]
    spent_money: float


@dataclass
class SessionTrace:
    """Sequence of :class:`SessionRecord` produced by one session run."""

    policy_name: str
    inference_name: str
    dataset_name: str
    records: List[SessionRecord] = field(default_factory=list)

    def series(self, metric: str) -> List[tuple]:
        """Return ``(answers_per_task, value)`` pairs for ``metric``."""
        return [
            (record.answers_per_task, getattr(record, metric))
            for record in self.records
            if getattr(record, metric) is not None
        ]

    @property
    def final(self) -> SessionRecord:
        """The last recorded snapshot."""
        if not self.records:
            raise ConfigurationError("The session produced no records")
        return self.records[-1]

    def answers_to_reach(self, metric: str, target: float) -> Optional[float]:
        """Smallest answers-per-task at which ``metric`` dropped to ``target``.

        Returns ``None`` if the target was never reached — the convergence
        statistic the paper quotes ("converges ... before the average number
        of answers per task is 3").
        """
        for record in self.records:
            value = getattr(record, metric)
            if value is not None and value <= target:
                return record.answers_per_task
        return None


class CrowdsourcingSession:
    """Simulate an end-to-end crowdsourcing run of one assignment policy.

    The canonical way to configure a session is a
    :class:`~repro.config.SessionSpec` — either through
    :meth:`from_spec` (which also builds the policy and evaluation
    inference from the spec) or by passing ``spec=`` alongside an
    explicit policy.  The serving mode (``spec.serving``: sharded /
    async-refit / composed), the durability section and the simulation
    budget are all read from the spec; the wrapper-selection logic is the
    shared factory in :mod:`repro.config.factory`, the same one the HTTP
    service uses.

    Parameters
    ----------
    dataset:
        A simulated dataset carrying an :class:`AnswerOracle` and a worker
        pool (all loaders in :mod:`repro.datasets` provide both).
    policy:
        The assignment policy under test (the *base* policy — serving
        wrappers are applied from ``spec.serving``).
    inference:
        Object with ``fit(schema, answers)`` used to evaluate effectiveness
        at the checkpoints (each system is evaluated with its own inference,
        as in the paper).
    spec:
        The session's :class:`~repro.config.SessionSpec`.  Mutually
        exclusive with the legacy keyword surface below.
    target_answers_per_task / initial_answers_per_task / batch_size /
    eval_every_answers_per_task / seed / max_steps:
        The simulation budget (see
        :class:`~repro.config.SimulationSpec` for the field semantics).
        Convenience aliases for ``spec.simulation``; accepted without a
        deprecation warning because they configure the run, not the
        serving architecture.
    shards / shard_workers / async_refit / max_stale_answers /
    durable_dir / snapshot_every_answers / wal_fsync:
        **Deprecated** legacy serving/durability knobs, adapted through
        :meth:`SessionSpec.from_legacy_kwargs` with a
        ``DeprecationWarning``.  Use ``spec=`` (or :meth:`from_spec`)
        instead; the field semantics — including the unified
        ``max_stale_answers`` default of ``0`` (blocking) — are documented
        once, on :class:`~repro.config.ServingSpec` and
        :class:`~repro.config.DurabilitySpec`.
    """

    #: Legacy serving/durability keywords routed through the deprecation
    #: shim (everything the spec's serving + durability sections cover).
    _LEGACY_KWARGS = (
        "shards",
        "shard_workers",
        "async_refit",
        "max_stale_answers",
        "durable_dir",
        "snapshot_every_answers",
        "wal_fsync",
    )

    def __init__(
        self,
        dataset: CrowdDataset,
        policy: AssignmentPolicy,
        inference,
        target_answers_per_task=_UNSET,
        initial_answers_per_task=_UNSET,
        batch_size=_UNSET,
        eval_every_answers_per_task=_UNSET,
        seed=_UNSET,
        max_steps=_UNSET,
        shards=_UNSET,
        shard_workers=_UNSET,
        async_refit=_UNSET,
        max_stale_answers=_UNSET,
        durable_dir=_UNSET,
        snapshot_every_answers=_UNSET,
        wal_fsync=_UNSET,
        spec: Optional[SessionSpec] = None,
    ) -> None:
        if dataset.oracle is None or dataset.worker_pool is None:
            raise ConfigurationError(
                "The dataset must carry an AnswerOracle and a WorkerPool to "
                "simulate a live session"
            )
        legacy = {
            name: value
            for name, value in (
                ("target_answers_per_task", target_answers_per_task),
                ("initial_answers_per_task", initial_answers_per_task),
                ("batch_size", batch_size),
                ("eval_every_answers_per_task", eval_every_answers_per_task),
                ("seed", seed),
                ("max_steps", max_steps),
                ("shards", shards),
                ("shard_workers", shard_workers),
                ("async_refit", async_refit),
                ("max_stale_answers", max_stale_answers),
                ("durable_dir", durable_dir),
                ("snapshot_every_answers", snapshot_every_answers),
                ("wal_fsync", wal_fsync),
            )
            if value is not _UNSET
        }
        if spec is not None and legacy:
            raise ConfigurationError(
                "Pass either spec= or the legacy keyword arguments, not "
                f"both (got spec and {sorted(legacy)})"
            )
        if spec is None:
            deprecated = sorted(set(legacy) & set(self._LEGACY_KWARGS))
            if deprecated:
                warnings.warn(
                    "The CrowdsourcingSession serving/durability keyword "
                    f"arguments {deprecated} are deprecated; build a "
                    "SessionSpec (repro.config) and pass spec= or use "
                    "CrowdsourcingSession.from_spec instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
            spec = SessionSpec.from_legacy_kwargs(**legacy)
        self.spec = spec
        self._raw_seed = seed if seed is not _UNSET else spec.simulation.seed
        self._owned_policy = None
        wrapped = wrap_policy(policy, spec.serving)
        if wrapped is not policy:
            self._owned_policy = wrapped
        self.dataset = dataset
        self.policy = wrapped
        self.inference = inference
        simulation = spec.simulation
        durability = spec.durability
        self.target_answers_per_task = simulation.target_answers_per_task
        self.initial_answers_per_task = simulation.initial_answers_per_task
        self.batch_size = simulation.batch_size or dataset.schema.num_columns
        self.eval_every = simulation.eval_every_answers_per_task
        self.max_steps = simulation.max_steps
        self.durable_dir = durability.durable_dir
        self.snapshot_every_answers = durability.snapshot_every_answers
        self.wal_fsync = durability.wal_fsync
        self.durable = None
        self._rng = as_generator(self._raw_seed)
        # Scenario perturbations (spam / drift / churn) derive from
        # hash-based sub-seeds, never from self._rng — with every knob at
        # its default this serves the dataset's own pool and oracle and
        # the arrival-seed draw below stays the only pre-loop consumption,
        # keeping seeded traces byte-for-byte unchanged.
        scenario = build_scenario(dataset, simulation, self._raw_seed)
        self.worker_pool = scenario.pool
        self.oracle = scenario.oracle
        self.scenario = scenario
        self.arrival = WorkerArrivalProcess(
            self.worker_pool,
            seed=self._rng.integers(0, 2**31 - 1),
            churn_rate=simulation.worker_churn_rate,
        )

    @classmethod
    def from_spec(
        cls,
        dataset: CrowdDataset,
        spec: SessionSpec,
        inference=None,
        policy: Optional[AssignmentPolicy] = None,
    ) -> "CrowdsourcingSession":
        """Build a session entirely from a :class:`~repro.config.SessionSpec`.

        ``policy`` defaults to the :class:`~repro.core.assignment.TCrowdAssigner`
        the spec's policy section describes (serving wrappers are applied
        either way); ``inference`` defaults to a
        :class:`~repro.core.inference.TCrowdModel` built from
        ``spec.policy.model``.  This is the exactly-one-way entry point —
        the same spec document drives the benchmarks and the HTTP service.
        """
        if policy is None:
            policy = build_assigner(dataset.schema, spec)
        if inference is None:
            inference = build_model(spec.policy.model)
        return cls(dataset, policy, inference, spec=spec)

    # -- helpers -----------------------------------------------------------------

    def _seed_answers(self, answers: AnswerSet) -> AnswerSet:
        """Collect the initial answers (Algorithm 2, line 1): one HIT per row."""
        schema = self.dataset.schema
        pool = self.worker_pool
        worker_ids = pool.worker_ids()
        activities = pool.activities()
        for row in range(schema.num_rows):
            chosen = self._rng.choice(
                len(worker_ids),
                size=self.initial_answers_per_task,
                replace=False,
                p=activities,
            )
            for index in chosen:
                worker = worker_ids[int(index)]
                items = [
                    (row, col, self.oracle.answer(worker, row, col, self._rng))
                    for col in range(schema.num_columns)
                ]
                if self.durable is not None:
                    self.durable.append_answers(worker, items, observe=False)
                else:
                    for r, c, value in items:
                        answers.add_answer(worker, r, c, value)
        return answers

    def _evaluate(self, answers: AnswerSet, budget: Budget, trace: SessionTrace) -> None:
        schema = self.dataset.schema
        result = self.inference.fit(schema, answers)
        err = (
            error_rate(result, self.dataset)
            if schema.categorical_indices
            else None
        )
        distance = (
            mnad(result, self.dataset) if schema.continuous_indices else None
        )
        trace.records.append(
            SessionRecord(
                answers_collected=len(answers),
                answers_per_task=answers.mean_answers_per_cell(),
                error_rate=err,
                mnad=distance,
                spent_money=budget.spent_money,
            )
        )

    # -- main loop ----------------------------------------------------------------

    def run(self) -> SessionTrace:
        """Run the session until the budget is exhausted; return the trace."""
        try:
            return self._run()
        finally:
            # The session owns the wrapper it built (sharded scoring pool or
            # async refit worker): release its threads.  Selects after
            # close() still work — sharded scoring just runs sequentially,
            # and the async engine only loses its background worker.
            if self.durable is not None:
                self.durable.close()
            if self._owned_policy is not None:
                self._owned_policy.close()

    def _run(self) -> SessionTrace:
        schema = self.dataset.schema
        if self.durable_dir is not None:
            from repro.config.factory import build_durable_session

            # fresh=True: resuming over an old log would corrupt the
            # experiment, unlike the service's recover-on-attach semantics.
            self.durable = build_durable_session(
                schema, self.policy, self.spec, fresh=True
            )
            answers = self.durable.answers
        else:
            answers = AnswerSet(schema)
        self._seed_answers(answers)
        extra_answers = int(
            round(
                (self.target_answers_per_task - self.initial_answers_per_task)
                * schema.num_cells
            )
        )
        budget = Budget(total_answers=max(extra_answers, 1))
        trace = SessionTrace(
            policy_name=self.policy.name,
            inference_name=getattr(self.inference, "name", type(self.inference).__name__),
            dataset_name=self.dataset.name,
        )
        self._evaluate(answers, budget, trace)
        next_checkpoint = answers.mean_answers_per_cell() + self.eval_every

        steps = 0
        consecutive_failures = 0
        failure_limit = 10 * len(self.worker_pool)
        while not budget.exhausted:
            # The engine's incremental state knows when every cell reached its
            # answer cap; stop immediately instead of drawing workers until
            # the consecutive-failure limit trips (the recorded trace is
            # identical either way — no further answer could be collected).
            state = self.policy.session_state(answers)
            if state is not None and not state.has_open_cells():
                break
            if self.max_steps is not None and steps >= self.max_steps:
                break
            steps += 1
            worker = self.arrival.next_worker()
            batch = min(self.batch_size, budget.remaining_answers)
            try:
                if self.durable is not None:
                    assignment = self.durable.select(worker, k=batch)
                else:
                    assignment = self.policy.select(worker, answers, k=batch)
            except AssignmentError:
                # This worker has no candidate cells left; try another one,
                # but give up if no worker can be assigned anything anymore.
                consecutive_failures += 1
                if consecutive_failures >= failure_limit:
                    break
                continue
            consecutive_failures = 0
            items = [
                (row, col, self.oracle.answer(worker, row, col, self._rng))
                for row, col in assignment.cells
            ]
            if self.durable is not None:
                self.durable.append_answers(worker, items)
            else:
                for row, col, value in items:
                    answers.add_answer(worker, row, col, value)
            budget.charge(len(assignment.cells))
            if self.scenario.drift is not None:
                self.scenario.drift.advance()
            if self.durable is None:
                self.policy.observe(answers)
            if answers.mean_answers_per_cell() >= next_checkpoint or budget.exhausted:
                self._evaluate(answers, budget, trace)
                next_checkpoint += self.eval_every
        return trace
