"""Scenario perturbations of a simulated crowd (churn, spam, drift).

The paper's evaluation assumes a *clean* crowd: the long-tail worker pool
of :mod:`repro.datasets.workers`, stationary task difficulty, every worker
available for the whole run.  Real platforms violate all three, and the
strategy benchmark needs those violations to be reproducible: given the
same :class:`~repro.config.SimulationSpec` the perturbed session must
replay answer for answer.

Three knobs on :class:`~repro.config.SimulationSpec` switch the
perturbations on (all default off, in which case this module touches
nothing — the session serves the dataset's own pool and oracle and the
golden traces are byte-for-byte unchanged):

``spam_fraction`` / ``spam_contamination``
    A deterministic subset of workers turns adversarial: their
    contamination (probability of answering uniformly at random) is
    raised to at least ``spam_contamination``.  The subset is drawn from
    a hash-derived sub-seed, so it is a pure function of
    ``(simulation.seed, fraction)`` — independent of the session's other
    randomness.
``worker_churn_rate``
    Handled by :class:`~repro.platform.arrival.WorkerArrivalProcess`:
    only a sampled *active* subset of the pool picks up HITs, and each
    arrival step re-samples that subset with the given probability
    (workers leave mid-session; churned-out workers can re-arrive after
    a later churn event).
``difficulty_drift``
    Row difficulty inflates multiplicatively as the session progresses
    (``exp(rate * steps)``, capped), modelling task batches getting
    harder over time.  Deterministic — no extra RNG draws.

All sub-seeds derive from :func:`scenario_seed` (domain-separated
blake2b), never from the session's own generator: switching a knob on
must not shift the arrival or oracle draw sequence of the *other*
components.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import FrozenSet, Optional, Tuple

import numpy as np

from repro.config.spec import SimulationSpec
from repro.datasets.workers import AnswerOracle, WorkerPool

#: blake2b ``person`` domain separator (max 16 bytes).
_DOMAIN = b"repro.scenario"

#: Multiplicative cap on drifted row difficulty, so long sessions degrade
#: instead of diverging.
DRIFT_CAP = 10.0


def scenario_seed(seed, tag: str) -> int:
    """Deterministic sub-seed for one scenario component.

    A pure function of ``(seed, tag)`` via domain-separated blake2b —
    scenario components never consume draws from the session generator,
    so enabling one knob cannot shift the randomness of another.
    """
    digest = hashlib.blake2b(
        f"{'none' if seed is None else seed}:{tag}".encode("utf-8"),
        digest_size=4,
        person=_DOMAIN,
    ).digest()
    return int.from_bytes(digest, "big") % (2**31)


def spam_pool(
    pool: WorkerPool,
    fraction: float,
    contamination: float,
    seed,
) -> Tuple[WorkerPool, FrozenSet[str]]:
    """A pool with ``round(fraction * len(pool))`` workers turned spammy.

    The chosen workers' contamination is raised to at least
    ``contamination`` (never lowered — a worker who already spams harder
    keeps doing so).  Returns the (possibly new) pool and the ids of the
    converted workers; with an empty selection the *original* pool object
    is returned untouched.
    """
    count = min(int(round(fraction * len(pool))), len(pool))
    if count <= 0:
        return pool, frozenset()
    rng = np.random.default_rng(scenario_seed(seed, f"spam:{fraction}"))
    ids = pool.worker_ids()
    chosen = frozenset(
        ids[int(index)]
        for index in rng.choice(len(ids), size=count, replace=False)
    )
    workers = [
        dataclasses.replace(
            worker, contamination=max(worker.contamination, float(contamination))
        )
        if worker.worker_id in chosen
        else worker
        for worker in pool
    ]
    return WorkerPool(workers), chosen


@dataclasses.dataclass
class DifficultyDrift:
    """Multiplicative row-difficulty drift, advanced once per session step.

    Owns a copy of the oracle's base difficulty and re-derives the current
    array as ``base * min(exp(rate * steps), DRIFT_CAP)`` — a pure
    function of the step count, so a replayed session drifts identically.
    """

    oracle: AnswerOracle
    rate: float
    steps: int = 0

    def __post_init__(self) -> None:
        self._base = np.array(self.oracle.row_difficulty, dtype=float, copy=True)

    def advance(self, steps: int = 1) -> None:
        """Advance the drift clock and re-derive the oracle's difficulty."""
        self.steps += int(steps)
        factor = min(float(np.exp(self.rate * self.steps)), DRIFT_CAP)
        self.oracle.row_difficulty = self._base * factor


@dataclasses.dataclass
class SessionScenario:
    """The (possibly perturbed) crowd one session run serves.

    ``pool`` and ``oracle`` are the dataset's own objects when every knob
    is off; otherwise they are session-owned derivations (the dataset is
    never mutated).  ``drift`` is ``None`` unless difficulty drift is on.
    """

    pool: WorkerPool
    oracle: AnswerOracle
    drift: Optional[DifficultyDrift] = None
    spam_worker_ids: FrozenSet[str] = frozenset()


def build_scenario(dataset, simulation: SimulationSpec, seed) -> SessionScenario:
    """Derive the scenario a :class:`~repro.config.SimulationSpec` asks for.

    ``seed`` is the session's resolved seed (it may override
    ``simulation.seed``); scenario sub-seeds derive from it so the same
    resolved session replays the same perturbations.
    """
    pool = dataset.worker_pool
    oracle = dataset.oracle
    spam_ids: FrozenSet[str] = frozenset()
    if simulation.spam_fraction > 0.0:
        pool, spam_ids = spam_pool(
            pool, simulation.spam_fraction, simulation.spam_contamination, seed
        )
    drifting = simulation.difficulty_drift > 0.0
    if pool is not dataset.worker_pool or drifting:
        # A session-owned oracle twin: drift rebinds row_difficulty on it
        # and the spam pool replaces its worker table, neither touching
        # the dataset's oracle (the familiarity/bias caches are shared —
        # they are deterministic given the oracle seed either way).
        oracle = dataclasses.replace(oracle, pool=pool)
    drift = DifficultyDrift(oracle, simulation.difficulty_drift) if drifting else None
    return SessionScenario(
        pool=pool, oracle=oracle, drift=drift, spam_worker_ids=spam_ids
    )
