"""Datasets: container, synthetic generator, simulated real datasets, noise.

The three "real" datasets of the paper (Celebrity, Restaurant, Emotion) are
simulated with the published shapes and answer redundancies (see Table 6 and
DESIGN.md §4 for the substitution rationale); the synthetic generator follows
Section 6.5.1 and the noise injection follows Section 6.5.2.
"""

from repro.datasets.base import CrowdDataset
from repro.datasets.celebrity import celebrity_schema, load_celebrity
from repro.datasets.emotion import emotion_schema, load_emotion
from repro.datasets.noise import add_noise
from repro.datasets.restaurant import load_restaurant, restaurant_schema
from repro.datasets.synthetic import build_dataset, draw_difficulties, generate_synthetic
from repro.datasets.workers import AnswerOracle, SimulatedWorker, WorkerPool

__all__ = [
    "AnswerOracle",
    "CrowdDataset",
    "SimulatedWorker",
    "WorkerPool",
    "add_noise",
    "build_dataset",
    "celebrity_schema",
    "draw_difficulties",
    "emotion_schema",
    "generate_synthetic",
    "load_celebrity",
    "load_emotion",
    "load_restaurant",
    "restaurant_schema",
]


def load_all_real(seed: int = 7) -> list:
    """Load the three simulated real datasets (Celebrity, Restaurant, Emotion)."""
    return [
        load_celebrity(seed=seed),
        load_restaurant(seed=seed + 1),
        load_emotion(seed=seed + 2),
    ]
