"""Tests for the effectiveness metrics (repro.metrics)."""

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.schema import Column, TableSchema
from repro.datasets.base import CrowdDataset
from repro.metrics import as_estimates, column_rmse, error_rate, mnad, pearson_correlation
from repro.utils.exceptions import DataError


@pytest.fixture()
def toy_dataset():
    schema = TableSchema.build(
        "e",
        [
            Column.categorical("cat", ["a", "b"]),
            Column.continuous("x", (0, 10)),
            Column.continuous("y", (0, 100)),
        ],
        4,
    )
    truth = {}
    for i in range(4):
        truth[(i, 0)] = "a" if i % 2 == 0 else "b"
        truth[(i, 1)] = float(i)
        truth[(i, 2)] = float(10 * i)
    answers = AnswerSet(schema)
    for i in range(4):
        answers.add_answer("w1", i, 0, truth[(i, 0)])
        answers.add_answer("w2", i, 0, "a")
        answers.add_answer("w1", i, 1, truth[(i, 1)] + 0.5)
        answers.add_answer("w2", i, 1, truth[(i, 1)] * 2.0)
        answers.add_answer("w1", i, 2, truth[(i, 2)] - 5.0)
    return CrowdDataset("toy", schema, truth, answers)


class TestAsEstimates:
    def test_accepts_mapping(self, toy_dataset):
        estimates = {(0, 0): "a"}
        assert as_estimates(estimates, toy_dataset) == estimates

    def test_accepts_objects_with_estimates_method(self, toy_dataset):
        class Stub:
            def estimates(self):
                return {(0, 0): "a"}

        assert as_estimates(Stub(), toy_dataset) == {(0, 0): "a"}

    def test_rejects_unknown_types(self, toy_dataset):
        with pytest.raises(DataError):
            as_estimates(42, toy_dataset)


class TestErrorRate:
    def test_perfect_estimates(self, toy_dataset):
        estimates = {cell: value for cell, value in toy_dataset.ground_truth.items()}
        assert error_rate(estimates, toy_dataset) == 0.0

    def test_half_wrong(self, toy_dataset):
        estimates = dict(toy_dataset.ground_truth)
        estimates[(1, 0)] = "a"   # truth is "b"
        estimates[(3, 0)] = "a"   # truth is "b"
        assert error_rate(estimates, toy_dataset) == pytest.approx(0.5)

    def test_missing_estimates_count_as_errors(self, toy_dataset):
        assert error_rate({}, toy_dataset) == 1.0

    def test_column_restriction(self, toy_dataset):
        estimates = dict(toy_dataset.ground_truth)
        assert error_rate(estimates, toy_dataset, columns=[0]) == 0.0

    def test_requires_categorical_cells(self, toy_dataset):
        with pytest.raises(DataError):
            error_rate({}, toy_dataset, columns=[1])


class TestColumnRmseAndMnad:
    def test_column_rmse_exact(self, toy_dataset):
        estimates = dict(toy_dataset.ground_truth)
        assert column_rmse(estimates, toy_dataset, 1) == pytest.approx(0.0)
        estimates[(0, 1)] = toy_dataset.ground_truth[(0, 1)] + 2.0
        assert column_rmse(estimates, toy_dataset, 1) == pytest.approx(np.sqrt(4.0 / 4))

    def test_column_rmse_rejects_categorical(self, toy_dataset):
        with pytest.raises(DataError):
            column_rmse({}, toy_dataset, 0)

    def test_mnad_zero_for_perfect_estimates(self, toy_dataset):
        assert mnad(dict(toy_dataset.ground_truth), toy_dataset) == pytest.approx(0.0)

    def test_mnad_scale_invariance_via_normalisation(self, toy_dataset):
        # An identical *relative* error on both continuous columns yields the
        # same normalised contribution despite the 10x scale difference.
        estimates = dict(toy_dataset.ground_truth)
        for i in range(4):
            estimates[(i, 1)] = toy_dataset.ground_truth[(i, 1)] + 1.0
            estimates[(i, 2)] = toy_dataset.ground_truth[(i, 2)] + 10.0
        per_column_1 = mnad(estimates, toy_dataset, columns=[1], normalize_by="truth")
        per_column_2 = mnad(estimates, toy_dataset, columns=[2], normalize_by="truth")
        assert per_column_1 == pytest.approx(per_column_2)

    def test_mnad_normalize_by_answers_differs_from_truth(self, toy_dataset):
        estimates = dict(toy_dataset.ground_truth)
        estimates[(0, 1)] = 99.0
        by_answers = mnad(estimates, toy_dataset, normalize_by="answers")
        by_truth = mnad(estimates, toy_dataset, normalize_by="truth")
        assert by_answers != pytest.approx(by_truth)

    def test_mnad_invalid_normaliser(self, toy_dataset):
        with pytest.raises(DataError):
            mnad({}, toy_dataset, normalize_by="bogus")

    def test_mnad_requires_continuous_cells(self, toy_dataset):
        with pytest.raises(DataError):
            mnad({}, toy_dataset, columns=[0])

    def test_missing_continuous_estimates_penalised(self, toy_dataset):
        complete = mnad(dict(toy_dataset.ground_truth), toy_dataset)
        assert mnad({}, toy_dataset) > complete


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_anti_correlation(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_degenerate_vector_returns_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            pearson_correlation([1, 2], [1, 2, 3])


class TestEffectivenessEdgeCases:
    def test_error_rate_rejects_empty_column_selection(self, toy_dataset):
        estimates = {cell: truth for cell, truth in toy_dataset.ground_truth.items()}
        # Restricting to continuous columns leaves no categorical cell.
        with pytest.raises(DataError):
            error_rate(estimates, toy_dataset, columns=[1, 2])
        with pytest.raises(DataError):
            error_rate(estimates, toy_dataset, columns=[])

    def test_mnad_rejects_empty_column_selection(self, toy_dataset):
        estimates = {cell: truth for cell, truth in toy_dataset.ground_truth.items()}
        # Restricting to the categorical column leaves no continuous cell.
        with pytest.raises(DataError):
            mnad(estimates, toy_dataset, columns=[0])
        with pytest.raises(DataError):
            mnad(estimates, toy_dataset, columns=[])

    def _single_worker_dataset(self, answers_in_continuous=1):
        schema = TableSchema.build(
            "s",
            [
                Column.categorical("cat", ["a", "b"]),
                Column.continuous("x", (0.0, 10.0)),
            ],
            3,
        )
        truth = {}
        for i in range(3):
            truth[(i, 0)] = "a"
            truth[(i, 1)] = float(i + 1)
        answers = AnswerSet(schema)
        for i in range(3):
            answers.add_answer("solo", i, 0, "a")
        for i in range(answers_in_continuous):
            answers.add_answer("solo", i, 1, truth[(i, 1)] + 1.0)
        return CrowdDataset("single-worker", schema, truth, answers)

    def test_single_answer_column_falls_back_to_truth_std(self):
        """With fewer than two collected answers the 'answers' normaliser
        cannot estimate a spread and must fall back to the truth std."""
        dataset = self._single_worker_dataset(answers_in_continuous=1)
        estimates = {cell: truth for cell, truth in dataset.ground_truth.items()}
        by_answers = mnad(estimates, dataset, normalize_by="answers")
        by_truth = mnad(estimates, dataset, normalize_by="truth")
        assert by_answers == pytest.approx(by_truth)

    def test_single_worker_dataset_metrics_are_finite(self):
        dataset = self._single_worker_dataset(answers_in_continuous=3)
        estimates = {cell: truth for cell, truth in dataset.ground_truth.items()}
        assert error_rate(estimates, dataset) == 0.0
        assert np.isfinite(mnad(estimates, dataset))
        # Degrade one categorical estimate: the error rate moves by 1/3.
        estimates[(0, 0)] = "b"
        assert error_rate(estimates, dataset) == pytest.approx(1 / 3)
