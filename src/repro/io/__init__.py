"""Persistence: CSV and JSON import/export for schemas, answers and results.

The paper's pipeline starts from answer files collected on AMT; this package
provides the equivalent interchange formats so the library can be used with
externally collected data:

* CSV — one answer per line (``worker, row, column, value``), plus ground
  truth and estimate exports in the same cell-per-line layout
  (:mod:`repro.io.csv_io`).
* JSON — schema and full-dataset documents, and a serialisable summary of an
  inference result (:mod:`repro.io.json_io`).
"""

from repro.io.csv_io import (
    read_answers_csv,
    read_ground_truth_csv,
    write_answers_csv,
    write_estimates_csv,
    write_ground_truth_csv,
)
from repro.io.json_io import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset_json,
    load_schema_json,
    result_to_dict,
    save_dataset_json,
    save_schema_json,
    schema_from_dict,
    schema_to_dict,
)

__all__ = [
    "dataset_from_dict",
    "dataset_to_dict",
    "load_dataset_json",
    "load_schema_json",
    "read_answers_csv",
    "read_ground_truth_csv",
    "result_to_dict",
    "save_dataset_json",
    "save_schema_json",
    "schema_from_dict",
    "schema_to_dict",
    "write_answers_csv",
    "write_estimates_csv",
    "write_ground_truth_csv",
]
