"""Tests for the effectiveness metrics (repro.metrics)."""

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.schema import Column, TableSchema
from repro.datasets.base import CrowdDataset
from repro.metrics import as_estimates, column_rmse, error_rate, mnad, pearson_correlation
from repro.utils.exceptions import DataError


@pytest.fixture()
def toy_dataset():
    schema = TableSchema.build(
        "e",
        [
            Column.categorical("cat", ["a", "b"]),
            Column.continuous("x", (0, 10)),
            Column.continuous("y", (0, 100)),
        ],
        4,
    )
    truth = {}
    for i in range(4):
        truth[(i, 0)] = "a" if i % 2 == 0 else "b"
        truth[(i, 1)] = float(i)
        truth[(i, 2)] = float(10 * i)
    answers = AnswerSet(schema)
    for i in range(4):
        answers.add_answer("w1", i, 0, truth[(i, 0)])
        answers.add_answer("w2", i, 0, "a")
        answers.add_answer("w1", i, 1, truth[(i, 1)] + 0.5)
        answers.add_answer("w2", i, 1, truth[(i, 1)] * 2.0)
        answers.add_answer("w1", i, 2, truth[(i, 2)] - 5.0)
    return CrowdDataset("toy", schema, truth, answers)


class TestAsEstimates:
    def test_accepts_mapping(self, toy_dataset):
        estimates = {(0, 0): "a"}
        assert as_estimates(estimates, toy_dataset) == estimates

    def test_accepts_objects_with_estimates_method(self, toy_dataset):
        class Stub:
            def estimates(self):
                return {(0, 0): "a"}

        assert as_estimates(Stub(), toy_dataset) == {(0, 0): "a"}

    def test_rejects_unknown_types(self, toy_dataset):
        with pytest.raises(DataError):
            as_estimates(42, toy_dataset)


class TestErrorRate:
    def test_perfect_estimates(self, toy_dataset):
        estimates = {cell: value for cell, value in toy_dataset.ground_truth.items()}
        assert error_rate(estimates, toy_dataset) == 0.0

    def test_half_wrong(self, toy_dataset):
        estimates = dict(toy_dataset.ground_truth)
        estimates[(1, 0)] = "a"   # truth is "b"
        estimates[(3, 0)] = "a"   # truth is "b"
        assert error_rate(estimates, toy_dataset) == pytest.approx(0.5)

    def test_missing_estimates_count_as_errors(self, toy_dataset):
        assert error_rate({}, toy_dataset) == 1.0

    def test_column_restriction(self, toy_dataset):
        estimates = dict(toy_dataset.ground_truth)
        assert error_rate(estimates, toy_dataset, columns=[0]) == 0.0

    def test_requires_categorical_cells(self, toy_dataset):
        with pytest.raises(DataError):
            error_rate({}, toy_dataset, columns=[1])


class TestColumnRmseAndMnad:
    def test_column_rmse_exact(self, toy_dataset):
        estimates = dict(toy_dataset.ground_truth)
        assert column_rmse(estimates, toy_dataset, 1) == pytest.approx(0.0)
        estimates[(0, 1)] = toy_dataset.ground_truth[(0, 1)] + 2.0
        assert column_rmse(estimates, toy_dataset, 1) == pytest.approx(np.sqrt(4.0 / 4))

    def test_column_rmse_rejects_categorical(self, toy_dataset):
        with pytest.raises(DataError):
            column_rmse({}, toy_dataset, 0)

    def test_mnad_zero_for_perfect_estimates(self, toy_dataset):
        assert mnad(dict(toy_dataset.ground_truth), toy_dataset) == pytest.approx(0.0)

    def test_mnad_scale_invariance_via_normalisation(self, toy_dataset):
        # An identical *relative* error on both continuous columns yields the
        # same normalised contribution despite the 10x scale difference.
        estimates = dict(toy_dataset.ground_truth)
        for i in range(4):
            estimates[(i, 1)] = toy_dataset.ground_truth[(i, 1)] + 1.0
            estimates[(i, 2)] = toy_dataset.ground_truth[(i, 2)] + 10.0
        per_column_1 = mnad(estimates, toy_dataset, columns=[1], normalize_by="truth")
        per_column_2 = mnad(estimates, toy_dataset, columns=[2], normalize_by="truth")
        assert per_column_1 == pytest.approx(per_column_2)

    def test_mnad_normalize_by_answers_differs_from_truth(self, toy_dataset):
        estimates = dict(toy_dataset.ground_truth)
        estimates[(0, 1)] = 99.0
        by_answers = mnad(estimates, toy_dataset, normalize_by="answers")
        by_truth = mnad(estimates, toy_dataset, normalize_by="truth")
        assert by_answers != pytest.approx(by_truth)

    def test_mnad_invalid_normaliser(self, toy_dataset):
        with pytest.raises(DataError):
            mnad({}, toy_dataset, normalize_by="bogus")

    def test_mnad_requires_continuous_cells(self, toy_dataset):
        with pytest.raises(DataError):
            mnad({}, toy_dataset, columns=[0])

    def test_missing_continuous_estimates_penalised(self, toy_dataset):
        complete = mnad(dict(toy_dataset.ground_truth), toy_dataset)
        assert mnad({}, toy_dataset) > complete


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_anti_correlation(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_degenerate_vector_returns_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            pearson_correlation([1, 2], [1, 2, 3])
