"""Quickstart: infer truths for a small crowdsourced table with T-Crowd.

Builds a tiny celebrity-style table by hand (the example from the paper's
introduction), adds a few worker answers, and runs T-Crowd truth inference.

Run with::

    python examples/quickstart.py
"""

from repro import Answer, AnswerSet, Column, TableSchema, TCrowdModel


def build_schema() -> TableSchema:
    """The celebrity table of the paper's Table 1 (simplified)."""
    columns = (
        Column.categorical("nationality", ("United States", "China", "Great Britain", "Canada")),
        Column.continuous("age", (18.0, 90.0)),
        Column.continuous("height", (150.0, 200.0)),
    )
    return TableSchema.build("picture", columns, num_rows=3)


def collect_answers(schema: TableSchema) -> AnswerSet:
    """Answers of three workers, in the spirit of the paper's Table 2."""
    answers = AnswerSet(schema)
    rows = [
        # (worker, row, nationality, age, height_cm)
        ("u1", 0, "United States", 39, 175.0),
        ("u1", 1, "China", 47, 168.0),
        ("u1", 2, "Great Britain", 49, 185.0),
        ("u2", 0, "Canada", 45, 180.0),
        ("u2", 1, "China", 49, 170.0),
        ("u2", 2, "Great Britain", 51, 183.0),
        ("u3", 0, "United States", 41, 176.0),
        ("u3", 1, "China", 45, 168.0),
        ("u3", 2, "United States", 35, 180.0),
        ("u4", 0, "United States", 40, 176.0),
        ("u4", 1, "China", 46, 167.0),
        ("u4", 2, "Great Britain", 48, 186.0),
    ]
    for worker, row, nationality, age, height in rows:
        answers.add(Answer(worker, row, 0, nationality))
        answers.add(Answer(worker, row, 1, float(age)))
        answers.add(Answer(worker, row, 2, float(height)))
    return answers


def main() -> None:
    schema = build_schema()
    answers = collect_answers(schema)

    model = TCrowdModel(seed=7)
    result = model.fit(schema, answers)

    print("Estimated truths:")
    for row in range(schema.num_rows):
        values = []
        for col, column in enumerate(schema.columns):
            estimate = result.estimate(row, col)
            if column.is_continuous:
                values.append(f"{column.name}={estimate:.1f}")
            else:
                values.append(f"{column.name}={estimate}")
        print(f"  picture {row + 1}: " + ", ".join(values))

    print("\nUnified worker quality (erf-based, higher is better):")
    for worker, quality in sorted(result.worker_qualities().items()):
        print(f"  {worker}: {quality:.3f}")

    print("\nColumn difficulties (beta_j, higher is harder):")
    for col, column in enumerate(schema.columns):
        print(f"  {column.name}: {result.column_difficulty(col):.3f}")


if __name__ == "__main__":
    main()
