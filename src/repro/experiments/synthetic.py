"""Figures 7-9 — truth inference on synthetic tables with varying properties.

Each harness sweeps one generator parameter (number of columns, ratio of
categorical columns, average difficulty), regenerates the dataset ``trials``
times per setting, and reports the average Error Rate (categorical columns,
T-Crowd vs CRH vs GLAD) and MNAD (continuous columns, T-Crowd vs CRH vs GTM)
— the same curves as the paper's Figures 7, 8 and 9.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.baselines import CRH, GLAD, GTM
from repro.core.inference import TCrowdModel
from repro.datasets import generate_synthetic
from repro.experiments.reporting import ExperimentReport
from repro.metrics import error_rate, mnad
from repro.utils.rng import spawn_generators


def _evaluate_setting(
    dataset,
    model_kwargs: Optional[dict],
) -> Dict[str, Optional[float]]:
    """Error Rate / MNAD of T-Crowd, CRH, GLAD and GTM on one dataset."""
    results: Dict[str, Optional[float]] = {}
    has_cat = bool(dataset.schema.categorical_indices)
    has_cont = bool(dataset.schema.continuous_indices)
    tcrowd = TCrowdModel(**(model_kwargs or {})).fit(dataset.schema, dataset.answers)
    crh = CRH().fit(dataset.schema, dataset.answers)
    if has_cat:
        results["T-Crowd error"] = error_rate(tcrowd, dataset)
        results["CRH error"] = error_rate(crh, dataset)
        glad = GLAD().fit(dataset.schema, dataset.answers)
        results["GLAD error"] = error_rate(glad, dataset)
    if has_cont:
        results["T-Crowd MNAD"] = mnad(tcrowd, dataset)
        results["CRH MNAD"] = mnad(crh, dataset)
        gtm = GTM().fit(dataset.schema, dataset.answers)
        results["GTM MNAD"] = mnad(gtm, dataset)
    return results


def _sweep(
    experiment_id: str,
    title: str,
    parameter_name: str,
    parameter_values: Sequence,
    dataset_factory,
    trials: int,
    seed: int,
    model_kwargs: Optional[dict],
) -> ExperimentReport:
    metric_names = [
        "T-Crowd error", "CRH error", "GLAD error",
        "T-Crowd MNAD", "CRH MNAD", "GTM MNAD",
    ]
    report = ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        headers=[parameter_name] + metric_names,
    )
    series: Dict[str, List[tuple]] = {name: [] for name in metric_names}
    for value in parameter_values:
        rngs = spawn_generators(seed + hash(str(value)) % 10_000, trials)
        accumulated: Dict[str, List[float]] = {}
        for rng in rngs:
            dataset = dataset_factory(value, rng)
            for name, metric in _evaluate_setting(dataset, model_kwargs).items():
                if metric is not None:
                    accumulated.setdefault(name, []).append(metric)
        row: List = [value]
        for name in metric_names:
            values = accumulated.get(name)
            mean = float(np.mean(values)) if values else None
            row.append(mean)
            if mean is not None:
                series[name].append((value, mean))
        report.add_row(*row)
    for name, points in series.items():
        if points:
            report.add_series(name, points)
    report.add_note(f"trials per setting: {trials}, base seed: {seed}")
    return report


def run_figure7(
    column_counts: Iterable[int] = (5, 10, 20, 30, 40, 50),
    num_rows: int = 40,
    trials: int = 3,
    answers_per_task: int = 5,
    seed: int = 23,
    model_kwargs: Optional[dict] = None,
) -> ExperimentReport:
    """Figure 7: effect of the number of columns M (R=0.5, difficulty=1)."""
    return _sweep(
        "figure7",
        "Effect of the number of columns",
        "#Columns",
        list(column_counts),
        lambda m, rng: generate_synthetic(
            num_rows=num_rows, num_columns=int(m), categorical_ratio=0.5,
            average_difficulty=1.0, answers_per_task=answers_per_task, seed=rng,
        ),
        trials, seed, model_kwargs,
    )


def run_figure8(
    ratios: Iterable[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    num_rows: int = 40,
    num_columns: int = 10,
    trials: int = 3,
    answers_per_task: int = 5,
    seed: int = 29,
    model_kwargs: Optional[dict] = None,
) -> ExperimentReport:
    """Figure 8: effect of the ratio of categorical columns R (M=10)."""
    return _sweep(
        "figure8",
        "Effect of the ratio of categorical columns",
        "Ratio (#Cate Cols / #Cols)",
        list(ratios),
        lambda r, rng: generate_synthetic(
            num_rows=num_rows, num_columns=num_columns, categorical_ratio=float(r),
            average_difficulty=1.0, answers_per_task=answers_per_task, seed=rng,
        ),
        trials, seed, model_kwargs,
    )


def run_figure9(
    difficulties: Iterable[float] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
    num_rows: int = 40,
    num_columns: int = 10,
    trials: int = 3,
    answers_per_task: int = 5,
    seed: int = 31,
    model_kwargs: Optional[dict] = None,
) -> ExperimentReport:
    """Figure 9: effect of the average cell difficulty mu(alpha_i * beta_j)."""
    return _sweep(
        "figure9",
        "Effect of the average difficulty",
        "Average Difficulty",
        list(difficulties),
        lambda d, rng: generate_synthetic(
            num_rows=num_rows, num_columns=num_columns, categorical_ratio=0.5,
            average_difficulty=float(d), answers_per_task=answers_per_task, seed=rng,
        ),
        trials, seed, model_kwargs,
    )
