"""Restricted T-Crowd variants used in Table 7 (TC-onlyCate / TC-onlyCont).

These run the full T-Crowd inference of Section 4 but only on the answers of
one datatype, exactly like the paper's constrained versions.  They quantify
how much the *unified* worker quality (learning from both datatypes at once)
contributes to accuracy.
"""

from __future__ import annotations

from repro.core.answers import AnswerSet
from repro.core.inference import InferenceResult, TCrowdModel
from repro.core.schema import TableSchema
from repro.utils.exceptions import InferenceError


class TCrowdCategoricalOnly:
    """T-Crowd restricted to the categorical columns of the table."""

    def __init__(self, **model_kwargs) -> None:
        self._model = TCrowdModel(**model_kwargs)

    def fit(self, schema: TableSchema, answers: AnswerSet) -> InferenceResult:
        """Run inference using only answers to categorical columns."""
        columns = schema.categorical_indices
        if not columns:
            raise InferenceError("The schema has no categorical columns")
        restricted = answers.restricted_to_columns(columns)
        if len(restricted) == 0:
            raise InferenceError("No answers to categorical columns")
        return self._model.fit(schema, restricted)


class TCrowdContinuousOnly:
    """T-Crowd restricted to the continuous columns of the table."""

    def __init__(self, **model_kwargs) -> None:
        self._model = TCrowdModel(**model_kwargs)

    def fit(self, schema: TableSchema, answers: AnswerSet) -> InferenceResult:
        """Run inference using only answers to continuous columns."""
        columns = schema.continuous_indices
        if not columns:
            raise InferenceError("The schema has no continuous columns")
        restricted = answers.restricted_to_columns(columns)
        if len(restricted) == 0:
            raise InferenceError("No answers to continuous columns")
        return self._model.fit(schema, restricted)
