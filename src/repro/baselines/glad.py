"""GLAD baseline (Whitehill et al., NIPS 2009).

Models the probability that worker ``u`` answers task ``t`` correctly as
``sigmoid(ability_u * inv_difficulty_t)`` with ``inv_difficulty_t > 0``;
wrong answers are spread uniformly over the remaining labels (the standard
multi-class generalisation).  Estimated by EM; the M-step maximises the
expected log-likelihood by gradient ascent over the abilities and the log
inverse difficulties.  Categorical columns only.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy import optimize

from repro.baselines.base import BaselineResult, TruthInferenceMethod
from repro.core.answers import AnswerSet
from repro.core.schema import TableSchema
from repro.utils.numerics import normalize_log_probs


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class GLAD(TruthInferenceMethod):
    """GLAD: per-worker ability and per-task difficulty, EM + gradient ascent."""

    name = "GLAD"

    def __init__(self, max_iterations: int = 30, tolerance: float = 1e-4,
                 m_step_iterations: int = 20, regularization: float = 0.01) -> None:
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.m_step_iterations = int(m_step_iterations)
        self.regularization = float(regularization)

    def supports_continuous(self) -> bool:
        return False

    def fit(self, schema: TableSchema, answers: AnswerSet) -> BaselineResult:
        cat_cols = set(schema.categorical_indices)
        observations = [a for a in answers if a.col in cat_cols]
        if not observations:
            return BaselineResult(schema, self.name, {})
        workers = sorted({a.worker for a in observations})
        worker_index = {worker: u for u, worker in enumerate(workers)}
        cells = sorted({(a.row, a.col) for a in observations})
        cell_index = {cell: t for t, cell in enumerate(cells)}
        label_counts = np.array(
            [schema.columns[cell[1]].num_labels for cell in cells]
        )
        max_labels = int(label_counts.max())

        obs_worker = np.array([worker_index[a.worker] for a in observations])
        obs_cell = np.array([cell_index[(a.row, a.col)] for a in observations])
        obs_label = np.array(
            [schema.columns[a.col].label_index(a.value) for a in observations]
        )

        num_workers = len(workers)
        num_cells = len(cells)

        ability = np.ones(num_workers)
        log_inv_difficulty = np.zeros(num_cells)

        # Initial posteriors from vote fractions.
        posterior = np.full((num_cells, max_labels), 1e-6)
        np.add.at(posterior, (obs_cell, obs_label), 1.0)
        label_grid = np.arange(max_labels)[None, :]
        invalid = label_grid >= label_counts[:, None]
        posterior[invalid] = 0.0
        posterior = posterior / posterior.sum(axis=1, keepdims=True)

        def e_step(ability, log_inv_difficulty):
            correct_prob = np.clip(
                _sigmoid(ability[obs_worker] * np.exp(log_inv_difficulty[obs_cell])),
                1e-9, 1 - 1e-9,
            )
            wrong_prob = (1.0 - correct_prob) / np.maximum(
                label_counts[obs_cell] - 1, 1
            )
            base = np.zeros(num_cells)
            np.add.at(base, obs_cell, np.log(wrong_prob))
            delta = np.zeros((num_cells, max_labels))
            np.add.at(
                delta, (obs_cell, obs_label), np.log(correct_prob) - np.log(wrong_prob)
            )
            log_post = base[:, None] + delta
            log_post[invalid] = -np.inf
            post = normalize_log_probs(log_post, axis=1)
            post[invalid] = 0.0
            return post

        def negative_q(theta, posterior):
            ability = theta[:num_workers]
            log_inv_difficulty = theta[num_workers:]
            scale = np.exp(log_inv_difficulty[obs_cell])
            logits = ability[obs_worker] * scale
            correct_prob = np.clip(_sigmoid(logits), 1e-9, 1 - 1e-9)
            p_correct = posterior[obs_cell, obs_label]
            objective = np.sum(
                p_correct * np.log(correct_prob)
                + (1.0 - p_correct)
                * (
                    np.log(1.0 - correct_prob)
                    - np.log(np.maximum(label_counts[obs_cell] - 1, 1))
                )
            )
            objective -= 0.5 * self.regularization * (
                np.sum((ability - 1.0) ** 2) + np.sum(log_inv_difficulty**2)
            )
            # Gradient.
            dlogit = (p_correct - correct_prob)
            grad_ability = np.zeros(num_workers)
            grad_logdiff = np.zeros(num_cells)
            np.add.at(grad_ability, obs_worker, dlogit * scale)
            np.add.at(grad_logdiff, obs_cell, dlogit * logits)
            grad_ability -= self.regularization * (ability - 1.0)
            grad_logdiff -= self.regularization * log_inv_difficulty
            grad = np.concatenate([grad_ability, grad_logdiff])
            return -float(objective), -grad

        for _iteration in range(self.max_iterations):
            previous = posterior.copy()
            theta0 = np.concatenate([ability, log_inv_difficulty])
            result = optimize.minimize(
                negative_q, theta0, args=(posterior,), jac=True,
                method="L-BFGS-B", options={"maxiter": self.m_step_iterations},
            )
            ability = result.x[:num_workers]
            log_inv_difficulty = result.x[num_workers:]
            posterior = e_step(ability, log_inv_difficulty)
            if np.max(np.abs(posterior - previous)) < self.tolerance:
                break

        estimates: Dict[Tuple[int, int], object] = {}
        for cell, index in cell_index.items():
            column = schema.columns[cell[1]]
            estimates[cell] = column.labels[int(np.argmax(posterior[index]))]
        weights = {
            worker: float(_sigmoid(ability[worker_index[worker]]))
            for worker in workers
        }
        return BaselineResult(schema, self.name, estimates, worker_weights=weights)
