"""Scripted drivers behind ``benchmarks/run_bench.py --serve`` and the tests.

Two measurements live here:

* :func:`verify_recovery_identical` — the crash-recovery equivalence check.
  One scripted session (the golden-trace scenario) runs uninterrupted; a
  second runs durably, is killed mid-run (its write-ahead log optionally
  loses a torn tail), is recovered into a fresh process-equivalent policy,
  and is driven to completion.  The full assignment sequence and the final
  truth estimates must match the uninterrupted run **bit for bit** — the
  ``recovery_identical`` bit in ``BENCH_engine.json`` that CI gates on.

* :func:`measure_serving` — HTTP serving throughput.  A live
  :class:`~repro.service.app.ServiceServer` on an ephemeral port is driven
  through a full scripted session over real HTTP (create session, seed
  answers, select/ingest loop, estimates, metrics scrape) and the select
  round-trip latencies are summarised as p50/p99 alongside requests/sec.

The drivers share one deterministic replay trick: the scripted crowd is a
seeded RNG, so the continuation of a recovered session *fast-forwards* the
RNG by re-drawing every variate the crashed run already consumed — the
logged events say exactly which draws those were (and double-check the
redraws match what was logged).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import SessionSpec
from repro.config.factory import build_policy
from repro.datasets import load_celebrity
from repro.service.app import ServiceServer, _quantile
from repro.service.registry import schema_to_dict
from repro.service.wal import DurableSession, durable_summary
from repro.utils.exceptions import AssignmentError, DurabilityError

Cell = Tuple[int, int]

#: The golden-trace scenario (tests/fixtures/golden_trace.json) — small
#: enough to replay in seconds, rich enough to hit every code path.
DEFAULT_SCENARIO = {
    "seed": 7,
    "num_rows": 12,
    "target_answers_per_task": 1.5,
    "num_shards": 3,
    "model_kwargs": {"max_iterations": 6, "m_step_iterations": 10},
}

#: Serving-mode keys accepted by the scripted drivers.  ``multiprocess``
#: serves the scenario's shards from two real worker subprocesses behind
#: :class:`~repro.engine.ProcessShardCoordinator`.
SERVING_MODES = ("plain", "sharded", "async", "sharded_async", "multiprocess")


def _serving_config(mode: str, scenario: dict) -> dict:
    if mode == "plain":
        return {}
    if mode == "sharded":
        return {"shards": scenario["num_shards"]}
    if mode == "async":
        return {"async_refit": True, "max_stale_answers": 0}
    if mode == "sharded_async":
        return {
            "shards": scenario["num_shards"],
            "async_refit": True,
            "max_stale_answers": 0,
        }
    if mode == "multiprocess":
        return {"shards": scenario["num_shards"], "processes": 2}
    raise ValueError(f"Unknown serving mode {mode!r}; expected {SERVING_MODES}")


def scripted_spec(mode: str, scenario: dict, audit: bool = True) -> SessionSpec:
    """The :class:`~repro.config.SessionSpec` of one scripted serving mode.

    The scenario's ``seed`` is recorded in the spec's simulation section so
    the spec document the bench JSON carries pins the exact replayable run.
    An optional ``scenario["strategy"]`` (a name or a
    :class:`~repro.config.StrategySpec`-shaped dict) selects the assignment
    strategy every serving mode then serves.
    """
    builder = (
        SessionSpec.builder()
        .model(**scenario["model_kwargs"])
        .policy(refit_every=1, warm_start=True)
        .simulation(
            seed=scenario.get("seed", DEFAULT_SCENARIO["seed"]),
            target_answers_per_task=scenario.get(
                "target_answers_per_task",
                DEFAULT_SCENARIO["target_answers_per_task"],
            ),
        )
        .serving(audit=audit, **_serving_config(mode, scenario))
    )
    strategy = scenario.get("strategy")
    if strategy is not None:
        if isinstance(strategy, str):
            builder.strategy(strategy)
        else:
            builder.strategy(**strategy)
    return builder.build()


def _build_scripted_policy(schema, mode: str, scenario: dict, audit: bool = True):
    return build_policy(schema, scripted_spec(mode, scenario, audit=audit))


def _extra_answers(schema, scenario: dict) -> int:
    return int(
        round((scenario["target_answers_per_task"] - 1.0) * schema.num_cells)
    )


# -- scripted durable sessions -------------------------------------------------


def run_scripted_session(
    mode: str = "plain",
    directory=None,
    crash_after_steps: Optional[int] = None,
    snapshot_every: int = 25,
    scenario: Optional[dict] = None,
    backend: str = "jsonl",
    rotate_every_records: Optional[int] = None,
    keep_snapshots: Optional[int] = None,
    audit: bool = True,
) -> Dict[str, object]:
    """Run the scripted scenario through a :class:`DurableSession`.

    ``crash_after_steps`` stops mid-run *without closing anything* —
    simulating a killed process (the WAL is flushed per event, so the disk
    state is what a crash would leave behind).  Returns the decisions taken,
    the final estimates (``None`` when crashed) and the session object.
    """
    scenario = {**DEFAULT_SCENARIO, **(scenario or {})}
    dataset = load_celebrity(seed=scenario["seed"], num_rows=scenario["num_rows"])
    schema = dataset.schema
    pool = dataset.worker_pool
    worker_ids, activities = pool.worker_ids(), pool.activities()
    rng = np.random.default_rng(scenario["seed"])
    policy = _build_scripted_policy(schema, mode, scenario, audit=audit)
    session = DurableSession(
        schema,
        policy,
        directory=directory,
        snapshot_every=snapshot_every,
        backend=backend,
        rotate_every_records=rotate_every_records,
        keep_snapshots=keep_snapshots,
    )

    for row in range(schema.num_rows):
        worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
        items = [
            (row, col, dataset.oracle.answer(worker, row, col, rng))
            for col in range(schema.num_columns)
        ]
        session.append_answers(worker, items, observe=False)

    extra = _extra_answers(schema, scenario)
    decisions: List[Tuple[str, Tuple[Cell, ...]]] = []
    collected = steps = failures = 0
    crashed = False
    while collected < extra and failures < 10 * len(worker_ids):
        worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
        batch = min(schema.num_columns, extra - collected)
        try:
            assignment = session.select(worker, k=batch)
        except AssignmentError:
            failures += 1
            continue
        failures = 0
        items = [
            (row, col, dataset.oracle.answer(worker, row, col, rng))
            for row, col in assignment.cells
        ]
        session.append_answers(worker, items)
        decisions.append((worker, assignment.cells))
        collected += len(items)
        steps += 1
        if crash_after_steps is not None and steps >= crash_after_steps:
            crashed = True
            break

    estimates = None
    if not crashed:
        result = session.estimates()
        estimates = {
            (row, col): result.estimate(row, col)
            for row in range(schema.num_rows)
            for col in range(schema.num_columns)
        }
        session.close()
    return {
        "decisions": decisions,
        "estimates": estimates,
        "session": session,
        "crashed": crashed,
    }


def continue_scripted_session(
    mode: str = "plain",
    directory=None,
    snapshot_every: int = 25,
    scenario: Optional[dict] = None,
    backend: str = "jsonl",
    rotate_every_records: Optional[int] = None,
    keep_snapshots: Optional[int] = None,
) -> Dict[str, object]:
    """Recover a crashed scripted session and drive it to completion.

    The recovered prefix (decisions reconstructed from the log) plus the
    live continuation must reproduce an uninterrupted run exactly; the RNG
    is fast-forwarded by re-drawing every variate the crashed run consumed,
    asserting each redraw against the logged value.  Fast-forwarding needs
    the *whole* event history, so this driver requires an unpruned log —
    use :func:`verify_recovery_rotation` when snapshot GC is on.
    """
    scenario = {**DEFAULT_SCENARIO, **(scenario or {})}
    dataset = load_celebrity(seed=scenario["seed"], num_rows=scenario["num_rows"])
    schema = dataset.schema
    pool = dataset.worker_pool
    worker_ids, activities = pool.worker_ids(), pool.activities()
    rng = np.random.default_rng(scenario["seed"])
    policy = _build_scripted_policy(schema, mode, scenario)
    session = DurableSession(
        schema,
        policy,
        directory=directory,
        snapshot_every=snapshot_every,
        backend=backend,
        rotate_every_records=rotate_every_records,
        keep_snapshots=keep_snapshots,
    )

    decisions: List[Tuple[str, Tuple[Cell, ...]]] = []
    collected = 0
    for record in session.events:
        kind = record.get("t")
        if kind == "select":
            worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
            if worker != record["w"]:
                raise DurabilityError(
                    "RNG fast-forward diverged from the logged select "
                    f"({worker!r} != {record['w']!r}); the WAL was not "
                    "produced by this scenario"
                )
        elif kind == "answers":
            worker = record["w"]
            if record.get("o", True):
                decisions.append(
                    (
                        worker,
                        tuple((int(r), int(c)) for r, c, _v in record["a"]),
                    )
                )
                collected += len(record["a"])
            else:
                # Seed batches drew their worker before their values.
                drawn = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
                if drawn != worker:
                    raise DurabilityError(
                        "RNG fast-forward diverged from the logged seed batch"
                    )
            for row, col, value in record["a"]:
                redrawn = dataset.oracle.answer(worker, int(row), int(col), rng)
                if redrawn != value and float(redrawn) != float(value):
                    raise DurabilityError(
                        "RNG fast-forward diverged from a logged answer value"
                    )

    extra = _extra_answers(schema, scenario)
    failures = 0
    pending = session.dangling_select()
    while collected < extra and failures < 10 * len(worker_ids):
        if pending is not None:
            # The crash lost the answers of an already-logged select: the
            # replay restored its refit, so re-issue it for the same worker
            # instead of drawing a new one.
            worker, batch = pending
            pending = None
        else:
            worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
            batch = min(schema.num_columns, extra - collected)
        batch = min(batch, extra - collected)
        try:
            assignment = session.select(worker, k=batch)
        except AssignmentError:
            failures += 1
            continue
        failures = 0
        items = [
            (row, col, dataset.oracle.answer(worker, row, col, rng))
            for row, col in assignment.cells
        ]
        session.append_answers(worker, items)
        decisions.append((worker, assignment.cells))
        collected += len(items)

    result = session.estimates()
    estimates = {
        (row, col): result.estimate(row, col)
        for row in range(schema.num_rows)
        for col in range(schema.num_columns)
    }
    session.close()
    return {
        "decisions": decisions,
        "estimates": estimates,
        "session": session,
        "replayed_records": session.replayed_records,
        "recovered_epoch": session.recovered_epoch,
    }


def _abandon_session(session: DurableSession) -> None:
    """Simulate a process kill: release threads/handles, never snapshot."""
    close = getattr(session.policy, "close", None)
    if close is not None:
        close()
    if session._storage is not None:
        session._storage.close()


def _newest_wal_segment(directory):
    """The JSONL segment file a torn write would land in (``None`` if none)."""
    import pathlib

    directory = pathlib.Path(directory)
    segments = sorted(directory.glob("wal-*.jsonl"))
    if segments:
        return segments[-1]
    legacy = directory / "wal.jsonl"
    return legacy if legacy.exists() else None


def _tear_wal_tail(directory, backend: str, truncate_bytes: int) -> int:
    """Cut ``truncate_bytes`` off the newest JSONL segment (no-op on SQLite).

    SQLite appends are transactions — a kill cannot leave a torn record, so
    there is nothing to simulate.  Returns the bytes actually removed.
    """
    if not truncate_bytes or backend == "sqlite":
        return 0
    path = _newest_wal_segment(directory)
    if path is None:
        return 0
    data = path.read_bytes()
    torn = min(int(truncate_bytes), len(data))
    path.write_bytes(data[: len(data) - torn])
    return torn


def verify_recovery_identical(
    mode: str = "plain",
    directory=None,
    crash_after_steps: int = 3,
    truncate_bytes: int = 7,
    snapshot_every: int = 25,
    scenario: Optional[dict] = None,
    backend: str = "jsonl",
    rotate_every_records: Optional[int] = None,
) -> Dict[str, object]:
    """Crash, truncate, recover, continue — and compare bit for bit.

    ``directory`` must be empty/fresh; pass a temporary directory.  Returns
    the comparison bits plus recovery diagnostics.  ``rotate_every_records``
    exercises segment rotation (the RNG fast-forward continuation needs the
    full log, so GC stays off here — :func:`verify_recovery_rotation`
    covers rotation *with* retention).
    """
    import pathlib
    import tempfile

    owns_dir = directory is None
    if owns_dir:
        directory = tempfile.mkdtemp(prefix="repro-recovery-")
    directory = pathlib.Path(directory)
    baseline = run_scripted_session(mode, scenario=scenario)
    crashed = run_scripted_session(
        mode,
        directory=directory,
        crash_after_steps=crash_after_steps,
        snapshot_every=snapshot_every,
        scenario=scenario,
        backend=backend,
        rotate_every_records=rotate_every_records,
    )
    # Simulate the kill: drop the in-memory engine (its threads at most),
    # then tear a few bytes off the log tail — a write cut mid-record.
    _abandon_session(crashed["session"])
    torn = _tear_wal_tail(directory, backend, truncate_bytes)
    continued = continue_scripted_session(
        mode, directory=directory, snapshot_every=snapshot_every,
        scenario=scenario, backend=backend,
        rotate_every_records=rotate_every_records,
    )
    decisions_identical = continued["decisions"] == baseline["decisions"]
    estimates_identical = continued["estimates"] == baseline["estimates"]
    summary = {
        "recovery_mode": mode,
        "recovery_backend": backend,
        "recovery_identical": bool(decisions_identical and estimates_identical),
        "recovery_decisions_identical": bool(decisions_identical),
        "recovery_estimates_identical": bool(estimates_identical),
        "recovery_steps_before_crash": int(crash_after_steps),
        "recovery_truncated_bytes": int(torn),
        "recovery_replayed_records": continued["replayed_records"],
        "recovery_snapshot_epoch": continued["recovered_epoch"],
        "recovery_total_steps": len(baseline["decisions"]),
    }
    if owns_dir:
        import shutil

        shutil.rmtree(directory, ignore_errors=True)
    return summary


def run_scripted_session_restarting(
    mode: str = "plain",
    directory=None,
    restart_after_steps: int = 4,
    snapshot_every: int = 6,
    scenario: Optional[dict] = None,
    backend: str = "jsonl",
    rotate_every_records: Optional[int] = None,
    keep_snapshots: Optional[int] = None,
    truncate_bytes: int = 0,
) -> Dict[str, object]:
    """The scripted scenario with a mid-run crash + in-place recovery.

    Unlike :func:`continue_scripted_session` (which fast-forwards a fresh
    RNG over the whole log, impossible once GC pruned the prefix), this
    driver keeps its **live** RNG across the restart — exactly the server
    restart scenario: the crowd out there doesn't rewind, only the serving
    process is rebuilt from disk.  If the torn tail lost the answer batch
    of an already-acknowledged step, the driver re-posts it (a real client
    whose POST never got its 200 would retry).
    """
    scenario = {**DEFAULT_SCENARIO, **(scenario or {})}
    dataset = load_celebrity(seed=scenario["seed"], num_rows=scenario["num_rows"])
    schema = dataset.schema
    pool = dataset.worker_pool
    worker_ids, activities = pool.worker_ids(), pool.activities()
    rng = np.random.default_rng(scenario["seed"])
    durable_kwargs = dict(
        directory=directory,
        snapshot_every=snapshot_every,
        backend=backend,
        rotate_every_records=rotate_every_records,
        keep_snapshots=keep_snapshots,
    )
    session = DurableSession(
        schema, _build_scripted_policy(schema, mode, scenario), **durable_kwargs
    )

    for row in range(schema.num_rows):
        worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
        items = [
            (row, col, dataset.oracle.answer(worker, row, col, rng))
            for col in range(schema.num_columns)
        ]
        session.append_answers(worker, items, observe=False)

    extra = _extra_answers(schema, scenario)
    decisions: List[Tuple[str, Tuple[Cell, ...]]] = []
    collected = steps = failures = 0
    restarted = False
    replayed_records = 0
    recovered_epoch = None
    last_batch: Optional[Tuple[str, List[Tuple[int, int, object]]]] = None
    while collected < extra and failures < 10 * len(worker_ids):
        if not restarted and steps >= restart_after_steps:
            restarted = True
            _abandon_session(session)
            _tear_wal_tail(directory, backend, truncate_bytes)
            session = DurableSession(
                schema,
                _build_scripted_policy(schema, mode, scenario),
                **durable_kwargs,
            )
            replayed_records = session.replayed_records
            recovered_epoch = session.recovered_epoch
            pending = session.dangling_select()
            if pending is not None:
                # The torn tail lost the last acknowledged answer batch;
                # its select (and refit) replayed, so re-post the batch.
                worker, _k = pending
                if last_batch is None or last_batch[0] != worker:
                    raise DurabilityError(
                        "dangling select does not match the last driven step"
                    )
                session.append_answers(worker, last_batch[1])
        worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
        batch = min(schema.num_columns, extra - collected)
        try:
            assignment = session.select(worker, k=batch)
        except AssignmentError:
            failures += 1
            continue
        failures = 0
        items = [
            (row, col, dataset.oracle.answer(worker, row, col, rng))
            for row, col in assignment.cells
        ]
        session.append_answers(worker, items)
        last_batch = (worker, items)
        decisions.append((worker, assignment.cells))
        collected += len(items)
        steps += 1

    result = session.estimates()
    estimates = {
        (row, col): result.estimate(row, col)
        for row in range(schema.num_rows)
        for col in range(schema.num_columns)
    }
    diagnostics = {
        "decisions": decisions,
        "estimates": estimates,
        "session": session,
        "restarted": restarted,
        "replayed_records": replayed_records,
        "recovered_epoch": recovered_epoch,
        "wal_records": session.wal_records,
        "wal_segments": session.wal_segments,
        "snapshots_retained": session.snapshots_retained,
    }
    session.close()
    # Post-close on-disk state (close cuts a final snapshot + GC pass);
    # read from disk so it works after the SQLite connection is gone.
    summary = durable_summary(directory)
    diagnostics["wal_segments_closed"] = summary["wal_segments"]
    diagnostics["snapshots_retained_closed"] = summary["snapshots"]
    return diagnostics


def _durable_file_count(directory) -> int:
    """Files on disk under a durable directory (recursive)."""
    import pathlib

    return sum(1 for p in pathlib.Path(directory).rglob("*") if p.is_file())


def verify_recovery_rotation(
    mode: str = "plain",
    backend: str = "jsonl",
    directory=None,
    restart_after_steps: int = 4,
    truncate_bytes: int = 7,
    snapshot_every: int = 6,
    rotate_every_records: int = 8,
    keep_snapshots: int = 2,
    scenario: Optional[dict] = None,
) -> Dict[str, object]:
    """Crash-recovery equivalence **with rotation + snapshot GC enabled**.

    Runs the scripted scenario against a durable session whose log rotates
    every ``rotate_every_records`` records and whose store retains only
    ``keep_snapshots`` snapshots (pruned WAL prefix and all), crashes it
    mid-run — tearing the newest segment's tail for JSONL — recovers it in
    place and drives it to completion with the live RNG.  The assignment
    sequence and final estimates must match an uninterrupted, in-memory
    run bit for bit, and the on-disk footprint must stay bounded by
    ``keep_snapshots`` snapshots + 2 log segments.
    """
    import pathlib
    import shutil
    import tempfile

    owns_dir = directory is None
    if owns_dir:
        directory = tempfile.mkdtemp(prefix="repro-rotation-")
    directory = pathlib.Path(directory)
    baseline = run_scripted_session(mode, scenario=scenario)
    restarted = run_scripted_session_restarting(
        mode,
        directory=directory,
        restart_after_steps=restart_after_steps,
        snapshot_every=snapshot_every,
        scenario=scenario,
        backend=backend,
        rotate_every_records=rotate_every_records,
        keep_snapshots=keep_snapshots,
        truncate_bytes=truncate_bytes,
    )
    decisions_identical = restarted["decisions"] == baseline["decisions"]
    estimates_identical = restarted["estimates"] == baseline["estimates"]
    files = _durable_file_count(directory)
    bound = keep_snapshots + 2
    summary = {
        "rotation_mode": mode,
        "rotation_backend": backend,
        "rotation_identical": bool(decisions_identical and estimates_identical),
        "rotation_decisions_identical": bool(decisions_identical),
        "rotation_estimates_identical": bool(estimates_identical),
        "rotation_restarted": bool(restarted["restarted"]),
        "rotation_replayed_records": restarted["replayed_records"],
        "rotation_wal_records": restarted["wal_records"],
        "rotation_wal_segments": restarted["wal_segments_closed"],
        "rotation_snapshots_retained": restarted["snapshots_retained_closed"],
        "rotation_files_on_disk": files,
        "rotation_files_bound": bound,
        "rotation_disk_bounded": bool(
            files <= bound
            and restarted["wal_segments_closed"] <= 2
            and restarted["snapshots_retained_closed"] <= keep_snapshots
        ),
    }
    if owns_dir:
        shutil.rmtree(directory, ignore_errors=True)
    return summary


# -- decision-audit verification -----------------------------------------------


def verify_audit_replay(
    mode: str = "plain",
    backend: str = "jsonl",
    directory=None,
    crash_after_steps: int = 3,
    snapshot_every: int = 25,
    scenario: Optional[dict] = None,
) -> Dict[str, object]:
    """Crash an audited session, recover it, and re-verify every decision.

    Recovery replays the WAL through the live policy: each logged
    ``select`` recomputes its decision record from scratch and the logged
    ``decision`` record's hash must match bit for bit (the recorder counts
    ``replay_verified`` / ``replay_mismatches``).  On top of the per-record
    hash check, the recovered audit ledger — ids, chained hashes, lineage —
    must equal the pre-crash recorder state exactly.  The verdict lands in
    ``BENCH_engine.json`` as ``audit_replay_identical`` and is hard-failed
    by both the benchmark driver and the CI perf gate.
    """
    import pathlib
    import shutil
    import tempfile

    scenario = {**DEFAULT_SCENARIO, **(scenario or {})}
    owns_dir = directory is None
    if owns_dir:
        directory = tempfile.mkdtemp(prefix="repro-audit-")
    directory = pathlib.Path(directory)
    crashed = run_scripted_session(
        mode,
        directory=directory,
        crash_after_steps=crash_after_steps,
        snapshot_every=snapshot_every,
        scenario=scenario,
        backend=backend,
    )
    before = crashed["session"].recorder
    before_state = before.state()
    before_head = before.chain_head
    _abandon_session(crashed["session"])

    dataset = load_celebrity(seed=scenario["seed"], num_rows=scenario["num_rows"])
    policy = _build_scripted_policy(dataset.schema, mode, scenario)
    recovered = DurableSession(
        dataset.schema,
        policy,
        directory=directory,
        snapshot_every=snapshot_every,
        backend=backend,
    )
    recorder = recovered.recorder
    identical = (
        recorder.state() == before_state
        and recorder.chain_head == before_head
        and recorder.replay_mismatches == 0
    )
    summary = {
        "audit_mode": mode,
        "audit_backend": backend,
        "audit_records": int(before.count),
        "audit_replay_verified": int(recorder.replay_verified),
        "audit_replay_mismatches": int(recorder.replay_mismatches),
        "audit_chain_head": recorder.chain_head,
        "audit_replay_identical": bool(identical),
    }
    _abandon_session(recovered)
    if owns_dir:
        shutil.rmtree(directory, ignore_errors=True)
    return summary


def measure_audit_overhead(
    mode: str = "plain",
    repeats: int = 5,
    scenario: Optional[dict] = None,
) -> Dict[str, object]:
    """Wall-clock cost of decision recording on the scripted scenario.

    Runs the in-memory scripted session with ``serving.audit`` on and off
    (``repeats`` interleaved passes each, best-of to shed scheduler noise)
    and reports the relative overhead as ``audit_overhead_ratio``.  The CI
    perf gate floors the ratio at < 10 %; ``serving.audit = false`` is the
    operator escape hatch if a deployment cannot afford even that.
    """
    timings = {True: [], False: []}
    for _ in range(max(1, int(repeats))):
        for audit in (True, False):
            start = time.perf_counter()
            run_scripted_session(mode, scenario=scenario, audit=audit)
            timings[audit].append(time.perf_counter() - start)
    base = min(timings[False])
    audited = min(timings[True])
    ratio = (audited - base) / base if base > 0 else 0.0
    return {
        "audit_overhead_mode": mode,
        "audit_seconds": float(audited),
        "audit_baseline_seconds": float(base),
        "audit_overhead_ratio": max(0.0, float(ratio)),
    }


# -- HTTP client ---------------------------------------------------------------


class ServiceClient:
    """Minimal stdlib HTTP client for the service API.

    :meth:`request` never raises on HTTP errors — it returns
    ``(status, body)`` so tests can assert on 4xx responses; the
    convenience wrappers raise :class:`RuntimeError` on any non-2xx.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(self, method: str, path: str, payload=None):
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                status, raw = resp.status, resp.read()
                content_type = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            status, raw = exc.code, exc.read()
            content_type = exc.headers.get("Content-Type", "")
        if content_type.startswith("application/json"):
            return status, json.loads(raw.decode("utf-8"))
        return status, raw.decode("utf-8")

    def _expect(self, method: str, path: str, payload=None):
        status, body = self.request(method, path, payload)
        if status >= 300:
            raise RuntimeError(f"{method} {path} failed with {status}: {body}")
        return body

    def create_session(self, config: dict) -> dict:
        return self._expect("POST", "/sessions", config)

    def get_tasks(self, session_id: str, worker: str, k: int = 1):
        return self.request(
            "GET", f"/sessions/{session_id}/tasks?worker={worker}&k={k}"
        )

    def post_answers(self, session_id: str, worker: str, items) -> dict:
        payload = {
            "worker": worker,
            "answers": [
                {"row": int(row), "col": int(col), "value": value}
                for row, col, value in items
            ],
        }
        return self._expect("POST", f"/sessions/{session_id}/answers", payload)

    def get_estimates(self, session_id: str) -> dict:
        return self._expect("GET", f"/sessions/{session_id}/estimates")

    def get_metrics(self) -> str:
        return self._expect("GET", "/metrics")

    def healthz(self) -> dict:
        return self._expect("GET", "/healthz")

    def delete_session(self, session_id: str) -> dict:
        return self._expect("DELETE", f"/sessions/{session_id}")


# -- HTTP serving benchmark ----------------------------------------------------


def measure_serving(
    seed: int = 7,
    num_rows: int = 24,
    target_answers_per_task: float = 1.6,
    model_kwargs: Optional[dict] = None,
    serving: Optional[dict] = None,
    durable_dir=None,
    snapshot_every: int = 200,
) -> Dict[str, object]:
    """Drive one scripted session over live HTTP; record throughput/latency.

    Starts an in-process :class:`ServiceServer` on an ephemeral port, runs
    the scripted crowd against it (every select and every answer batch is a
    real HTTP round trip) and summarises requests/sec plus the p50/p99
    select latency.  The numbers land in ``BENCH_engine.json`` as
    ``serve_requests_per_sec`` / ``serve_select_p50_ms`` /
    ``serve_select_p99_ms`` and feed the CI serve-throughput floor.
    """
    dataset = load_celebrity(seed=seed, num_rows=num_rows)
    schema = dataset.schema
    pool = dataset.worker_pool
    worker_ids, activities = pool.worker_ids(), pool.activities()
    rng = np.random.default_rng(seed)
    builder = (
        SessionSpec.builder()
        .model(**dict(model_kwargs or {"max_iterations": 6, "m_step_iterations": 10}))
        .policy(refit_every=1, warm_start=True)
        .serving(**dict(serving or {}))
        .durable(durable_dir, snapshot_every_answers=snapshot_every)
    )
    # The benchmark posts the canonical v1 spec body, exactly what any
    # operator client should send to POST /sessions.
    config = {"schema": schema_to_dict(schema), **builder.build().to_dict()}

    extra = int(round((target_answers_per_task - 1.0) * schema.num_cells))
    select_seconds: List[float] = []
    requests_total = 0
    with ServiceServer() as server:
        client = ServiceClient(server.address)
        session_id = client.create_session(config)["session_id"]
        requests_total += 1
        start = time.perf_counter()
        for row in range(schema.num_rows):
            worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
            items = [
                (row, col, dataset.oracle.answer(worker, row, col, rng))
                for col in range(schema.num_columns)
            ]
            client.post_answers(session_id, worker, items)
            requests_total += 1
        collected = failures = 0
        while collected < extra and failures < 10 * len(worker_ids):
            worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
            batch = min(schema.num_columns, extra - collected)
            before = time.perf_counter()
            status, body = client.get_tasks(session_id, worker, k=batch)
            select_seconds.append(time.perf_counter() - before)
            requests_total += 1
            if status == 409:
                failures += 1
                continue
            if status != 200:
                raise RuntimeError(f"tasks request failed with {status}: {body}")
            failures = 0
            items = [
                (row, col, dataset.oracle.answer(worker, row, col, rng))
                for row, col in body["cells"]
            ]
            client.post_answers(session_id, worker, items)
            requests_total += 1
            collected += len(items)
        estimates = client.get_estimates(session_id)
        requests_total += 1
        elapsed = time.perf_counter() - start
        metrics_text = client.get_metrics()
        client.delete_session(session_id)

    latencies = sorted(select_seconds)
    return {
        "serve_seed": int(seed),
        "serve_num_rows": num_rows,
        "serve_target_answers_per_task": target_answers_per_task,
        "serve_requests_total": requests_total,
        "serve_seconds": elapsed,
        "serve_requests_per_sec": requests_total / max(elapsed, 1e-12),
        "serve_select_p50_ms": _quantile(latencies, 0.50) * 1000.0,
        "serve_select_p99_ms": _quantile(latencies, 0.99) * 1000.0,
        "serve_answers_collected": estimates["answers_collected"],
        "serve_metrics_scraped": "repro_service_selects_served_total"
        in metrics_text,
        # Present only when the session ran a serving mode that reports
        # per-stage hot-path timings (the engine wrappers); the plain
        # assigner records no stages, so the histogram is legitimately
        # absent there.
        "serve_hotpath_metrics_scraped": "repro_hotpath_stage_seconds"
        in metrics_text,
    }
