"""Benchmarks: Figures 7, 8 and 9 — synthetic-table parameter sweeps."""

from conftest import FAST_MODEL, run_once

from repro.experiments import run_figure7, run_figure8, run_figure9


def test_figure7_number_of_columns(benchmark, report_writer):
    """Regenerate Figure 7: effect of the number of columns M."""
    report = run_once(
        benchmark, run_figure7, column_counts=(5, 10, 20), num_rows=25, trials=1,
        seed=23, model_kwargs=FAST_MODEL,
    )
    report_writer(report)
    assert [row[0] for row in report.rows] == [5, 10, 20]
    assert "T-Crowd error" in report.series and "T-Crowd MNAD" in report.series


def test_figure8_categorical_ratio(benchmark, report_writer):
    """Regenerate Figure 8: effect of the categorical-column ratio R."""
    report = run_once(
        benchmark, run_figure8, ratios=(0.2, 0.5, 0.8), num_rows=25, trials=1,
        seed=29, model_kwargs=FAST_MODEL,
    )
    report_writer(report)
    assert [row[0] for row in report.rows] == [0.2, 0.5, 0.8]


def test_figure9_average_difficulty(benchmark, report_writer):
    """Regenerate Figure 9: effect of the average cell difficulty."""
    report = run_once(
        benchmark, run_figure9, difficulties=(0.5, 1.5, 3.0), num_rows=25, trials=1,
        seed=31, model_kwargs=FAST_MODEL,
    )
    report_writer(report)
    headers = report.headers
    col = headers.index("T-Crowd error")
    easiest, hardest = report.rows[0], report.rows[-1]
    # Higher difficulty hurts accuracy (the paper's Figure 9 trend).
    assert easiest[col] <= hardest[col] + 1e-9
