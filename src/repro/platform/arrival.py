"""Worker arrival process.

On AMT, workers arrive in sessions: a worker picks up a HIT, usually
completes a few more, and leaves.  :class:`WorkerArrivalProcess` reproduces
this: workers are drawn from the pool proportionally to their activity, and
each arrival stays for a geometric number of consecutive HITs.

With ``churn_rate > 0`` the process additionally models workers leaving the
platform mid-session: only a sampled *active* subset of the pool (an
``active_fraction`` of it, activity-weighted) picks up HITs, and before
each arrival a churn event re-samples that subset with probability
``churn_rate``.  A churned-out worker is not gone for good — a later churn
event can re-activate them (re-arrival).  With ``churn_rate=0`` (the
default) the process draws exactly the same random sequence as before the
knob existed, so seeded traces are unchanged.
"""

from __future__ import annotations

from typing import Iterator, List, Optional


from repro.datasets.workers import WorkerPool
from repro.utils.rng import as_generator
from repro.utils.validation import require_in_range


class WorkerArrivalProcess:
    """Generates the sequence of workers requesting HITs."""

    def __init__(
        self,
        pool: WorkerPool,
        seed=None,
        session_continue_probability: float = 0.7,
        churn_rate: float = 0.0,
        active_fraction: float = 0.5,
    ) -> None:
        require_in_range(
            session_continue_probability, 0.0, 0.999, "session_continue_probability"
        )
        require_in_range(churn_rate, 0.0, 0.999, "churn_rate")
        require_in_range(active_fraction, 0.01, 1.0, "active_fraction")
        self.pool = pool
        self.session_continue_probability = float(session_continue_probability)
        self.churn_rate = float(churn_rate)
        self.active_fraction = float(active_fraction)
        self._rng = as_generator(seed)
        self._current: Optional[str] = None
        self._active: Optional[List[int]] = None
        if self.churn_rate > 0.0:
            self._resample_active()

    def active_worker_ids(self) -> List[str]:
        """Ids of the workers currently able to pick up HITs."""
        worker_ids = self.pool.worker_ids()
        if self._active is None:
            return worker_ids
        return [worker_ids[index] for index in self._active]

    def _resample_active(self) -> None:
        """One churn event: draw a fresh activity-weighted active subset."""
        worker_ids = self.pool.worker_ids()
        target = max(1, int(round(self.active_fraction * len(worker_ids))))
        chosen = self._rng.choice(
            len(worker_ids),
            size=min(target, len(worker_ids)),
            replace=False,
            p=self.pool.activities(),
        )
        self._active = sorted(int(index) for index in chosen)
        if self._current is not None:
            # A sticky worker who churned out ends their session immediately.
            active_ids = {worker_ids[index] for index in self._active}
            if self._current not in active_ids:
                self._current = None

    def next_worker(self) -> str:
        """Return the worker who requests the next HIT."""
        if self.churn_rate > 0.0 and self._rng.random() < self.churn_rate:
            self._resample_active()
        if (
            self._current is not None
            and self._rng.random() < self.session_continue_probability
        ):
            return self._current
        worker_ids = self.pool.worker_ids()
        if self._active is None:
            index = self._rng.choice(len(worker_ids), p=self.pool.activities())
        else:
            weights = self.pool.activities()[self._active]
            subset = self._rng.choice(
                len(self._active), p=weights / weights.sum()
            )
            index = self._active[int(subset)]
        self._current = worker_ids[int(index)]
        return self._current

    def stream(self, count: int) -> Iterator[str]:
        """Yield the next ``count`` arriving workers."""
        for _ in range(count):
            yield self.next_worker()
