"""T-Crowd: Effective Crowdsourcing for Tabular Data (ICDE 2018) — reproduction.

The :mod:`repro` package implements the complete T-Crowd system described in
the paper, together with every substrate the evaluation depends on:

* :mod:`repro.core` — the unified worker model, EM truth inference,
  information-gain based task assignment, and the structure-aware extension.
* :mod:`repro.engine` — the incremental assignment engine: per-session
  mutable indexes (answer counts, answered-cell masks, open-candidate pool)
  updated O(1) per answer that back the online loop of Algorithm 2.
* :mod:`repro.baselines` — all compared truth-inference and assignment
  baselines (Majority Voting, Median, Dawid & Skene, GLAD, ZenCrowd, GTM,
  CRH, CATD, CDAS, AskIt!, and the simple assignment heuristics).
* :mod:`repro.datasets` — the tabular dataset container, the synthetic table
  generator of Section 6.5, simulated Celebrity / Restaurant / Emotion
  datasets, worker-pool simulation, and noise injection.
* :mod:`repro.platform` — an AMT-like crowdsourcing platform simulator used
  for the end-to-end task-assignment experiments.
* :mod:`repro.metrics` — Error Rate, MNAD and supporting metrics.
* :mod:`repro.experiments` — one harness per table / figure of the paper.

Quickstart::

    from repro import datasets, TCrowdModel
    from repro.metrics import error_rate, mnad

    dataset = datasets.load_celebrity(seed=7)
    model = TCrowdModel(seed=7)
    result = model.fit(dataset.schema, dataset.answers)
    print(error_rate(result, dataset))
    print(mnad(result, dataset))
"""

from repro.core.answers import Answer, AnswerSet
from repro.core.assignment import AssignmentPolicy, TCrowdAssigner
from repro.core.inference import InferenceResult, TCrowdModel
from repro.core.posteriors import Posterior
from repro.core.restricted import TCrowdCategoricalOnly, TCrowdContinuousOnly
from repro.core.schema import AttributeType, Column, TableSchema
from repro.engine import SessionState

__version__ = "1.0.0"

__all__ = [
    "Answer",
    "AnswerSet",
    "AssignmentPolicy",
    "AttributeType",
    "Column",
    "InferenceResult",
    "Posterior",
    "SessionState",
    "TableSchema",
    "TCrowdAssigner",
    "TCrowdCategoricalOnly",
    "TCrowdContinuousOnly",
    "TCrowdModel",
    "__version__",
]
