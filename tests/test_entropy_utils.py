"""Tests for uniform entropy helpers and the shared numeric utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.entropy import (
    delta_entropy_comparable,
    differential_entropy,
    shannon_entropy,
    uniform_entropy,
)
from repro.core.posteriors import CategoricalPosterior, GaussianPosterior
from repro.utils import numerics, rng as rng_utils, validation
from repro.utils.exceptions import ConfigurationError


class TestEntropy:
    def test_shannon_entropy_uniform_is_log_n(self):
        assert shannon_entropy([0.25] * 4) == pytest.approx(np.log(4))

    def test_shannon_entropy_accepts_unnormalised(self):
        assert shannon_entropy([1, 1, 1, 1]) == pytest.approx(np.log(4))

    def test_shannon_entropy_degenerate_is_zero(self):
        assert shannon_entropy([1.0, 0.0]) == pytest.approx(0.0, abs=1e-9)

    def test_shannon_entropy_rejects_zero_mass(self):
        with pytest.raises(ConfigurationError):
            shannon_entropy([0.0, 0.0])

    def test_differential_entropy_monotone_in_variance(self):
        assert differential_entropy(4.0) > differential_entropy(1.0)

    def test_differential_entropy_can_be_negative(self):
        assert differential_entropy(1e-4) < 0

    def test_differential_entropy_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            differential_entropy(0.0)

    def test_uniform_entropy_dispatch(self):
        categorical = CategoricalPosterior.uniform(("a", "b"))
        continuous = GaussianPosterior(0.0, 1.0)
        assert uniform_entropy(categorical) == pytest.approx(categorical.entropy())
        assert uniform_entropy(continuous) == pytest.approx(continuous.entropy())

    def test_uniform_entropy_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            uniform_entropy("not a posterior")

    def test_delta_entropy(self):
        assert delta_entropy_comparable(2.0, 0.5) == pytest.approx(1.5)

    @given(st.lists(st.floats(0.01, 10.0), min_size=2, max_size=10))
    @settings(max_examples=50)
    def test_shannon_entropy_bounded_by_log_n(self, weights):
        value = shannon_entropy(weights)
        assert -1e-9 <= value <= np.log(len(weights)) + 1e-9


class TestNumerics:
    def test_safe_log_no_infinities(self):
        values = numerics.safe_log(np.array([0.0, 1e-20, 1.0]))
        assert np.all(np.isfinite(values))

    def test_safe_erf_clipped(self):
        assert 0.0 < float(numerics.safe_erf(0.0)) < 1e-6
        assert 1.0 - 1e-6 < float(numerics.safe_erf(100.0)) < 1.0

    def test_log_erf_finite(self):
        assert np.isfinite(float(numerics.log_erf(1e-8)))

    def test_normalize_log_probs(self):
        probs = numerics.normalize_log_probs(np.array([0.0, 0.0, np.log(2.0)]))
        assert probs.sum() == pytest.approx(1.0)
        assert probs[2] == pytest.approx(0.5)

    def test_normalize_log_probs_handles_large_values(self):
        probs = numerics.normalize_log_probs(np.array([1000.0, 999.0]))
        assert probs.sum() == pytest.approx(1.0)
        assert probs[0] > probs[1]

    def test_logsumexp(self):
        assert float(numerics.logsumexp(np.log([1.0, 3.0]))) == pytest.approx(np.log(4.0))

    def test_safe_var_floor(self):
        assert numerics.safe_var(np.array([2.0, 2.0, 2.0])) >= 1e-6
        assert numerics.safe_var(np.array([])) >= 1e-6

    def test_safe_var_matches_numpy(self):
        values = np.array([1.0, 2.0, 5.0])
        assert numerics.safe_var(values) == pytest.approx(float(np.var(values)))


class TestRngUtils:
    def test_as_generator_accepts_int_none_generator(self):
        generator = rng_utils.as_generator(3)
        assert isinstance(generator, np.random.Generator)
        assert rng_utils.as_generator(generator) is generator
        assert isinstance(rng_utils.as_generator(None), np.random.Generator)

    def test_as_generator_reproducible(self):
        a = rng_utils.as_generator(5).integers(0, 1000, 10)
        b = rng_utils.as_generator(5).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_spawn_generators_independent_and_reproducible(self):
        first = [g.integers(0, 1000, 5) for g in rng_utils.spawn_generators(7, 3)]
        second = [g.integers(0, 1000, 5) for g in rng_utils.spawn_generators(7, 3)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        assert not np.array_equal(first[0], first[1])

    def test_spawn_generators_from_generator(self):
        children = rng_utils.spawn_generators(np.random.default_rng(0), 2)
        assert len(children) == 2

    def test_spawn_generators_negative_count(self):
        with pytest.raises(ValueError):
            rng_utils.spawn_generators(0, -1)


class TestValidation:
    def test_require(self):
        validation.require(True, "ok")
        with pytest.raises(ConfigurationError):
            validation.require(False, "bad")

    def test_require_positive(self):
        validation.require_positive(1.0, "x")
        with pytest.raises(ConfigurationError):
            validation.require_positive(0, "x")

    def test_require_probability(self):
        validation.require_probability(0.5, "p")
        with pytest.raises(ConfigurationError):
            validation.require_probability(1.2, "p")

    def test_require_in_range(self):
        validation.require_in_range(3, 0, 5, "v")
        with pytest.raises(ConfigurationError):
            validation.require_in_range(9, 0, 5, "v")
