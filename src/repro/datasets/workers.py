"""Simulated crowd workers and the answer oracle.

The paper evaluates on answers collected from Amazon Mechanical Turk.  We
have no network access, so this module provides the synthetic equivalent:
a :class:`WorkerPool` of :class:`SimulatedWorker` objects whose latent
quality follows the long-tail distribution typical of AMT crowds (a few
experts, many average workers, a handful of spammers), and an
:class:`AnswerOracle` that generates an answer for any ``(worker, cell)``
pair from the paper's own generative model (Eqs. 1 and 3) plus a
contamination component so that no inference method is handed exactly the
model it assumes.

Workers are *consistent across columns* (one ``phi_u`` per worker, scaled by
row and column difficulty) and are given per-(worker, row) familiarity
factors, which is what produces the row-wise error correlations the
structure-aware assignment of Section 5.2 exploits (and which Figures 3 and
6 of the paper document in the real data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.schema import Column, TableSchema
from repro.core.worker_model import WorkerModel
from repro.utils.exceptions import ConfigurationError, DataError
from repro.utils.rng import as_generator
from repro.utils.validation import require_positive, require_probability


@dataclass(frozen=True)
class SimulatedWorker:
    """A simulated crowd worker.

    ``variance`` is the worker's inherent answer variance ``phi_u`` (lower is
    better); ``contamination`` is the probability that the worker ignores the
    task and answers uniformly at random (spammer behaviour); ``activity``
    is an (unnormalised) propensity to pick up HITs, producing the long-tail
    participation profile seen on real platforms.
    """

    worker_id: str
    variance: float
    contamination: float = 0.0
    activity: float = 1.0

    def __post_init__(self) -> None:
        require_positive(self.variance, "variance")
        require_probability(self.contamination, "contamination")
        require_positive(self.activity, "activity")

    def quality(self, epsilon: float = 1.0) -> float:
        """Unified quality implied by the worker's variance (Eq. 2)."""
        return float(WorkerModel(epsilon).quality_from_variance(self.variance))


class WorkerPool:
    """A pool of simulated workers with a long-tail quality distribution."""

    def __init__(self, workers: Sequence[SimulatedWorker]) -> None:
        if not workers:
            raise ConfigurationError("A worker pool needs at least one worker")
        self.workers: List[SimulatedWorker] = list(workers)
        self._by_id = {worker.worker_id: worker for worker in self.workers}
        if len(self._by_id) != len(self.workers):
            raise ConfigurationError("Worker ids must be unique")

    def __len__(self) -> int:
        return len(self.workers)

    def __iter__(self):
        return iter(self.workers)

    def worker(self, worker_id: str) -> SimulatedWorker:
        """Look a worker up by id."""
        try:
            return self._by_id[worker_id]
        except KeyError as exc:
            raise DataError(f"Unknown worker {worker_id!r}") from exc

    def worker_ids(self) -> List[str]:
        """All worker ids."""
        return [worker.worker_id for worker in self.workers]

    def variances(self) -> Dict[str, float]:
        """Latent variance of every worker (for calibration case studies)."""
        return {worker.worker_id: worker.variance for worker in self.workers}

    def activities(self) -> np.ndarray:
        """Participation propensities, normalised to sum to one."""
        weights = np.array([worker.activity for worker in self.workers], dtype=float)
        return weights / weights.sum()

    @classmethod
    def generate(
        cls,
        num_workers: int,
        seed=None,
        median_variance: float = 0.6,
        variance_spread: float = 0.9,
        spammer_fraction: float = 0.1,
        spammer_contamination: float = 0.6,
        base_contamination: float = 0.03,
        activity_exponent: float = 1.2,
        id_prefix: str = "w",
    ) -> "WorkerPool":
        """Generate a long-tail worker pool.

        Worker variances are log-normal (median ``median_variance``,
        log-space spread ``variance_spread``); a ``spammer_fraction`` of
        workers additionally answer uniformly at random with probability
        ``spammer_contamination``; participation propensities follow a
        Pareto-like power law with exponent ``activity_exponent``.
        """
        require_positive(num_workers, "num_workers")
        rng = as_generator(seed)
        variances = np.exp(
            rng.normal(np.log(median_variance), variance_spread, num_workers)
        )
        is_spammer = rng.random(num_workers) < spammer_fraction
        activities = (1.0 + np.arange(num_workers)) ** (-activity_exponent)
        rng.shuffle(activities)
        workers = []
        for index in range(num_workers):
            contamination = (
                spammer_contamination if is_spammer[index] else base_contamination
            )
            workers.append(
                SimulatedWorker(
                    worker_id=f"{id_prefix}{index:03d}",
                    variance=float(variances[index]),
                    contamination=float(contamination),
                    activity=float(activities[index]),
                )
            )
        return cls(workers)


@dataclass
class AnswerOracle:
    """Generates an answer for any ``(worker, cell)`` pair on demand.

    This is the stand-in for the live AMT crowd: the platform simulator and
    the dataset builders both draw answers from it.  The generative model is
    the paper's worker model (Eqs. 1 and 3) with effective variance
    ``alpha_i * beta_j * phi_u * familiarity_{u,i}``, where the optional
    per-(worker, row) familiarity factor induces the row-wise correlation of
    answer quality that Section 5.2 exploits.  Continuous noise is expressed
    in units of the column's ``noise_scale`` so that columns with very
    different ranges behave comparably.
    """

    schema: TableSchema
    ground_truth: Dict[tuple, object]
    pool: WorkerPool
    row_difficulty: np.ndarray
    column_difficulty: np.ndarray
    column_noise_scale: np.ndarray
    epsilon: float = 1.0
    row_familiarity_sigma: float = 0.0
    row_confusion_probability: float = 0.0
    row_confusion_multiplier: float = 8.0
    row_shift_sigma: float = 0.0
    bias_fraction: float = 0.0
    seed: Optional[int] = None
    _familiarity: Dict[tuple, float] = field(default_factory=dict)
    _bias: Dict[tuple, float] = field(default_factory=dict)
    _row_shift: Dict[tuple, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._worker_model = WorkerModel(self.epsilon)
        self._rng = as_generator(self.seed)
        if len(self.row_difficulty) != self.schema.num_rows:
            raise ConfigurationError("row_difficulty must have one entry per row")
        if len(self.column_difficulty) != self.schema.num_columns:
            raise ConfigurationError("column_difficulty must have one entry per column")
        if len(self.column_noise_scale) != self.schema.num_columns:
            raise ConfigurationError("column_noise_scale must have one entry per column")

    # -- variance model -------------------------------------------------------

    def familiarity(self, worker_id: str, row: int) -> float:
        """Per-(worker, row) familiarity factor (1.0 when the feature is off).

        Combines a smooth log-normal component with a discrete *confusion*
        event ("the worker does not recognise this celebrity"): with
        probability ``row_confusion_probability`` every answer of this worker
        on this row has its variance multiplied by
        ``row_confusion_multiplier``.  Both effects hit all columns of the
        row, producing the within-row error correlation of Figures 3 and 6.
        """
        if self.row_familiarity_sigma <= 0.0 and self.row_confusion_probability <= 0.0:
            return 1.0
        key = (worker_id, row)
        if key not in self._familiarity:
            factor = 1.0
            if self.row_familiarity_sigma > 0.0:
                factor *= float(
                    np.exp(self._rng.normal(0.0, self.row_familiarity_sigma))
                )
            if (
                self.row_confusion_probability > 0.0
                and self._rng.random() < self.row_confusion_probability
            ):
                factor *= self.row_confusion_multiplier
            self._familiarity[key] = factor
        return self._familiarity[key]

    def row_shift(self, worker_id: str, row: int) -> float:
        """Shared error shift of a worker on a row, in noise-scale units.

        Continuous answers of the same worker on the same entity move
        together (e.g. mis-locating a text span shifts both the start and the
        end offset); this is the signal the structure-aware gain of Section
        5.2 exploits on continuous columns.
        """
        if self.row_shift_sigma <= 0.0:
            return 0.0
        key = (worker_id, row)
        if key not in self._row_shift:
            self._row_shift[key] = float(self._rng.normal(0.0, self.row_shift_sigma))
        return self._row_shift[key]

    def worker_bias(self, worker_id: str, col: int) -> float:
        """Systematic per-(worker, column) offset on continuous answers.

        Real annotators are often *biased* (e.g. they systematically over-
        estimate ages); the bias makes plain averaging converge to the wrong
        value and is what keeps the aggregated MNAD away from zero even with
        many answers per task.  Expressed in units of the column noise scale.
        """
        if self.bias_fraction <= 0.0:
            return 0.0
        key = (worker_id, col)
        if key not in self._bias:
            self._bias[key] = float(
                self._rng.normal(0.0, self.bias_fraction)
                * float(self.column_noise_scale[col])
            )
        return self._bias[key]

    def effective_variance(self, worker_id: str, row: int, col: int) -> float:
        """Standardised answer variance for the worker on cell (row, col)."""
        worker = self.pool.worker(worker_id)
        return float(
            self.row_difficulty[row]
            * self.column_difficulty[col]
            * worker.variance
            * self.familiarity(worker_id, row)
        )

    # -- answer generation ------------------------------------------------------

    def answer(self, worker_id: str, row: int, col: int, rng=None):
        """Generate one answer of ``worker_id`` for cell ``(row, col)``."""
        rng = self._rng if rng is None else as_generator(rng)
        self.schema.validate_cell(row, col)
        column = self.schema.columns[col]
        worker = self.pool.worker(worker_id)
        truth = self.ground_truth[(row, col)]
        if rng.random() < worker.contamination:
            return self._random_answer(column, rng)
        variance = self.effective_variance(worker_id, row, col)
        if column.is_categorical:
            quality = float(self._worker_model.quality_from_variance(variance))
            index = self._worker_model.sample_categorical_answer(
                rng, column.label_index(truth), quality, column.num_labels
            )
            return column.labels[index]
        noise_scale = float(self.column_noise_scale[col])
        noise_std = np.sqrt(variance) * noise_scale
        value = (
            float(truth)
            + self.worker_bias(worker_id, col)
            + self.row_shift(worker_id, row) * noise_scale
            + float(rng.normal(0.0, noise_std))
        )
        return self._clip_to_domain(column, value)

    def _random_answer(self, column: Column, rng):
        if column.is_categorical:
            return column.labels[int(rng.integers(column.num_labels))]
        low, high = column.domain if column.domain else (0.0, 1.0)
        return float(rng.uniform(low, high))

    @staticmethod
    def _clip_to_domain(column: Column, value: float) -> float:
        if column.domain:
            low, high = column.domain
            return float(np.clip(value, low, high))
        return value
