"""CRH baseline (Li et al., SIGMOD 2014).

CRH resolves conflicts in heterogeneous data by minimising a joint loss:
it alternates between (a) updating the truths as weighted votes (categorical)
or weighted means (continuous, with per-column normalised distances) and
(b) updating the per-worker (source) weights as

    w_u = -log( loss_u / sum_v loss_v )

where ``loss_u`` is the worker's total normalised distance to the current
truths.  This is the standard CRH iteration applied with 0-1 loss for
categorical columns and normalised squared loss for continuous columns.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

import numpy as np

from repro.baselines.base import BaselineResult, TruthInferenceMethod
from repro.core.answers import AnswerSet
from repro.core.schema import TableSchema
from repro.utils.numerics import safe_var


class CRH(TruthInferenceMethod):
    """CRH: conflict resolution on heterogeneous data by joint weighted loss."""

    name = "CRH"

    def __init__(self, max_iterations: int = 20, tolerance: float = 1e-4,
                 smoothing_answers: float = 5.0) -> None:
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        # Crowd answers are long-tailed: many workers contribute only a
        # handful of answers, and an unsmoothed loss sum over-trusts a worker
        # who happened to be right a few times.  The per-worker loss is
        # therefore smoothed toward the crowd's average per-answer loss with
        # a pseudo-count of ``smoothing_answers`` answers.
        self.smoothing_answers = float(smoothing_answers)

    def fit(self, schema: TableSchema, answers: AnswerSet) -> BaselineResult:
        if len(answers) == 0:
            return BaselineResult(schema, self.name, {})
        workers = sorted({a.worker for a in answers})
        weights = {worker: 1.0 for worker in workers}

        # Per-column scale used to normalise continuous distances.
        column_var: Dict[int, float] = {}
        for col in schema.continuous_indices:
            values = np.array(
                [float(a.value) for a in answers.answers_in_column(col)], dtype=float
            )
            column_var[col] = safe_var(values)

        by_cell: Dict[Tuple[int, int], list] = defaultdict(list)
        for answer in answers:
            by_cell[(answer.row, answer.col)].append(answer)

        estimates = self._update_truths(schema, by_cell, weights, column_var)
        for _iteration in range(self.max_iterations):
            new_weights = self._update_weights(
                schema, answers, estimates, column_var, workers,
                self.smoothing_answers,
            )
            new_estimates = self._update_truths(schema, by_cell, new_weights, column_var)
            delta = max(
                abs(new_weights[worker] - weights[worker]) for worker in workers
            )
            weights, estimates = new_weights, new_estimates
            if delta < self.tolerance:
                break
        return BaselineResult(schema, self.name, estimates, worker_weights=weights)

    # -- update steps ------------------------------------------------------------

    @staticmethod
    def _update_truths(schema, by_cell, weights, column_var):
        estimates: Dict[Tuple[int, int], object] = {}
        for (row, col), cell_answers in by_cell.items():
            column = schema.columns[col]
            if column.is_categorical:
                scores: Dict[object, float] = defaultdict(float)
                for answer in cell_answers:
                    scores[answer.value] += weights[answer.worker]
                best = max(scores.values())
                tied = [label for label, score in scores.items() if score == best]
                estimates[(row, col)] = min(tied, key=column.label_index)
            else:
                total_weight = sum(weights[a.worker] for a in cell_answers)
                if total_weight <= 0:
                    estimates[(row, col)] = float(
                        np.mean([float(a.value) for a in cell_answers])
                    )
                else:
                    estimates[(row, col)] = float(
                        sum(weights[a.worker] * float(a.value) for a in cell_answers)
                        / total_weight
                    )
        return estimates

    @staticmethod
    def _update_weights(schema, answers, estimates, column_var, workers,
                        smoothing_answers: float = 0.0):
        losses = {worker: 0.0 for worker in workers}
        counts = {worker: 0 for worker in workers}
        for answer in answers:
            truth = estimates[(answer.row, answer.col)]
            column = schema.columns[answer.col]
            if column.is_categorical:
                losses[answer.worker] += 0.0 if answer.value == truth else 1.0
            else:
                losses[answer.worker] += (
                    (float(answer.value) - float(truth)) ** 2 / column_var[answer.col]
                )
            counts[answer.worker] += 1
        total_loss = sum(losses.values())
        total_count = sum(counts.values())
        if total_loss <= 0 or total_count <= 0:
            return {worker: 1.0 for worker in workers}
        crowd_mean_loss = total_loss / total_count
        # Smoothed per-answer loss, then CRH's -log(relative loss) weight.
        per_answer = {
            worker: (
                (losses[worker] + smoothing_answers * crowd_mean_loss)
                / (counts[worker] + smoothing_answers)
            )
            for worker in workers
        }
        normaliser = sum(per_answer.values())
        weights = {}
        for worker in workers:
            ratio = max(per_answer[worker], 1e-9) / normaliser
            weights[worker] = float(-np.log(ratio))
        return weights
