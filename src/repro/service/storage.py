"""Pluggable durability storage backends: segmented JSONL and SQLite.

:class:`~repro.service.wal.DurableSession` used to talk to one JSONL
write-ahead log plus one snapshot directory, both unbounded.  This module
extracts that contract into :class:`StorageBackend` — append / iterate /
truncate-before for the log, save / list / load / delete for snapshots —
with two implementations:

* :class:`JsonlBackend` — the existing local JSONL layout, extended with
  **segment rotation**: the log is a sequence of
  ``wal-<first_record:08d>.jsonl`` files (the legacy single ``wal.jsonl``
  is the segment starting at record 0), a new segment opens after
  ``rotate_every_records`` appends, and only the *newest* segment may
  carry a torn tail — an older segment that does not parse to EOF is a
  hard :class:`~repro.utils.exceptions.DurabilityError`, because the
  records after the corruption were already acknowledged.

* :class:`SqliteBackend` — a single ``durable.sqlite3`` file (stdlib
  ``sqlite3``).  Appends are transactions, so torn tails cannot exist;
  ``truncate_before`` is a ``DELETE``; rotation is meaningless (the knob
  is accepted and ignored).  ``fsync=True`` maps to
  ``PRAGMA synchronous=FULL``, the default to ``OFF`` (process-crash
  safe, the failure model the recovery benchmark exercises).

Record indexes are **global and immortal**: ``append`` returns the index
the record has in the full event history, and ``record_count`` keeps
counting past pruned prefixes.  ``truncate_before(n)`` may drop storage
for records ``< n`` (the JSONL backend only drops whole segments, so it
keeps a little more; SQLite drops exactly) — the session layer only calls
it with a bound proven covered by every retained snapshot, so a pruned
record is never needed again, not even by ``discard_lost_timeline``:
snapshots are discarded against the *global* count, which a lost tail can
shrink back to — but never below — the pruned prefix.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import sqlite3
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from repro.utils.exceptions import ConfigurationError, DurabilityError

_SNAPSHOT_NAME = re.compile(r"^snapshot-(\d+)-(\d+)\.json$")
_SEGMENT_NAME = re.compile(r"^wal-(\d+)\.jsonl$")

#: Durability backend names accepted by :func:`create_backend` (and by
#: ``DurabilitySpec.backend`` — keep ``repro.config.spec`` in sync).
BACKEND_NAMES = ("jsonl", "sqlite")


def _fsync_directory(directory: pathlib.Path) -> None:
    """fsync a directory so a rename/create inside it survives power loss."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# -- write-ahead log (single JSONL file) --------------------------------------


def read_wal(path: pathlib.Path) -> Tuple[List[dict], int]:
    """Read every complete record of a WAL file.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the offset
    one past the last complete record.  A torn tail — a final line without
    its newline, or one that no longer parses as JSON — is dropped, as is
    everything after it (a corrupt middle record invalidates the rest of
    the log: later records may depend on the lost event).
    """
    records: List[dict] = []
    valid_bytes = 0
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return records, valid_bytes
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            break  # torn tail: record written without its terminator
        line = data[offset:newline]
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            break  # corrupt record: drop it and everything after
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = newline + 1
        valid_bytes = offset
    return records, valid_bytes


class WriteAheadLog:
    """Append-only JSONL event log with torn-tail recovery.

    Opening an existing file truncates it back to its last complete record
    (so a torn write can never merge with the next append) and resumes the
    record count from there.  ``fsync=True`` forces every append to disk —
    full power-loss durability at a heavy per-event cost; the default
    flush-only mode survives process crashes, which is the failure model
    the recovery benchmark exercises.

    The on-disk file is the source of truth: only the record count and the
    newest record are held in memory, so a long-lived session's log costs
    O(1) memory regardless of how many events it serves.
    """

    def __init__(self, path, fsync: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.fsync = bool(fsync)
        records, valid_bytes = read_wal(self.path)
        self._count = len(records)
        self._last_record: Optional[dict] = records[-1] if records else None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        if self._file.tell() != valid_bytes:
            self._file.truncate(valid_bytes)
            self._file.seek(valid_bytes)
        self._closed = False

    @property
    def record_count(self) -> int:
        """Number of complete records in the log."""
        return self._count

    @property
    def last_record(self) -> Optional[dict]:
        """The newest complete record (``None`` on an empty log)."""
        return self._last_record

    @property
    def records(self) -> List[dict]:
        """All complete records, oldest first — re-read from disk.

        Every append was flushed before it was counted, so the read always
        sees at least ``record_count`` records.
        """
        return read_wal(self.path)[0]

    def append(self, record: dict) -> int:
        """Durably append one record; return its index."""
        if self._closed:
            raise DurabilityError(f"WAL {self.path} is closed")
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self._file.write(line.encode("utf-8"))
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self._count += 1
        self._last_record = record
        return self._count - 1

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if not self._closed:
            self._closed = True
            self._file.close()


# -- snapshots (JSONL layout) -------------------------------------------------


@dataclass(frozen=True)
class Snapshot:
    """One loaded snapshot (see :mod:`repro.service.wal` for the protocol)."""

    epoch: int
    answers_seen: int
    wal_records: int
    payload: dict
    path: Optional[pathlib.Path] = None

    @property
    def standalone(self) -> bool:
        """True when this snapshot can recover without any WAL prefix.

        Requires both the serialized model state and the answer prefix in
        the payload — the precondition for pruning the WAL records it
        covers (format-1 snapshots carried only the model, so they pin the
        whole prefix).
        """
        return (
            self.payload.get("model") is not None
            and self.payload.get("answers") is not None
        )


class SnapshotStore:
    """Atomic, epoch-ordered engine-state snapshot files in one directory."""

    def __init__(self, directory, fsync: bool = False) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)

    def save(self, payload: dict) -> pathlib.Path:
        """Write one snapshot atomically; return its path.

        With ``fsync=True`` the file content is fsynced before the rename
        and the directory after it, so the snapshot either exists complete
        or not at all even across power loss — matching the WAL's
        durability level (a flushed-but-unsynced snapshot could otherwise
        vanish while the log it covers survives).
        """
        epoch = int(payload["epoch"])
        answers_seen = int(payload["answers_seen"])
        name = f"snapshot-{epoch:06d}-{answers_seen:08d}.json"
        path = self.directory / name
        tmp = path.with_suffix(".json.tmp")
        data = (json.dumps(payload) + "\n").encode("utf-8")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if self.fsync:
            _fsync_directory(self.directory)
        return path

    def _entries(self) -> List[Tuple[int, int, pathlib.Path]]:
        found = []
        for path in self.directory.iterdir():
            match = _SNAPSHOT_NAME.match(path.name)
            if match:
                found.append((int(match.group(1)), int(match.group(2)), path))
        return sorted(found, key=lambda entry: (entry[0], entry[1]))

    def paths(self) -> List[pathlib.Path]:
        """Snapshot files, oldest epoch first."""
        return [path for _epoch, _seen, path in self._entries()]

    def epochs(self) -> List[int]:
        """Epoch numbers present, ascending."""
        return [epoch for epoch, _seen, _path in self._entries()]

    def next_epoch(self) -> int:
        """One past the highest epoch number any file has ever used here.

        Epochs must never be reused — not even those of snapshots that a
        recovery later discards — so a file name, once observed, always
        refers to the same immutable content.
        """
        entries = self._entries()
        return entries[-1][0] + 1 if entries else 0

    def load(self, epoch: int) -> Optional[Snapshot]:
        """Load one snapshot by epoch (``None`` if absent or unreadable)."""
        for found, _seen, path in self._entries():
            if found != epoch:
                continue
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                return Snapshot(
                    epoch=int(payload["epoch"]),
                    answers_seen=int(payload["answers_seen"]),
                    wal_records=int(payload["wal_records"]),
                    payload=payload,
                    path=path,
                )
            except (OSError, ValueError, KeyError):
                return None
        return None

    def delete(self, epoch: int) -> None:
        """Delete one snapshot file by epoch (idempotent)."""
        for found, _seen, path in self._entries():
            if found == epoch:
                path.unlink(missing_ok=True)

    def discard_lost_timeline(self, max_wal_records: int) -> List[pathlib.Path]:
        """Delete snapshots covering more WAL records than survive on disk.

        A crash that loses the WAL tail can strand snapshots describing
        events that no longer exist; they can never become valid again (the
        regrown log diverges from the lost one), and leaving them around
        would let a *later* recovery pick one once the new log grows past
        their record count.  Recovery calls this before replaying.
        """
        removed = []
        for _epoch, _seen, path in self._entries():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                stale = int(payload["wal_records"]) > max_wal_records
            except (OSError, ValueError, KeyError):
                continue  # unreadable files are merely skipped, never chosen
            if stale:
                path.unlink(missing_ok=True)
                removed.append(path)
        return removed

    def latest(self, max_wal_records: Optional[int] = None) -> Optional[Snapshot]:
        """Newest loadable snapshot covering at most ``max_wal_records``.

        Unreadable files and snapshots that claim more WAL records than
        survive on disk (possible when the log lost its tail after the
        snapshot was cut) are skipped — recovery then falls back to an
        older snapshot or to a full replay.
        """
        for path in reversed(self.paths()):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                snapshot = Snapshot(
                    epoch=int(payload["epoch"]),
                    answers_seen=int(payload["answers_seen"]),
                    wal_records=int(payload["wal_records"]),
                    payload=payload,
                    path=path,
                )
            except (OSError, ValueError, KeyError):
                continue
            if max_wal_records is not None and snapshot.wal_records > max_wal_records:
                continue
            return snapshot
        return None


# -- the backend contract -----------------------------------------------------


class StorageBackend:
    """Log + snapshot storage for one durable session directory.

    The write-ahead log side speaks **global record indexes** (0-based
    over the full event history, surviving pruning); the snapshot side
    speaks the ``(epoch, answers_seen, wal_records)`` protocol of
    :class:`Snapshot`.  Concrete backends implement the primitive methods;
    the selection/GC policies (:meth:`latest_snapshot`,
    :meth:`discard_lost_timeline`, :meth:`prune_snapshots`,
    :meth:`gc_cover`) are shared.
    """

    name = "abstract"

    # log primitives ----------------------------------------------------------

    def append(self, record: dict) -> int:
        """Durably append one record; return its global index."""
        raise NotImplementedError

    def records(self) -> List[dict]:
        """Surviving records, oldest first (global index ``first_record_index``)."""
        raise NotImplementedError

    @property
    def record_count(self) -> int:
        """Global record count — pruned prefix included."""
        raise NotImplementedError

    @property
    def first_record_index(self) -> int:
        """Global index of the oldest surviving record (== count when empty)."""
        raise NotImplementedError

    @property
    def last_record(self) -> Optional[dict]:
        """The newest surviving record (``None`` on an empty log)."""
        raise NotImplementedError

    @property
    def segment_count(self) -> int:
        """On-disk log pieces (JSONL: files; SQLite: always 1)."""
        raise NotImplementedError

    def truncate_before(self, index: int) -> int:
        """Drop storage for records below the global ``index`` where cheap.

        Backends may keep more than asked (JSONL only drops whole sealed
        segments) but must never drop a record at or above ``index``.
        Returns the number of records actually dropped.
        """
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError

    # snapshot primitives -----------------------------------------------------

    def save_snapshot(self, payload: dict) -> None:
        raise NotImplementedError

    def snapshot_epochs(self) -> List[int]:
        """Epochs of the retained snapshots, ascending."""
        raise NotImplementedError

    def load_snapshot(self, epoch: int) -> Optional[Snapshot]:
        """Load one snapshot (``None`` if missing or unreadable)."""
        raise NotImplementedError

    def delete_snapshot(self, epoch: int) -> None:
        raise NotImplementedError

    def next_epoch(self) -> int:
        """One past the highest epoch ever used (deleted snapshots included)."""
        raise NotImplementedError

    # shared policies ---------------------------------------------------------

    @property
    def snapshot_count(self) -> int:
        return len(self.snapshot_epochs())

    def latest_snapshot(
        self, max_wal_records: Optional[int] = None
    ) -> Optional[Snapshot]:
        """Newest loadable snapshot covering at most ``max_wal_records``."""
        for epoch in reversed(self.snapshot_epochs()):
            snapshot = self.load_snapshot(epoch)
            if snapshot is None:
                continue
            if max_wal_records is not None and snapshot.wal_records > max_wal_records:
                continue
            return snapshot
        return None

    def discard_lost_timeline(self, max_wal_records: int) -> List[int]:
        """Delete snapshots covering more WAL records than survive.

        ``max_wal_records`` is the *global* record count, which a lost
        tail can shrink back to — but never below — the pruned prefix, so
        GC and lost-timeline discard compose: a pruned timeline stays
        pruned.  Returns the deleted epochs.
        """
        removed = []
        for epoch in self.snapshot_epochs():
            snapshot = self.load_snapshot(epoch)
            if snapshot is None:
                continue  # unreadable snapshots are skipped, never chosen
            if snapshot.wal_records > max_wal_records:
                self.delete_snapshot(epoch)
                removed.append(epoch)
        return removed

    def prune_snapshots(self, keep: int) -> List[int]:
        """Keep only the newest ``keep`` snapshots; return the deleted epochs."""
        if keep < 1:
            raise ConfigurationError(f"keep_snapshots must be >= 1, got {keep}")
        epochs = self.snapshot_epochs()
        removed = []
        for epoch in epochs[:-keep]:
            self.delete_snapshot(epoch)
            removed.append(epoch)
        return removed

    def gc_cover(self) -> int:
        """Highest global record index that no retained snapshot needs.

        Every retained snapshot must be *standalone* (model + answer
        prefix in the payload) for its covered records to be prunable; if
        any is not — or any is unreadable — the cover is 0 and nothing is
        pruned.  The cover is the **oldest** retained snapshot's record
        count: should recovery ever skip the newest snapshots (e.g. a lost
        tail discarded them), an older one plus its surviving tail must
        still reach the same state.
        """
        epochs = self.snapshot_epochs()
        if not epochs:
            return 0
        cover: Optional[int] = None
        for epoch in epochs:
            snapshot = self.load_snapshot(epoch)
            if snapshot is None or not snapshot.standalone:
                return 0
            cover = (
                snapshot.wal_records
                if cover is None
                else min(cover, snapshot.wal_records)
            )
        return cover or 0


# -- JSONL backend (segment rotation) -----------------------------------------


@dataclass
class _Segment:
    """One sealed (read-only) WAL segment file."""

    first: int
    count: int
    path: pathlib.Path


class JsonlBackend(StorageBackend):
    """Segmented JSONL files + one snapshot file per epoch.

    Without ``rotate_every_records`` the layout is byte-compatible with
    the historical single ``wal.jsonl``.  With rotation, the active
    segment seals once it holds ``rotate_every_records`` records and a new
    ``wal-<first_record:08d>.jsonl`` opens; sealed segments are immutable,
    so only the active (newest) one can carry a torn tail — an older
    segment that does not parse to its end, or a gap between consecutive
    segments, is a hard :class:`DurabilityError`.
    """

    name = "jsonl"

    def __init__(
        self,
        directory,
        fsync: bool = False,
        rotate_every_records: Optional[int] = None,
    ) -> None:
        if rotate_every_records is not None and rotate_every_records < 1:
            raise ConfigurationError(
                f"rotate_every_records must be >= 1, got {rotate_every_records}"
            )
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self.rotate_every_records = rotate_every_records
        self.snapshots = SnapshotStore(self.directory / "snapshots", fsync=fsync)
        self._sealed: List[_Segment] = []
        self._open_log()

    def _segment_files(self) -> List[Tuple[int, pathlib.Path]]:
        found: List[Tuple[int, pathlib.Path]] = []
        legacy = self.directory / "wal.jsonl"
        if legacy.exists():
            found.append((0, legacy))
        for path in self.directory.iterdir():
            match = _SEGMENT_NAME.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        found.sort(key=lambda item: item[0])
        for (first, path), (other, other_path) in zip(found, found[1:]):
            if first == other:
                raise DurabilityError(
                    f"WAL segments {path.name} and {other_path.name} both "
                    f"start at record {first}; the durable directory is "
                    "inconsistent"
                )
        return found

    def _open_log(self) -> None:
        segments = self._segment_files()
        if not segments:
            if self.rotate_every_records is None:
                path = self.directory / "wal.jsonl"
            else:
                path = self.directory / "wal-00000000.jsonl"
            first = 0
        else:
            first, path = segments[-1]
            for seg_first, seg_path in segments[:-1]:
                records, valid_bytes = read_wal(seg_path)
                if valid_bytes != seg_path.stat().st_size:
                    raise DurabilityError(
                        f"sealed WAL segment {seg_path.name} is corrupt "
                        "(only the newest segment may carry a torn tail)"
                    )
                self._sealed.append(_Segment(seg_first, len(records), seg_path))
            expected = first
            for segment in reversed(self._sealed):
                if segment.first + segment.count != expected:
                    raise DurabilityError(
                        f"WAL segment {segment.path.name} holds records "
                        f"[{segment.first}, {segment.first + segment.count}) "
                        f"but the next segment starts at {expected}; the "
                        "log has a gap"
                    )
                expected = segment.first
        self._active_first = first
        self._active = WriteAheadLog(path, fsync=self.fsync)
        self._last: Optional[dict] = self._active.last_record
        if self._last is None and self._sealed:
            tail = read_wal(self._sealed[-1].path)[0]
            self._last = tail[-1] if tail else None

    # log primitives ----------------------------------------------------------

    def append(self, record: dict) -> int:
        if (
            self.rotate_every_records is not None
            and self._active.record_count >= self.rotate_every_records
        ):
            self._rotate()
        index = self._active_first + self._active.append(record)
        self._last = record
        return index

    def _rotate(self) -> None:
        sealed_first = self._active_first
        sealed_count = self._active.record_count
        sealed_path = self._active.path
        if self.fsync:
            os.fsync(self._active._file.fileno())
        self._active.close()
        self._sealed.append(_Segment(sealed_first, sealed_count, sealed_path))
        first = sealed_first + sealed_count
        self._active_first = first
        self._active = WriteAheadLog(
            self.directory / f"wal-{first:08d}.jsonl", fsync=self.fsync
        )
        if self.fsync:
            _fsync_directory(self.directory)

    def records(self) -> List[dict]:
        out: List[dict] = []
        for segment in self._sealed:
            out.extend(read_wal(segment.path)[0])
        out.extend(self._active.records)
        return out

    @property
    def record_count(self) -> int:
        return self._active_first + self._active.record_count

    @property
    def first_record_index(self) -> int:
        if self._sealed:
            return self._sealed[0].first
        return self._active_first

    @property
    def last_record(self) -> Optional[dict]:
        return self._last

    @property
    def segment_count(self) -> int:
        return len(self._sealed) + 1

    def truncate_before(self, index: int) -> int:
        dropped = 0
        keep: List[_Segment] = []
        for segment in self._sealed:
            if segment.first + segment.count <= index:
                segment.path.unlink(missing_ok=True)
                dropped += segment.count
            else:
                keep.append(segment)
        if dropped and self.fsync:
            _fsync_directory(self.directory)
        self._sealed = keep
        return dropped

    def close(self) -> None:
        self._active.close()

    @property
    def closed(self) -> bool:
        return self._active._closed

    # snapshot primitives -----------------------------------------------------

    def save_snapshot(self, payload: dict) -> None:
        self.snapshots.save(payload)

    def snapshot_epochs(self) -> List[int]:
        return self.snapshots.epochs()

    def load_snapshot(self, epoch: int) -> Optional[Snapshot]:
        return self.snapshots.load(epoch)

    def delete_snapshot(self, epoch: int) -> None:
        self.snapshots.delete(epoch)

    def next_epoch(self) -> int:
        return self.snapshots.next_epoch()


# -- SQLite backend -----------------------------------------------------------


class SqliteBackend(StorageBackend):
    """Log + snapshots in one stdlib ``sqlite3`` database file.

    Every append commits a transaction, so a crash can never leave a torn
    record — the torn-tail machinery of the JSONL layout simply does not
    apply.  ``rotate_every_records`` is accepted for interface parity and
    ignored (``segment_count`` is always 1); ``truncate_before`` deletes
    rows exactly.  The pruned-prefix bookkeeping (global count / first
    index) persists in a ``meta`` table, as does the epoch
    high-water-mark so epochs are never reused even after snapshots are
    deleted.
    """

    name = "sqlite"
    FILENAME = "durable.sqlite3"

    def __init__(
        self,
        directory,
        fsync: bool = False,
        rotate_every_records: Optional[int] = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self.rotate_every_records = rotate_every_records
        self.path = self.directory / self.FILENAME
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._closed = False
        self._conn.execute(
            "PRAGMA synchronous = %s" % ("FULL" if self.fsync else "OFF")
        )
        with self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS wal ("
                "idx INTEGER PRIMARY KEY, record TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS snapshots ("
                "epoch INTEGER PRIMARY KEY, answers_seen INTEGER NOT NULL, "
                "wal_records INTEGER NOT NULL, payload TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                "key TEXT PRIMARY KEY, value INTEGER NOT NULL)"
            )
        self._count = self._next_index()

    def _meta(self, key: str, default: int = 0) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return int(row[0]) if row is not None else default

    def _set_meta(self, key: str, value: int) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, int(value)),
        )

    def _next_index(self) -> int:
        row = self._conn.execute("SELECT MAX(idx) FROM wal").fetchone()
        if row is not None and row[0] is not None:
            return int(row[0]) + 1
        return self._meta("pruned_before")

    # log primitives ----------------------------------------------------------

    def append(self, record: dict) -> int:
        if self._closed:
            raise DurabilityError(f"storage {self.path} is closed")
        index = self._count
        with self._conn:
            self._conn.execute(
                "INSERT INTO wal (idx, record) VALUES (?, ?)",
                (index, json.dumps(record, separators=(",", ":"))),
            )
        self._count = index + 1
        return index

    def records(self) -> List[dict]:
        rows = self._conn.execute("SELECT record FROM wal ORDER BY idx").fetchall()
        return [json.loads(row[0]) for row in rows]

    @property
    def record_count(self) -> int:
        return self._count

    @property
    def first_record_index(self) -> int:
        row = self._conn.execute("SELECT MIN(idx) FROM wal").fetchone()
        if row is not None and row[0] is not None:
            return int(row[0])
        return self._count

    @property
    def last_record(self) -> Optional[dict]:
        row = self._conn.execute(
            "SELECT record FROM wal ORDER BY idx DESC LIMIT 1"
        ).fetchone()
        return json.loads(row[0]) if row is not None else None

    @property
    def segment_count(self) -> int:
        return 1

    def truncate_before(self, index: int) -> int:
        bound = min(int(index), self._count)
        with self._conn:
            cursor = self._conn.execute(
                "DELETE FROM wal WHERE idx < ?", (bound,)
            )
            self._set_meta(
                "pruned_before", max(self._meta("pruned_before"), bound)
            )
        return cursor.rowcount

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._conn.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # snapshot primitives -----------------------------------------------------

    def save_snapshot(self, payload: dict) -> None:
        epoch = int(payload["epoch"])
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO snapshots "
                "(epoch, answers_seen, wal_records, payload) VALUES (?, ?, ?, ?)",
                (
                    epoch,
                    int(payload["answers_seen"]),
                    int(payload["wal_records"]),
                    json.dumps(payload),
                ),
            )
            self._set_meta("epoch_next", max(self._meta("epoch_next"), epoch + 1))

    def snapshot_epochs(self) -> List[int]:
        rows = self._conn.execute(
            "SELECT epoch FROM snapshots ORDER BY epoch"
        ).fetchall()
        return [int(row[0]) for row in rows]

    def load_snapshot(self, epoch: int) -> Optional[Snapshot]:
        row = self._conn.execute(
            "SELECT payload FROM snapshots WHERE epoch = ?", (int(epoch),)
        ).fetchone()
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
            return Snapshot(
                epoch=int(payload["epoch"]),
                answers_seen=int(payload["answers_seen"]),
                wal_records=int(payload["wal_records"]),
                payload=payload,
                path=None,
            )
        except (ValueError, KeyError):
            return None

    def delete_snapshot(self, epoch: int) -> None:
        with self._conn:
            self._conn.execute(
                "DELETE FROM snapshots WHERE epoch = ?", (int(epoch),)
            )

    def next_epoch(self) -> int:
        epochs = self.snapshot_epochs()
        floor = epochs[-1] + 1 if epochs else 0
        return max(self._meta("epoch_next"), floor)


# -- factory ------------------------------------------------------------------


STORAGE_BACKENDS: Dict[str, Type[StorageBackend]] = {
    JsonlBackend.name: JsonlBackend,
    SqliteBackend.name: SqliteBackend,
}


def create_backend(
    directory,
    backend: str = "jsonl",
    fsync: bool = False,
    rotate_every_records: Optional[int] = None,
) -> StorageBackend:
    """Build the named storage backend over ``directory``."""
    cls = STORAGE_BACKENDS.get(backend)
    if cls is None:
        raise ConfigurationError(
            f"Unknown durability backend {backend!r}; expected one of "
            f"{sorted(STORAGE_BACKENDS)}"
        )
    return cls(directory, fsync=fsync, rotate_every_records=rotate_every_records)
