"""Unified worker quality model of Section 4.1 and 4.2.

A worker ``u`` has a single latent answer variance ``phi_u``; answering cell
``c_ij`` (row difficulty ``alpha_i``, column difficulty ``beta_j``) the
effective variance is ``phi_uij = alpha_i * beta_j * phi_u``.  The worker's
unified quality is the probability mass of the Gaussian answer distribution
within ``eps`` of the truth:

    q_uij = erf( eps / sqrt(2 * alpha_i * beta_j * phi_u) )        (Eq. 2)

which serves both as the probability of a correct categorical answer (Eq. 3)
and as the summary of the continuous-answer variance (Eq. 1).  The same model
is used generatively by the dataset simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from repro.utils.numerics import safe_erf
from repro.utils.validation import require_positive, require_probability


@dataclass(frozen=True)
class WorkerModel:
    """The erf-based unified quality model with window parameter ``eps``."""

    epsilon: float = 1.0

    def __post_init__(self) -> None:
        require_positive(self.epsilon, "epsilon")

    # -- quality <-> variance ------------------------------------------------

    def quality_from_variance(self, variance):
        """Unified quality ``q = erf(eps / sqrt(2 * variance))`` (Eq. 2)."""
        variance = np.asarray(variance, dtype=float)
        return safe_erf(self.epsilon / np.sqrt(2.0 * variance))

    def variance_from_quality(self, quality) -> float:
        """Invert Eq. 2: the answer variance that yields ``quality``."""
        require_probability(quality, "quality")
        quality = float(np.clip(quality, 1e-9, 1.0 - 1e-9))
        return float((self.epsilon / (np.sqrt(2.0) * special.erfinv(quality))) ** 2)

    def answer_variance(self, alpha, beta, phi):
        """Effective answer variance ``phi_uij = alpha_i * beta_j * phi_u``."""
        return np.asarray(alpha, dtype=float) * np.asarray(beta, dtype=float) * np.asarray(phi, dtype=float)

    def cell_quality(self, alpha, beta, phi):
        """Per-cell quality ``q_uij = erf(eps / sqrt(2 alpha beta phi))``."""
        return self.quality_from_variance(self.answer_variance(alpha, beta, phi))

    # -- likelihoods ---------------------------------------------------------

    def continuous_log_likelihood(self, value, truth, variance):
        """Log of Eq. 1 evaluated at ``value``."""
        variance = np.asarray(variance, dtype=float)
        diff = np.asarray(value, dtype=float) - np.asarray(truth, dtype=float)
        return -0.5 * np.log(2.0 * np.pi * variance) - diff**2 / (2.0 * variance)

    def categorical_log_likelihood(self, is_correct, quality, num_labels):
        """Log of Eq. 3: ``log q`` if the answer equals the truth, else
        ``log((1 - q) / (|L| - 1))``."""
        quality = np.clip(np.asarray(quality, dtype=float), 1e-12, 1.0 - 1e-12)
        wrong = (1.0 - quality) / max(num_labels - 1, 1)
        is_correct = np.asarray(is_correct, dtype=bool)
        return np.where(is_correct, np.log(quality), np.log(wrong))

    # -- generative sampling (used by the platform / dataset simulators) ------

    def sample_continuous_answer(self, rng: np.random.Generator, truth: float, variance: float) -> float:
        """Draw one continuous answer from Eq. 1."""
        require_positive(variance, "variance")
        return float(rng.normal(truth, np.sqrt(variance)))

    def sample_categorical_answer(
        self,
        rng: np.random.Generator,
        truth_index: int,
        quality: float,
        num_labels: int,
    ) -> int:
        """Draw one categorical answer (as a label index) from Eq. 3."""
        quality = float(np.clip(quality, 0.0, 1.0))
        if rng.random() < quality:
            return truth_index
        others = [z for z in range(num_labels) if z != truth_index]
        if not others:
            return truth_index
        return int(rng.choice(others))
