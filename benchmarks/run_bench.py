"""Entry point that records the engine's timing baseline to BENCH_engine.json.

Runs the end-to-end online assignment loop of ``measure_engine_speedup`` at
the Algorithm 2 cadence (``refit_every=1``) on the seed path (cold EM, scalar
gains, full candidate rescans) and on the engine paths (incremental indexes +
vectorised batch gains, with and without warm-started EM), then writes the
wall-clock numbers and the decision-equivalence checks as JSON.

Run from the repo root::

    PYTHONPATH=src python benchmarks/run_bench.py [--out BENCH_engine.json]

``--smoke`` shrinks the scenario so CI can exercise the full code path in a
few seconds (the recorded speedup of a smoke run is not a baseline).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.efficiency import measure_engine_speedup  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="where to write the JSON baseline (default: repo root)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rows", type=int, default=60)
    parser.add_argument("--target", type=float, default=2.0,
                        help="budget in answers per task")
    parser.add_argument("--refit-every", type=int, default=1)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scenario for CI (not a baseline)")
    args = parser.parse_args(argv)

    rows = 12 if args.smoke else args.rows
    target = 1.5 if args.smoke else args.target
    stats = measure_engine_speedup(
        seed=args.seed,
        num_rows=rows,
        target_answers_per_task=target,
        refit_every=args.refit_every,
    )
    payload = {
        "benchmark": "engine_online_loop",
        "smoke": bool(args.smoke),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        **stats,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print(json.dumps(payload, indent=2))
    if not stats["identical_assignments"]:
        print("FAIL: exact engine path diverged from the seed path", file=sys.stderr)
        return 1
    if not args.smoke and stats["speedup"] < 3.0:
        print(
            f"FAIL: exact-path speedup {stats['speedup']:.2f}x below the 3x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
