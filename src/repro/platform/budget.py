"""Budget accounting for a crowdsourcing session.

The paper expresses budgets as the average number of answers per task (each
answer costs the same); :class:`Budget` tracks answers spent against a total
and can convert to/from answers-per-task for a given schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schema import TableSchema
from repro.utils.validation import require_positive


@dataclass
class Budget:
    """A budget expressed in total answers (one answer = one unit of cost)."""

    total_answers: int
    cost_per_answer: float = 0.05
    spent_answers: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        require_positive(self.total_answers, "total_answers")

    @classmethod
    def from_answers_per_task(
        cls, schema: TableSchema, answers_per_task: float, cost_per_answer: float = 0.05
    ) -> "Budget":
        """Budget that allows ``answers_per_task`` answers per cell on average."""
        total = int(round(answers_per_task * schema.num_cells))
        return cls(total_answers=total, cost_per_answer=cost_per_answer)

    @property
    def remaining_answers(self) -> int:
        """Answers that can still be purchased."""
        return max(self.total_answers - self.spent_answers, 0)

    @property
    def exhausted(self) -> bool:
        """True once the whole budget has been spent."""
        return self.spent_answers >= self.total_answers

    @property
    def spent_money(self) -> float:
        """Money spent so far (cost per answer times answers)."""
        return self.spent_answers * self.cost_per_answer

    def charge(self, answers: int = 1) -> None:
        """Record the purchase of ``answers`` answers."""
        if answers < 0:
            raise ValueError(f"answers must be non-negative, got {answers}")
        self.spent_answers += answers

    def answers_per_task(self, schema: TableSchema) -> float:
        """Average answers per cell purchased so far."""
        return self.spent_answers / schema.num_cells
