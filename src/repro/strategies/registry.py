"""Build live strategy objects from a :class:`~repro.config.StrategySpec`."""

from __future__ import annotations

from typing import Optional

from repro.config.spec import STRATEGY_NAMES, StrategySpec
from repro.strategies.base import AssignmentStrategy
from repro.strategies.zoo import (
    BudgetVoIStrategy,
    EpsilonGreedyStrategy,
    RandomStrategy,
    RoundRobinStrategy,
    UncertaintyStrategy,
)
from repro.utils.exceptions import ConfigurationError

_SIMPLE = {
    "random": RandomStrategy,
    "round_robin": RoundRobinStrategy,
    "uncertainty": UncertaintyStrategy,
    "budget_voi": BudgetVoIStrategy,
}


def build_strategy(spec: Optional[StrategySpec]) -> Optional[AssignmentStrategy]:
    """The live strategy a :class:`~repro.config.StrategySpec` describes.

    Returns ``None`` for ``"paper"`` (and for ``spec=None``): the default
    strategy *is* the assigner's own gain-based selector, and returning
    ``None`` keeps that path byte-for-byte untouched — the invariant the
    ``strategy_default_identical`` benchmark bit pins.
    """
    if spec is None or spec.name == "paper":
        return None
    if spec.name == "epsilon_greedy":
        base = None
        if spec.base != "paper":
            # The flat spec knobs (confidence/min_answers/seed) apply to
            # the base too — one spec document describes the composition.
            base = build_strategy(
                StrategySpec(
                    name=spec.base,
                    confidence=spec.confidence,
                    min_answers=spec.min_answers,
                    seed=spec.seed,
                )
            )
        return EpsilonGreedyStrategy(spec, base)
    try:
        return _SIMPLE[spec.name](spec)
    except KeyError:
        raise ConfigurationError(
            f"Unknown strategy {spec.name!r}; expected one of "
            f"{list(STRATEGY_NAMES)}"
        ) from None
