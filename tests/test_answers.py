"""Unit tests for answers and answer containers (repro.core.answers)."""

import numpy as np
import pytest

from repro.core.answers import Answer, AnswerSet, IndexedAnswers
from repro.core.schema import Column, TableSchema
from repro.utils.exceptions import DataError


@pytest.fixture()
def schema():
    return TableSchema.build(
        "entity",
        [
            Column.categorical("cat", ["a", "b", "c"]),
            Column.continuous("num", (0, 100)),
        ],
        4,
    )


@pytest.fixture()
def answers(schema):
    answer_set = AnswerSet(schema)
    answer_set.add_answer("w1", 0, 0, "a")
    answer_set.add_answer("w2", 0, 0, "b")
    answer_set.add_answer("w1", 0, 1, 10.0)
    answer_set.add_answer("w2", 0, 1, 12.0)
    answer_set.add_answer("w1", 1, 0, "c")
    answer_set.add_answer("w3", 1, 1, 55)
    return answer_set


class TestAnswer:
    def test_cell(self):
        assert Answer("w", 2, 3, "x").cell() == (2, 3)

    def test_answers_are_immutable(self):
        answer = Answer("w", 0, 0, "a")
        with pytest.raises(AttributeError):
            answer.value = "b"


class TestAnswerSet:
    def test_len_and_iteration(self, answers):
        assert len(answers) == 6
        assert len(list(answers)) == 6

    def test_getitem(self, answers):
        assert answers[0].worker == "w1"

    def test_add_validates_cell(self, schema):
        answer_set = AnswerSet(schema)
        with pytest.raises(DataError):
            answer_set.add_answer("w", 10, 0, "a")

    def test_add_validates_label(self, schema):
        answer_set = AnswerSet(schema)
        with pytest.raises(DataError):
            answer_set.add_answer("w", 0, 0, "not-a-label")

    def test_add_validates_numeric(self, schema):
        answer_set = AnswerSet(schema)
        with pytest.raises(DataError):
            answer_set.add_answer("w", 0, 1, "abc")

    def test_continuous_values_coerced_to_float(self, answers):
        stored = answers.answers_for_cell(1, 1)[0]
        assert isinstance(stored.value, float)
        assert stored.value == 55.0

    def test_answers_for_cell(self, answers):
        cell = answers.answers_for_cell(0, 0)
        assert {a.worker for a in cell} == {"w1", "w2"}
        assert answers.answers_for_cell(3, 0) == []

    def test_answers_by_worker(self, answers):
        assert len(answers.answers_by_worker("w1")) == 3
        assert answers.answers_by_worker("unknown") == []

    def test_answers_in_row_and_column(self, answers):
        assert len(answers.answers_in_row(0)) == 4
        assert len(answers.answers_in_column(1)) == 3

    def test_worker_answers_in_row(self, answers):
        in_row = answers.worker_answers_in_row("w1", 0)
        assert len(in_row) == 2
        assert all(a.row == 0 for a in in_row)

    def test_has_answered(self, answers):
        assert answers.has_answered("w1", 0, 0)
        assert not answers.has_answered("w3", 0, 0)

    def test_workers_in_first_seen_order(self, answers):
        assert answers.workers == ["w1", "w2", "w3"]
        assert answers.num_workers == 3

    def test_answer_counts(self, answers, schema):
        counts = answers.answer_counts()
        assert counts.shape == (schema.num_rows, schema.num_columns)
        assert counts[0, 0] == 2
        assert counts[3, 1] == 0
        assert counts.sum() == len(answers)

    def test_mean_answers_per_cell(self, answers, schema):
        expected = len(answers) / schema.num_cells
        assert answers.mean_answers_per_cell() == pytest.approx(expected)

    def test_copy_is_independent(self, answers):
        clone = answers.copy()
        clone.add_answer("w9", 3, 0, "a")
        assert len(clone) == len(answers) + 1

    def test_extend(self, schema):
        answer_set = AnswerSet(schema)
        answer_set.extend([Answer("w", 0, 0, "a"), Answer("w", 1, 0, "b")])
        assert len(answer_set) == 2

    def test_restricted_to_columns(self, answers):
        only_cat = answers.restricted_to_columns([0])
        assert len(only_cat) == 3
        assert all(a.col == 0 for a in only_cat)
        only_cont = answers.restricted_to_columns([1])
        assert len(only_cont) == 3

    def test_constructor_accepts_iterable(self, schema):
        answer_set = AnswerSet(schema, [Answer("w", 0, 0, "a")])
        assert len(answer_set) == 1


class TestIndexedAnswers:
    def test_empty_answer_set_rejected(self, schema):
        with pytest.raises(DataError):
            IndexedAnswers(AnswerSet(schema))

    def test_arrays_shapes(self, answers):
        indexed = answers.indexed()
        assert indexed.num_answers == len(answers)
        assert indexed.rows.shape == indexed.cols.shape == indexed.workers.shape
        assert indexed.num_workers == 3

    def test_categorical_vs_continuous_masks(self, answers):
        indexed = answers.indexed()
        assert int(indexed.is_categorical.sum()) == 3
        assert int(indexed.is_continuous.sum()) == 3
        # Label indices set only for categorical answers.
        assert np.all(indexed.label_indices[indexed.is_categorical] >= 0)
        assert np.all(indexed.label_indices[indexed.is_continuous] == -1)
        assert np.all(np.isnan(indexed.values[indexed.is_categorical]))
        assert np.all(~np.isnan(indexed.values[indexed.is_continuous]))

    def test_cell_indices_grouping(self, answers):
        indexed = answers.indexed()
        group = indexed.cell_indices(0, 0)
        assert len(group) == 2
        assert set(indexed.rows[group]) == {0}
        assert set(indexed.cols[group]) == {0}
        assert len(indexed.cell_indices(3, 0)) == 0

    def test_answered_cells(self, answers):
        indexed = answers.indexed()
        assert set(indexed.answered_cells()) == {
            (0, 0), (0, 1), (1, 0), (1, 1),
        }

    def test_worker_index_consistency(self, answers):
        indexed = answers.indexed()
        for idx, answer in enumerate(answers):
            assert indexed.worker_ids[indexed.workers[idx]] == answer.worker
