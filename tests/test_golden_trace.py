"""Golden-trace regression harness for the online assignment engine.

One canonical seeded session (Celebrity, 12 rows, warm-started engine
configuration at the Algorithm 2 cadence) is replayed through every serving
configuration of the engine:

* ``incremental`` — the plain :class:`~repro.core.assignment.TCrowdAssigner`
  (incremental indexes, vectorised gains, warm-started refits);
* ``sharded`` — the same assigner served through a
  :class:`~repro.engine.ShardedAssignmentPolicy` (partitioned top-K merge);
* ``async_refit`` — the same assigner served through an
  :class:`~repro.engine.AsyncRefitPolicy` at ``max_stale_answers=0`` on a
  :class:`~repro.engine.VirtualClock` (every refit blocking, deterministic);
* ``sharded_async`` — the composed :class:`~repro.engine.ShardedAsyncPolicy`
  (partitioned top-K scoring over async snapshots) at
  ``max_stale_answers=0`` on a :class:`~repro.engine.VirtualClock`.

(The service layer's durability path replays the same scenario through a
write-ahead log and is pinned against this fixture in ``tests/test_wal.py``.)

All of them must produce *bit-identical* assignment sequences and final truth
estimates — that is the contract the sharding merge and the bounded-
staleness mode are built on — and the sequence must match the committed
fixture ``tests/fixtures/golden_trace.json``, which pins the engine's
behaviour across refactors.

Regenerate the fixture (after an *intentional* behaviour change only)::

    PYTHONPATH=src python tests/test_golden_trace.py --write
"""

from __future__ import annotations

import json
import pathlib
import sys

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.assignment import TCrowdAssigner
from repro.core.inference import TCrowdModel
from repro.datasets import load_celebrity
from repro.utils.exceptions import AssignmentError

FIXTURE_PATH = pathlib.Path(__file__).parent / "fixtures" / "golden_trace.json"

#: Scenario pinned by the fixture.  Small enough that the three replays run
#: in a couple of seconds, large enough that every code path (warm chain,
#: shard merge, staleness blocking, candidate-pool exhaustion) is exercised.
SCENARIO = {
    "dataset": "celebrity",
    "seed": 7,
    "num_rows": 12,
    "target_answers_per_task": 1.5,
    "num_shards": 3,
    "model_kwargs": {"max_iterations": 6, "m_step_iterations": 10},
}

CONFIGS = ("incremental", "sharded", "async_refit", "sharded_async")


#: Serving section of each matrix configuration — every policy is built
#: through the shared spec factory (`repro.config.factory.wrap_policy`),
#: the same wrapper-selection path `CrowdsourcingSession.from_spec` and the
#: HTTP service use, so the fixture pins the spec-built policies too.
_SERVING = {
    "incremental": {},
    "sharded": {"shards": SCENARIO["num_shards"]},
    "async_refit": {"async_refit": True, "max_stale_answers": 0},
    "sharded_async": {
        "shards": SCENARIO["num_shards"],
        "async_refit": True,
        "max_stale_answers": 0,
    },
}


def _build_policy(config: str, schema):
    from repro.config import ServingSpec
    from repro.config.factory import wrap_policy
    from repro.engine import VirtualClock

    if config not in _SERVING:
        raise ValueError(f"unknown config {config!r}")
    inner = TCrowdAssigner(
        schema,
        model=TCrowdModel(**SCENARIO["model_kwargs"]),
        refit_every=1,
        warm_start=True,
        vectorized=True,
        incremental=True,
    )
    serving = ServingSpec(**_SERVING[config])
    clock = VirtualClock() if serving.async_refit else None
    return wrap_policy(inner, serving, clock=clock), inner


def replay_session(config: str):
    """Replay the canonical session; return (decisions, final_estimates).

    ``decisions`` is the assignment sequence ``[(worker, ((row, col), ...)),
    ...]``; ``final_estimates`` maps ``"row,col"`` to the truth estimate of
    the configuration's final refit over all collected answers.
    """
    dataset = load_celebrity(seed=SCENARIO["seed"], num_rows=SCENARIO["num_rows"])
    schema = dataset.schema
    pool = dataset.worker_pool
    worker_ids = pool.worker_ids()
    activities = pool.activities()
    rng = np.random.default_rng(SCENARIO["seed"])

    answers = AnswerSet(schema)
    for row in range(schema.num_rows):
        worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
        for col in range(schema.num_columns):
            answers.add_answer(worker, row, col, dataset.oracle.answer(worker, row, col, rng))

    policy, inner = _build_policy(config, schema)
    extra = int(
        round((SCENARIO["target_answers_per_task"] - 1.0) * schema.num_cells)
    )
    decisions = []
    collected = 0
    failures = 0
    try:
        while collected < extra and failures < 10 * len(worker_ids):
            worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
            batch = min(schema.num_columns, extra - collected)
            try:
                assignment = policy.select(worker, answers, k=batch)
            except AssignmentError:
                failures += 1
                continue
            failures = 0
            decisions.append((worker, assignment.cells))
            for row, col in assignment.cells:
                value = dataset.oracle.answer(worker, row, col, rng)
                answers.add_answer(worker, row, col, value)
            collected += len(assignment.cells)
            policy.observe(answers)

        if config in ("async_refit", "sharded_async"):
            final = policy.final_result(answers)
        else:
            # observe() refitted at the final answer count already.
            final = inner.last_result
        estimates = {
            f"{row},{col}": final.estimate(row, col)
            for row in range(schema.num_rows)
            for col in range(schema.num_columns)
        }
    finally:
        if policy is not inner:
            policy.close()
    return decisions, estimates


def _as_jsonable(decisions, estimates):
    return {
        "scenario": SCENARIO,
        "decisions": [
            [worker, [[int(row), int(col)] for row, col in cells]]
            for worker, cells in decisions
        ],
        "final_estimates": {
            key: value if isinstance(value, str) else float(value)
            for key, value in estimates.items()
        },
    }


def _decisions_from_fixture(payload):
    return [
        (worker, tuple((int(row), int(col)) for row, col in cells))
        for worker, cells in payload["decisions"]
    ]


@pytest.fixture(scope="module")
def golden():
    if not FIXTURE_PATH.exists():
        pytest.fail(
            f"missing golden trace fixture {FIXTURE_PATH}; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_trace.py --write`"
        )
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def replays():
    return {config: replay_session(config) for config in CONFIGS}


class TestGoldenTrace:
    def test_fixture_scenario_matches_harness(self, golden):
        """A fixture generated for a different scenario must not pass silently."""
        assert golden["scenario"] == SCENARIO

    @pytest.mark.parametrize("config", CONFIGS)
    def test_assignment_sequence_matches_fixture(self, golden, replays, config):
        decisions, _ = replays[config]
        assert decisions == _decisions_from_fixture(golden), (
            f"{config} diverged from the committed golden trace; if the "
            "change is intentional, regenerate tests/fixtures/"
            "golden_trace.json with `PYTHONPATH=src python "
            "tests/test_golden_trace.py --write`"
        )

    def test_all_configurations_bit_identical(self, replays):
        """incremental / sharded / async(max_stale=0) replay one sequence."""
        reference_decisions, reference_estimates = replays["incremental"]
        for config in CONFIGS[1:]:
            decisions, estimates = replays[config]
            assert decisions == reference_decisions, config
            # Same fit chain -> bit-identical estimates, not just close ones.
            assert set(estimates) == set(reference_estimates)
            for key, value in reference_estimates.items():
                assert estimates[key] == value, (config, key)

    def test_final_estimates_match_fixture(self, golden, replays):
        _, estimates = replays["incremental"]
        recorded = golden["final_estimates"]
        assert set(estimates) == set(recorded)
        for key, value in estimates.items():
            if isinstance(value, str):
                assert value == recorded[key], key
            else:
                # Tolerant comparison: BLAS/libm differences across machines
                # may perturb the last bits of the continuous estimates even
                # though the assignment sequence is pinned exactly.
                assert float(value) == pytest.approx(
                    float(recorded[key]), rel=1e-6, abs=1e-9
                ), key


def _write_fixture() -> int:
    decisions, estimates = replay_session("incremental")
    for config in CONFIGS[1:]:
        other_decisions, other_estimates = replay_session(config)
        if other_decisions != decisions or other_estimates != estimates:
            print(f"FAIL: {config} does not replay the incremental sequence",
                  file=sys.stderr)
            return 1
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(
        json.dumps(_as_jsonable(decisions, estimates), indent=2) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {FIXTURE_PATH} ({len(decisions)} decisions)")
    return 0


if __name__ == "__main__":
    if "--write" in sys.argv:
        raise SystemExit(_write_fixture())
    print(__doc__)
    raise SystemExit(2)
