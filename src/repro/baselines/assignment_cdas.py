"""CDAS-style assignment (Liu et al., PVLDB 2012).

CDAS measures the confidence of the currently estimated value of every task
with a quality-sensitive answering model; tasks whose estimate is already
confident are *terminated* and never assigned again, and each incoming worker
receives a random non-terminated task.

Confidence here follows the spirit of CDAS's majority-vote termination rule:

* categorical cells terminate once at least ``min_answers`` answers exist and
  the majority label holds at least a ``confidence_threshold`` fraction of
  the votes;
* continuous cells terminate once at least ``min_answers`` answers exist and
  the standard error of the mean drops below ``sem_threshold`` times the
  column's answer spread.
"""

from __future__ import annotations

import weakref
from collections import Counter
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.assignment import AssignmentPolicy, BatchAssignment
from repro.core.schema import TableSchema
from repro.utils.exceptions import AssignmentError
from repro.utils.numerics import safe_var
from repro.utils.rng import as_generator


class CDASAssigner(AssignmentPolicy):
    """Random assignment over non-terminated tasks with confidence termination."""

    def __init__(
        self,
        schema: TableSchema,
        seed=None,
        confidence_threshold: float = 0.8,
        sem_threshold: float = 0.3,
        min_answers: int = 3,
        max_answers_per_cell: Optional[int] = None,
    ) -> None:
        super().__init__(schema, max_answers_per_cell=max_answers_per_cell)
        self.confidence_threshold = float(confidence_threshold)
        self.sem_threshold = float(sem_threshold)
        self.min_answers = int(min_answers)
        self._rng = as_generator(seed)
        # Termination verdicts are a pure function of the cell's answers and
        # the column's answer spread; cache them keyed by the (cell count,
        # column count) pair so the online loop re-evaluates a cell only when
        # new evidence actually arrived.
        self._verdicts: Dict[Tuple[int, int], Tuple[int, int, bool]] = {}
        self._verdict_source: Optional[weakref.ref] = None

    @property
    def name(self) -> str:
        return "CDAS"

    # -- termination rule -------------------------------------------------------

    def is_terminated(self, answers: AnswerSet, row: int, col: int) -> bool:
        """True if the cell's current estimate is already confident enough."""
        source = (
            self._verdict_source() if self._verdict_source is not None else None
        )
        if source is not answers:
            self._verdicts.clear()
            self._verdict_source = weakref.ref(answers)
        cell_count = answers.answer_count(row, col)
        column_count = answers.column_answer_count(col)
        cached = self._verdicts.get((row, col))
        if cached is not None and cached[0] == cell_count and cached[1] == column_count:
            return cached[2]
        verdict = self._evaluate_termination(answers, row, col)
        self._verdicts[(row, col)] = (cell_count, column_count, verdict)
        return verdict

    def _evaluate_termination(self, answers: AnswerSet, row: int, col: int) -> bool:
        cell_answers = answers.answers_for_cell(row, col)
        if len(cell_answers) < self.min_answers:
            return False
        column = self.schema.columns[col]
        if column.is_categorical:
            counts = Counter(answer.value for answer in cell_answers)
            majority_fraction = counts.most_common(1)[0][1] / len(cell_answers)
            return majority_fraction >= self.confidence_threshold
        values = np.array([float(answer.value) for answer in cell_answers])
        column_values = np.array(
            [float(a.value) for a in answers.answers_in_column(col)], dtype=float
        )
        spread = np.sqrt(safe_var(column_values))
        sem = float(np.std(values)) / np.sqrt(len(values))
        return sem <= self.sem_threshold * spread

    # -- policy -------------------------------------------------------------------

    def select(self, worker: str, answers: AnswerSet, k: int = 1) -> BatchAssignment:
        candidates = self.candidate_cells(worker, answers)
        if not candidates:
            raise AssignmentError(f"No candidate cells left for worker {worker!r}")
        open_cells = [
            cell for cell in candidates
            if not self.is_terminated(answers, cell[0], cell[1])
        ]
        pool = open_cells if open_cells else candidates
        k = min(k, len(pool))
        chosen = self._rng.choice(len(pool), size=k, replace=False)
        cells = tuple(pool[int(index)] for index in chosen)
        return BatchAssignment(worker, cells, tuple(0.0 for _ in cells))
