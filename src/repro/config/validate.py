"""Validate v1 ``SessionSpec`` JSON documents from the command line.

Usage (the CI lint job runs exactly this)::

    PYTHONPATH=src python -m repro.config.validate examples/*.json

Each file must hold either a bare spec document or a service body (a spec
plus the ``schema`` / ``dataset`` / ``session_id`` / ``durable`` envelope
keys of ``POST /sessions``).  The spec portion is validated strictly; the
envelope's schema/dataset payloads are the service's concern and are only
checked for type here.  Exit status is non-zero if any file fails, with
the dotted field path in the message::

    examples/broken.json: serving.max_stale_answers must be >= 0 or null, got -1
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.config.spec import SessionSpec, SpecValidationError, split_envelope
from repro.utils.exceptions import ConfigurationError


def validate_file(path: str) -> SessionSpec:
    """Parse and validate one spec document; return the spec.

    Raises :class:`~repro.utils.exceptions.ConfigurationError` (with the
    dotted field path when a spec field is at fault) on any problem.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            body = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigurationError(f"not valid JSON: {exc}") from exc
    envelope, payload = split_envelope(body)
    for key in ("schema", "dataset"):
        if key in envelope and not isinstance(envelope[key], dict):
            raise SpecValidationError(
                key, f"must be a JSON object, got {envelope[key]!r}"
            )
    if "session_id" in envelope and not isinstance(envelope["session_id"], str):
        raise SpecValidationError(
            "session_id", f"must be a string, got {envelope['session_id']!r}"
        )
    if "durable" in envelope and not isinstance(envelope["durable"], bool):
        raise SpecValidationError(
            "durable", f"must be a boolean, got {envelope['durable']!r}"
        )
    return SessionSpec.from_dict(payload)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.config.validate", description=__doc__
    )
    parser.add_argument("paths", nargs="+", help="spec JSON files to validate")
    args = parser.parse_args(argv)
    failures = 0
    for path in args.paths:
        try:
            spec = validate_file(path)
        except ConfigurationError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            failures += 1
            continue
        print(f"{path}: OK ({spec.describe()})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
