"""Dataset container shared by all experiments.

A :class:`CrowdDataset` bundles the table schema, the (latent) ground truth,
the collected answers, and — when the dataset was simulated — the
:class:`~repro.datasets.workers.AnswerOracle` that can generate additional
answers on demand (used by the task-assignment experiments) together with the
latent worker variances (used by the worker-quality case studies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.schema import TableSchema
from repro.datasets.workers import AnswerOracle, WorkerPool
from repro.utils.exceptions import DataError


@dataclass
class CrowdDataset:
    """A crowdsourced table: schema, ground truth, answers, and provenance."""

    name: str
    schema: TableSchema
    ground_truth: Dict[Tuple[int, int], object]
    answers: AnswerSet
    oracle: Optional[AnswerOracle] = None
    worker_pool: Optional[WorkerPool] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        expected = self.schema.num_cells
        if len(self.ground_truth) != expected:
            raise DataError(
                f"ground_truth must cover every cell ({expected}), "
                f"got {len(self.ground_truth)}"
            )

    # -- ground truth ---------------------------------------------------------

    def truth(self, row: int, col: int):
        """Ground-truth value ``T*_ij`` of cell ``(row, col)``."""
        try:
            return self.ground_truth[(row, col)]
        except KeyError as exc:
            raise DataError(f"No ground truth for cell ({row}, {col})") from exc

    def categorical_cells(self):
        """All cells belonging to categorical columns."""
        cat_cols = set(self.schema.categorical_indices)
        return [(i, j) for (i, j) in self.schema.cells() if j in cat_cols]

    def continuous_cells(self):
        """All cells belonging to continuous columns."""
        cont_cols = set(self.schema.continuous_indices)
        return [(i, j) for (i, j) in self.schema.cells() if j in cont_cols]

    # -- answers ----------------------------------------------------------------

    @property
    def num_answers(self) -> int:
        """Total number of collected answers."""
        return len(self.answers)

    @property
    def answers_per_task(self) -> float:
        """Average number of answers per cell (Table 6's '#Ans. per Task')."""
        return self.answers.mean_answers_per_cell()

    @property
    def num_workers(self) -> int:
        """Number of distinct workers who contributed answers."""
        return self.answers.num_workers

    def column_truth_std(self, col: int) -> float:
        """Standard deviation of the ground truth of a continuous column.

        Used by MNAD to normalise per-column RMSE.
        """
        column = self.schema.columns[col]
        if not column.is_continuous:
            raise DataError(f"Column {column.name!r} is not continuous")
        values = np.array(
            [float(self.ground_truth[(i, col)]) for i in range(self.schema.num_rows)]
        )
        return float(np.std(values))

    # -- derived datasets ----------------------------------------------------------

    def with_answers(self, answers: AnswerSet, name_suffix: str = "") -> "CrowdDataset":
        """Return a copy of this dataset with a different answer set."""
        return CrowdDataset(
            name=self.name + name_suffix,
            schema=self.schema,
            ground_truth=dict(self.ground_truth),
            answers=answers,
            oracle=self.oracle,
            worker_pool=self.worker_pool,
            metadata=dict(self.metadata),
        )

    def summary(self) -> Dict[str, object]:
        """Table 6-style summary statistics."""
        return {
            "name": self.name,
            "rows": self.schema.num_rows,
            "columns": self.schema.num_columns,
            "cells": self.schema.num_cells,
            "categorical_columns": len(self.schema.categorical_indices),
            "continuous_columns": len(self.schema.continuous_indices),
            "answers": self.num_answers,
            "answers_per_task": round(self.answers_per_task, 3),
            "workers": self.num_workers,
        }
