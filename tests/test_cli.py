"""Tests for the tcrowd-experiments command-line interface."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_known_experiments_registered(self):
        for name in ("table7", "figure2", "figure5", "figure10", "efficiency"):
            assert name in EXPERIMENTS

    def test_parser_defaults(self):
        args = build_parser().parse_args(["table7"])
        assert args.experiment == "table7"
        assert args.seed == 7
        assert not args.quick

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["not-an-experiment"])

    def test_parser_dataset_choice(self):
        args = build_parser().parse_args(["figure2", "--dataset", "Emotion"])
        assert args.dataset == "Emotion"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure2", "--dataset", "Unknown"])


class TestMain:
    def test_quick_table7_to_file(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        code = main(["table7", "--quick", "--seed", "3", "--output", str(output)])
        assert code == 0
        text = output.read_text()
        assert "table7" in text
        assert "T-Crowd" in text
        printed = capsys.readouterr().out
        assert "T-Crowd" in printed

    def test_quick_synthetic_runs_all_three_sweeps(self, capsys):
        code = main(["synthetic", "--quick", "--seed", "3"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "figure7" in printed
        assert "figure8" in printed
        assert "figure9" in printed
