"""Simulated Restaurant dataset (Table 6 of the paper).

The original Restaurant dataset shows AMT workers a restaurant review and
asks for the aspect, attribute and sentiment of the review (categorical) and
for the start/end character positions of the review's target (continuous);
203 entities, 5 attributes, 4 answers per task.  :func:`load_restaurant`
synthesises a dataset with the same shape, a *harder* worker pool (the paper
reports ~19-25% error rates), and strongly correlated StartTarget/EndTarget
errors — the correlation the paper's Figure 6 documents and the
structure-aware assignment exploits.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.schema import Column, TableSchema
from repro.datasets.base import CrowdDataset
from repro.datasets.synthetic import build_dataset
from repro.datasets.workers import WorkerPool
from repro.utils.rng import as_generator

#: Table 6 statistics.
NUM_ROWS = 203
ANSWERS_PER_TASK = 4
NUM_WORKERS = 50

_ASPECTS = ("food", "service", "ambience", "price", "location", "other")
_ATTRIBUTES = ("quality", "style", "price", "general", "options")
_SENTIMENTS = ("negative", "neutral", "positive")


def restaurant_schema(num_rows: int = NUM_ROWS) -> TableSchema:
    """Schema of the Restaurant table (3 categorical + 2 continuous columns)."""
    columns = (
        Column.categorical("aspect", _ASPECTS),
        Column.categorical("attribute", _ATTRIBUTES),
        Column.categorical("sentiment", _SENTIMENTS),
        Column.continuous("start_target", (0.0, 200.0)),
        Column.continuous("end_target", (0.0, 220.0)),
    )
    return TableSchema.build("review", columns, num_rows)


def load_restaurant(
    seed=11,
    answers_per_task: int = ANSWERS_PER_TASK,
    num_workers: int = NUM_WORKERS,
    num_rows: int = NUM_ROWS,
) -> CrowdDataset:
    """Build the simulated Restaurant dataset (203 x 5 cells, 4 answers/task).

    ``num_rows`` can be reduced for quick experiment / test runs.
    """
    rng = as_generator(seed)
    schema = restaurant_schema(num_rows)
    ground_truth: Dict[Tuple[int, int], object] = {}
    start_col = schema.column_index("start_target")
    end_col = schema.column_index("end_target")
    for i in range(schema.num_rows):
        for j, column in enumerate(schema.columns):
            if column.is_categorical:
                ground_truth[(i, j)] = column.labels[int(rng.integers(column.num_labels))]
        # The target span: start uniform, end a short distance after it, so
        # the two continuous truths are themselves correlated (as in a real
        # character-offset annotation task).
        start = float(rng.uniform(0.0, 180.0))
        ground_truth[(i, start_col)] = start
        ground_truth[(i, end_col)] = start + float(rng.uniform(5.0, 40.0))
    # Harder crowd: the paper reports ~19-25% categorical error rates here.
    pool = WorkerPool.generate(
        num_workers,
        seed=rng,
        median_variance=1.1,
        variance_spread=1.1,
        spammer_fraction=0.12,
        spammer_contamination=0.6,
        base_contamination=0.04,
    )
    return build_dataset(
        name="Restaurant",
        schema=schema,
        ground_truth=ground_truth,
        pool=pool,
        answers_per_task=answers_per_task,
        seed=rng,
        average_difficulty=1.0,
        difficulty_sigma=0.3,
        # Strong per-row familiarity: a worker who misreads the review gets
        # every attribute of it wrong, which yields the Aspect/Sentiment and
        # StartTarget/EndTarget correlations of Figure 6.
        row_familiarity_sigma=0.35,
        row_confusion_probability=0.15,
        row_confusion_multiplier=8.0,
        row_shift_sigma=0.7,
        noise_fraction=1.0,
        metadata={"kind": "simulated-real", "paper_table": "Table 6"},
    )
