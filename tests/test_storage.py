"""Storage-backend tests: WAL segment rotation, snapshot GC, sqlite parity.

The backend-contract tests drive :class:`JsonlBackend` and
:class:`SqliteBackend` through the same global-index protocol; the
session-level tests prove the properties that make bounded durability safe:
recovery stays bit-identical across segment boundaries and after GC pruned
the log prefix, a torn tail is tolerated only in the newest segment, and
the GC never deletes a record a retained snapshot still needs.
"""

from __future__ import annotations

import json

import pytest

from repro.config.spec import (
    DURABILITY_BACKENDS,
    SessionSpec,
    SpecValidationError,
)
from repro.core.assignment import TCrowdAssigner
from repro.core.inference import TCrowdModel
from repro.service.bench import (
    run_scripted_session,
    verify_recovery_identical,
    verify_recovery_rotation,
)
from repro.service.storage import (
    BACKEND_NAMES,
    JsonlBackend,
    SnapshotStore,
    SqliteBackend,
    create_backend,
    read_wal,
)
from repro.service.wal import DurableSession, durable_summary
from repro.utils.exceptions import ConfigurationError, DurabilityError


def _record(index):
    return {"t": "select", "w": f"w{index}", "k": 1}


def _snapshot_payload(epoch, wal_records, standalone=True):
    payload = {
        "format": 2,
        "epoch": epoch,
        "answers_seen": wal_records,
        "wal_records": wal_records,
        "model": {"stub": True} if standalone else None,
    }
    if standalone:
        payload["answers"] = []
    return payload


@pytest.fixture(params=list(BACKEND_NAMES))
def backend_name(request):
    return request.param


class TestBackendContract:
    """Both backends speak the same global-index log + snapshot protocol."""

    def test_append_returns_global_indexes(self, backend_name, tmp_path):
        backend = create_backend(tmp_path, backend=backend_name)
        assert [backend.append(_record(i)) for i in range(5)] == [0, 1, 2, 3, 4]
        assert backend.record_count == 5
        assert backend.first_record_index == 0
        assert backend.last_record == _record(4)
        assert backend.records() == [_record(i) for i in range(5)]
        backend.close()
        assert backend.closed
        with pytest.raises(DurabilityError):
            backend.append(_record(9))

    def test_reopen_resumes_the_global_count(self, backend_name, tmp_path):
        backend = create_backend(tmp_path, backend=backend_name)
        for i in range(3):
            backend.append(_record(i))
        backend.close()
        reopened = create_backend(tmp_path, backend=backend_name)
        assert reopened.record_count == 3
        assert reopened.append(_record(3)) == 3
        reopened.close()

    def test_truncate_preserves_global_indexes_across_reopen(
        self, backend_name, tmp_path
    ):
        backend = create_backend(
            tmp_path, backend=backend_name, rotate_every_records=2
        )
        for i in range(6):
            backend.append(_record(i))
        backend.truncate_before(4)
        # Global bookkeeping is unchanged; only storage below index 4 went.
        assert backend.record_count == 6
        assert backend.first_record_index == 4
        assert backend.records() == [_record(4), _record(5)]
        assert backend.append(_record(6)) == 6
        backend.close()
        reopened = create_backend(
            tmp_path, backend=backend_name, rotate_every_records=2
        )
        assert reopened.record_count == 7
        assert reopened.first_record_index == 4
        assert reopened.append(_record(7)) == 7
        reopened.close()

    def test_truncate_never_drops_uncovered_records(self, backend_name, tmp_path):
        backend = create_backend(
            tmp_path, backend=backend_name, rotate_every_records=2
        )
        for i in range(5):
            backend.append(_record(i))
        backend.truncate_before(3)
        # JSONL only drops whole sealed segments (here [0, 2)); sqlite drops
        # exactly.  Either way records >= 3 must all survive.
        assert backend.first_record_index <= 3
        survivors = backend.records()[3 - backend.first_record_index:]
        assert survivors == [_record(3), _record(4)]
        backend.close()

    def test_snapshot_epochs_are_never_reused(self, backend_name, tmp_path):
        backend = create_backend(tmp_path, backend=backend_name)
        for epoch in range(3):
            backend.save_snapshot(_snapshot_payload(epoch, wal_records=epoch))
        assert backend.prune_snapshots(keep=1) == [0, 1]
        assert backend.snapshot_epochs() == [2]
        backend.close()
        reopened = create_backend(tmp_path, backend=backend_name)
        # Epochs 0 and 1 were deleted, but the counter must not rewind past
        # the retained snapshot (GC always keeps at least one).
        assert reopened.next_epoch() == 3
        reopened.close()

    def test_prune_keep_must_be_positive(self, backend_name, tmp_path):
        backend = create_backend(tmp_path, backend=backend_name)
        with pytest.raises(ConfigurationError):
            backend.prune_snapshots(keep=0)
        backend.close()

    def test_gc_cover_is_the_oldest_retained_snapshot(
        self, backend_name, tmp_path
    ):
        backend = create_backend(tmp_path, backend=backend_name)
        assert backend.gc_cover() == 0  # no snapshots: nothing is prunable
        backend.save_snapshot(_snapshot_payload(0, wal_records=4))
        backend.save_snapshot(_snapshot_payload(1, wal_records=9))
        assert backend.gc_cover() == 4
        backend.prune_snapshots(keep=1)
        assert backend.gc_cover() == 9
        backend.close()

    def test_gc_cover_is_zero_unless_every_snapshot_is_standalone(
        self, backend_name, tmp_path
    ):
        backend = create_backend(tmp_path, backend=backend_name)
        backend.save_snapshot(_snapshot_payload(0, 4, standalone=False))
        backend.save_snapshot(_snapshot_payload(1, 9))
        # A format-1 (model-only) snapshot pins the entire log prefix.
        assert backend.gc_cover() == 0
        backend.close()

    def test_latest_snapshot_respects_the_surviving_log(
        self, backend_name, tmp_path
    ):
        backend = create_backend(tmp_path, backend=backend_name)
        backend.save_snapshot(_snapshot_payload(0, wal_records=2))
        backend.save_snapshot(_snapshot_payload(1, wal_records=8))
        assert backend.latest_snapshot().epoch == 1
        assert backend.latest_snapshot(max_wal_records=5).epoch == 0
        assert backend.discard_lost_timeline(max_wal_records=5) == [1]
        assert backend.snapshot_epochs() == [0]
        backend.close()

    def test_unknown_backend_is_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="Unknown durability"):
            create_backend(tmp_path, backend="papyrus")


class TestJsonlRotation:
    def test_rotation_seals_segments_and_replays_in_order(self, tmp_path):
        backend = JsonlBackend(tmp_path, rotate_every_records=3)
        for i in range(8):
            backend.append(_record(i))
        assert backend.segment_count == 3  # 3 + 3 + 2 (active)
        names = sorted(p.name for p in tmp_path.glob("wal-*.jsonl"))
        assert names == [
            "wal-00000000.jsonl",
            "wal-00000003.jsonl",
            "wal-00000006.jsonl",
        ]
        backend.close()
        reopened = JsonlBackend(tmp_path, rotate_every_records=3)
        assert reopened.records() == [_record(i) for i in range(8)]
        assert reopened.record_count == 8
        reopened.close()

    def test_legacy_single_file_upgrades_in_place(self, tmp_path):
        plain = JsonlBackend(tmp_path)  # historical layout: one wal.jsonl
        for i in range(4):
            plain.append(_record(i))
        plain.close()
        assert (tmp_path / "wal.jsonl").exists()
        rotated = JsonlBackend(tmp_path, rotate_every_records=2)
        # wal.jsonl is the segment starting at record 0; the next append
        # seals it and rotation proceeds from the correct global index.
        assert rotated.append(_record(4)) == 4
        assert (tmp_path / "wal-00000004.jsonl").exists()
        assert rotated.records() == [_record(i) for i in range(5)]
        rotated.close()

    def test_torn_tail_is_tolerated_only_in_the_newest_segment(self, tmp_path):
        backend = JsonlBackend(tmp_path, rotate_every_records=2)
        for i in range(5):
            backend.append(_record(i))
        backend.close()
        newest = tmp_path / "wal-00000004.jsonl"
        newest.write_bytes(newest.read_bytes()[:-5])
        reopened = JsonlBackend(tmp_path, rotate_every_records=2)
        assert reopened.record_count == 4  # the torn record is dropped
        reopened.close()
        # The same corruption in a sealed segment is unrecoverable: those
        # records were acknowledged and later state may depend on them.
        sealed = tmp_path / "wal-00000002.jsonl"
        sealed.write_bytes(sealed.read_bytes()[:-5])
        with pytest.raises(DurabilityError, match="newest segment"):
            JsonlBackend(tmp_path, rotate_every_records=2)

    def test_segment_gap_is_rejected(self, tmp_path):
        backend = JsonlBackend(tmp_path, rotate_every_records=2)
        for i in range(6):
            backend.append(_record(i))
        backend.close()
        (tmp_path / "wal-00000002.jsonl").unlink()
        with pytest.raises(DurabilityError, match="gap"):
            JsonlBackend(tmp_path, rotate_every_records=2)

    def test_duplicate_segment_start_is_rejected(self, tmp_path):
        (tmp_path / "wal.jsonl").write_text(
            json.dumps(_record(0)) + "\n", encoding="utf-8"
        )
        (tmp_path / "wal-00000000.jsonl").write_text(
            json.dumps(_record(0)) + "\n", encoding="utf-8"
        )
        with pytest.raises(DurabilityError, match="both"):
            JsonlBackend(tmp_path)

    def test_truncate_only_drops_sealed_covered_segments(self, tmp_path):
        backend = JsonlBackend(tmp_path, rotate_every_records=2)
        for i in range(5):
            backend.append(_record(i))
        assert backend.truncate_before(3) == 2  # only segment [0, 2) goes
        assert not (tmp_path / "wal-00000000.jsonl").exists()
        assert (tmp_path / "wal-00000002.jsonl").exists()
        # The active segment is never truncated, even when fully covered.
        assert backend.truncate_before(99) == 2
        assert (tmp_path / "wal-00000004.jsonl").exists()
        assert backend.records() == [_record(4)]
        backend.close()

    def test_rotation_cadence_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JsonlBackend(tmp_path, rotate_every_records=0)

    def test_fsync_rotation_and_snapshot_save(self, tmp_path):
        """The fsync paths (segment seal, snapshot rename) stay functional."""
        backend = JsonlBackend(tmp_path, fsync=True, rotate_every_records=2)
        for i in range(3):
            backend.append(_record(i))
        assert backend.segment_count == 2
        backend.truncate_before(0)
        backend.close()
        store = SnapshotStore(tmp_path / "snapshots", fsync=True)
        path = store.save(_snapshot_payload(0, wal_records=3))
        assert path.exists()
        assert not path.with_suffix(".json.tmp").exists()
        assert store.load(0).wal_records == 3

    def test_sqlite_single_file_layout(self, tmp_path):
        backend = SqliteBackend(tmp_path, rotate_every_records=2)
        for i in range(7):
            backend.append(_record(i))
        backend.save_snapshot(_snapshot_payload(0, wal_records=7))
        assert backend.segment_count == 1  # rotation knob is a no-op
        backend.close()
        files = [p.name for p in tmp_path.iterdir()]
        assert files == [SqliteBackend.FILENAME]


class TestDurableSessionBoundedStorage:
    """Session-level properties: GC safety and cross-backend equivalence."""

    @staticmethod
    def _policy(schema):
        return TCrowdAssigner(
            schema,
            model=TCrowdModel(max_iterations=2, m_step_iterations=4),
            refit_every=1,
            warm_start=True,
        )

    def _fill(self, session, rows):
        # observe=True (the default) keeps the policy fitted, so the cut
        # snapshots carry a model and are standalone — the GC precondition.
        for row in range(rows):
            session.append_answers(
                f"w{row % 3}", [(row, 0, "red"), (row, 2, 10.0 + row)]
            )

    def test_gc_prunes_the_log_but_recovery_stays_identical(
        self, tmp_path, mixed_schema
    ):
        session = DurableSession(
            mixed_schema,
            self._policy(mixed_schema),
            directory=tmp_path,
            snapshot_every=2,
            rotate_every_records=2,
            keep_snapshots=2,
        )
        self._fill(session, mixed_schema.num_rows)
        answers_before = [
            (a.worker, int(a.row), int(a.col), a.value) for a in session.answers
        ]
        total = session.wal_records
        session.close()

        # GC actually pruned a prefix...
        backend = JsonlBackend(tmp_path, rotate_every_records=2)
        assert backend.first_record_index > 0
        assert backend.snapshot_count <= 2
        # ...and every record at or above the GC cover survived.
        assert backend.first_record_index <= backend.gc_cover()
        backend.close()

        recovered = DurableSession(
            mixed_schema,
            self._policy(mixed_schema),
            directory=tmp_path,
            snapshot_every=2,
            rotate_every_records=2,
            keep_snapshots=2,
        )
        assert recovered.wal_records == total
        assert [
            (a.worker, int(a.row), int(a.col), a.value)
            for a in recovered.answers
        ] == answers_before
        recovered.close()

    def test_pruned_prefix_without_a_usable_snapshot_is_fatal(
        self, tmp_path, mixed_schema
    ):
        session = DurableSession(
            mixed_schema,
            self._policy(mixed_schema),
            directory=tmp_path,
            snapshot_every=2,
            rotate_every_records=2,
            keep_snapshots=2,
        )
        self._fill(session, mixed_schema.num_rows)
        session.close()
        for path in (tmp_path / "snapshots").glob("snapshot-*.json"):
            path.unlink()
        with pytest.raises(DurabilityError, match="pruned"):
            DurableSession(
                mixed_schema,
                self._policy(mixed_schema),
                directory=tmp_path,
                snapshot_every=2,
                rotate_every_records=2,
            )

    def test_scripted_replay_with_rotation_matches_unrotated(self, tmp_path):
        baseline = run_scripted_session("plain")
        rotated = run_scripted_session(
            "plain",
            directory=tmp_path,
            snapshot_every=6,
            rotate_every_records=5,
            keep_snapshots=2,
        )
        assert rotated["decisions"] == baseline["decisions"]
        assert rotated["estimates"] == baseline["estimates"]
        summary = durable_summary(tmp_path)
        # More records than one segment holds, yet the GC kept the disk
        # bounded and pruned the first segment.
        assert summary["wal_records"] > 5
        assert summary["wal_segments"] <= 2
        assert summary["snapshots"] <= 2
        assert not (tmp_path / "wal-00000000.jsonl").exists()

    @pytest.mark.parametrize("backend", list(BACKEND_NAMES))
    def test_recovery_identical_under_rotation(self, backend, tmp_path):
        summary = verify_recovery_identical(
            mode="plain",
            directory=tmp_path,
            crash_after_steps=3,
            truncate_bytes=7,
            snapshot_every=7,
            backend=backend,
            rotate_every_records=5,
        )
        assert summary["recovery_identical"], summary
        assert summary["recovery_backend"] == backend
        if backend == "sqlite":
            # Transactional appends: there is never a torn tail to drop.
            assert summary["recovery_truncated_bytes"] == 0

    @pytest.mark.parametrize("backend", list(BACKEND_NAMES))
    def test_rotation_with_gc_survives_a_restart_disk_bounded(
        self, backend, tmp_path
    ):
        summary = verify_recovery_rotation(
            mode="plain", backend=backend, directory=tmp_path
        )
        assert summary["rotation_identical"], summary
        assert summary["rotation_disk_bounded"], summary
        assert summary["rotation_restarted"], summary

    def test_jsonl_and_sqlite_runs_are_equivalent(self, tmp_path):
        jsonl = run_scripted_session(
            "plain", directory=tmp_path / "jsonl", backend="jsonl"
        )
        sqlite = run_scripted_session(
            "plain", directory=tmp_path / "sqlite", backend="sqlite"
        )
        assert jsonl["decisions"] == sqlite["decisions"]
        assert jsonl["estimates"] == sqlite["estimates"]
        # The sqlite directory holds exactly one file; both summaries agree
        # on the logical state.
        js = durable_summary(tmp_path / "jsonl")
        sq = durable_summary(tmp_path / "sqlite")
        assert js["wal_records"] == sq["wal_records"]
        assert js["answers_logged"] == sq["answers_logged"]
        assert sq["wal_segments"] == 1

    def test_wal_records_survive_the_sqlite_round_trip(self, tmp_path):
        """Records stored via sqlite deserialize to the exact JSONL dicts."""
        jsonl = JsonlBackend(tmp_path / "a")
        sqlite = SqliteBackend(tmp_path / "b")
        records = [
            {"t": "answers", "w": "w0", "a": [[0, 2, 10.5]], "o": False},
            {"t": "select", "w": "w1", "k": 3},
            {"t": "estimates"},
        ]
        for record in records:
            jsonl.append(record)
            sqlite.append(record)
        assert jsonl.records() == sqlite.records() == records
        jsonl.close()
        sqlite.close()
        assert read_wal(tmp_path / "a" / "wal.jsonl")[0] == records


class TestDurabilitySpecFields:
    def test_backends_stay_in_sync_with_storage(self):
        assert tuple(DURABILITY_BACKENDS) == tuple(BACKEND_NAMES)

    def test_spec_round_trips_the_new_knobs(self):
        spec = (
            SessionSpec.builder()
            .durable(
                "/tmp/d",
                backend="sqlite",
                rotate_every_records=256,
                keep_snapshots=3,
            )
            .build()
        )
        rebuilt = SessionSpec.from_dict(spec.to_dict())
        assert rebuilt.durability.backend == "sqlite"
        assert rebuilt.durability.rotate_every_records == 256
        assert rebuilt.durability.keep_snapshots == 3

    def test_spec_validation_rejects_bad_values(self):
        builder = SessionSpec.builder()
        with pytest.raises(SpecValidationError, match="durability.backend"):
            builder.durable("/tmp/d", backend="papyrus").build()
        for field, value in [
            ("rotate_every_records", 0),
            ("keep_snapshots", 0),
            ("rotate_every_records", True),
        ]:
            fresh = SessionSpec.builder()
            with pytest.raises(SpecValidationError, match=f"durability.{field}"):
                fresh.durable("/tmp/d", **{field: value}).build()
