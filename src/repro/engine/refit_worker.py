"""Asynchronous truth-inference refits for the online assignment loop.

The synchronous engine refits :class:`~repro.core.inference.TCrowdModel` on
the select path: every worker arrival pays for an EM refit before any cell
can be scored.  Production task-assignment servers instead run inference in
a background worker and serve assignments from the latest completed model,
accepting bounded staleness in exchange for a select path that never blocks
on EM.  This module is that worker:

* :class:`ModelSnapshot` — an immutable, epoch-numbered
  :class:`~repro.core.inference.InferenceResult` plus the number of answers
  it has seen.  Snapshots are published by a single atomic reference swap,
  so the serving path reads them lock-free (CPython guarantees the
  reference read is atomic; immutability guarantees what it points at never
  changes underneath the reader).
* :class:`AsyncRefitEngine` — owns the refit schedule.  ``notify`` requests
  a background refit (requests coalesce: only the newest answer count is
  fitted), ``result_for`` returns the model the select path should score
  with, blocking for a catch-up refit only when the snapshot has fallen
  more than ``max_stale_answers`` answers behind.
* :class:`VirtualClock` — a deterministic, synchronous drop-in for the
  background thread: submitted refits run inline, exactly when a test calls
  :meth:`VirtualClock.run_pending`, so async tests are reproducible without
  sleeps or races.
* :class:`AsyncRefitPolicy` — the policy wrapper plugging the engine behind
  the same :class:`~repro.core.assignment.AssignmentPolicy` seam the
  platform loop already drives.

The bounded-staleness contract: with ``max_stale_answers=0`` no background
refit is ever scheduled and every select blocks until the model is within
the refit cadence of the collected answers — reproducing the synchronous
engine's fit chain, and therefore its assignment sequence, bit for bit at
any ``refit_every`` (the golden-trace tests and the benchmark's
``identical_assignments_async`` bit pin this).  With a positive bound the
select path serves stale snapshots lock-free while the worker catches up,
and only a snapshot more than ``max_stale_answers`` answers behind forces a
blocking refit.  ``None`` means unbounded staleness.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.answers import AnswerSet
from repro.core.assignment import (
    AssignmentPolicy,
    BatchAssignment,
    TCrowdAssigner,
    _single_shard_lineage,
    refit_model,
)
from repro.core.inference import InferenceResult
from repro.core.schema import TableSchema
from repro.engine.profiling import HotPathProfile
from repro.engine.profiling import stage as _stage
from repro.utils.exceptions import AssignmentError, ConfigurationError

Cell = Tuple[int, int]


@dataclass(frozen=True)
class ModelSnapshot:
    """An immutable, epoch-numbered truth-inference result.

    ``epoch`` increases by one per published refit; ``answers_seen`` is the
    size of the answer set the fit ran over, which is what staleness is
    measured against (answers are append-only, so the count identifies the
    exact prefix the model has seen).
    """

    epoch: int
    result: InferenceResult
    answers_seen: int

    def staleness(self, answers: AnswerSet) -> int:
        """Number of collected answers this snapshot has not seen."""
        return len(answers) - self.answers_seen


class VirtualClock:
    """Deterministic synchronous scheduler used by async tests.

    Jobs submitted by the engine queue up instead of running on a thread;
    :meth:`run_pending` executes them inline, in submission order, at the
    exact point the test chooses.  This makes every async scenario —
    snapshot published late, staleness bound tripping, requests coalescing —
    a plain sequential program.
    """

    def __init__(self) -> None:
        self._pending: deque = deque()
        self._closed = False

    @property
    def pending_jobs(self) -> int:
        """Number of submitted jobs not yet run."""
        return len(self._pending)

    def submit(self, job: Callable[[], None]) -> None:
        """Queue ``job`` to run at the next :meth:`run_pending`."""
        if self._closed:
            raise ConfigurationError("Cannot submit to a closed VirtualClock")
        self._pending.append(job)

    def run_pending(self) -> int:
        """Run every queued job inline; return how many ran."""
        ran = 0
        while self._pending:
            job = self._pending.popleft()
            job()
            ran += 1
        return ran

    # The engine drives real and virtual schedulers through one protocol.
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Synchronous alias of :meth:`run_pending`; always 'drains'."""
        self.run_pending()
        return True

    def close(self) -> None:
        """Drop queued jobs and refuse further submissions."""
        self._pending.clear()
        self._closed = True


class _RefitWorker:
    """One daemon thread executing submitted jobs in submission order."""

    def __init__(self, name: str = "refit-worker") -> None:
        self._cond = threading.Condition()
        self._jobs: deque = deque()
        self._busy = False
        self._closed = False
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._thread.start()

    def submit(self, job: Callable[[], None]) -> None:
        with self._cond:
            if self._closed:
                raise ConfigurationError("Cannot submit to a closed refit worker")
            self._jobs.append(job)
            self._cond.notify_all()

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._jobs and not self._closed:
                    self._cond.wait()
                if not self._jobs and self._closed:
                    return
                job = self._jobs.popleft()
                self._busy = True
            try:
                job()
            finally:
                with self._cond:
                    self._busy = False
                    self._cond.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and no job is running."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._jobs or self._busy:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(timeout=remaining)
            return True

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._thread.is_alive():
            self._thread.join(timeout=10.0)


class AsyncRefitEngine:
    """Run truth-inference refits off the select path, behind snapshots.

    Parameters
    ----------
    model:
        The truth-inference model (any object accepted by
        :func:`~repro.core.assignment.refit_model`).
    schema:
        Table schema the answers refer to.
    refit_every:
        A background refit is requested once the snapshot is at least this
        many answers behind (mirrors
        :class:`~repro.core.assignment.TCrowdAssigner`'s cadence).
    max_stale_answers:
        The bounded-staleness knob.  ``0`` — background refits are disabled
        and every select blocks until the model is within the refit
        cadence of the collected answers (the synchronous-equivalent
        mode).  A positive bound — selects serve the
        latest snapshot lock-free until it falls more than this many
        answers behind, then one blocking catch-up refit runs.  ``None`` —
        unbounded; selects never block once a first snapshot exists.
    warm_start:
        Warm-start every refit from the previous snapshot's result.
    tol:
        Objective-based early-stopping tolerance for warm-started refits
        (see :meth:`~repro.core.inference.TCrowdModel.fit`); applied only
        when a previous snapshot exists, so the first (cold) fit keeps the
        full iteration budget.
    clock:
        ``None`` starts a private background worker thread.  Pass a
        :class:`VirtualClock` to make every background refit run
        synchronously at :meth:`VirtualClock.run_pending` time (the
        deterministic test mode).  The engine closes a clock it created;
        an injected clock stays open.
    """

    def __init__(
        self,
        model,
        schema: TableSchema,
        refit_every: int = 1,
        max_stale_answers: Optional[int] = 0,
        warm_start: bool = True,
        tol: Optional[float] = None,
        clock=None,
    ) -> None:
        if refit_every < 1:
            raise ConfigurationError(f"refit_every must be >= 1, got {refit_every}")
        if max_stale_answers is not None and max_stale_answers < 0:
            raise ConfigurationError(
                f"max_stale_answers must be >= 0 or None, got {max_stale_answers}"
            )
        self.model = model
        self.schema = schema
        self.refit_every = int(refit_every)
        self.max_stale_answers = (
            None if max_stale_answers is None else int(max_stale_answers)
        )
        self.warm_start = bool(warm_start)
        self.tol = None if tol is None else float(tol)
        self._owns_clock = clock is None
        self._clock = _RefitWorker() if clock is None else clock
        # The snapshot reference is the one piece of shared state the serving
        # path touches: published by assignment under _fit_lock, read without
        # any lock (atomic reference load of an immutable object).
        self._snapshot: Optional[ModelSnapshot] = None
        self._fit_lock = threading.Lock()
        self._request_lock = threading.Lock()
        self._pending: Optional[Tuple[AnswerSet, int]] = None
        self._background_error: Optional[BaseException] = None
        self.blocking_refits = 0
        self.background_refits = 0
        self.profile: Optional[HotPathProfile] = None
        self._closed = False

    def set_profile(self, profile: Optional[HotPathProfile]) -> None:
        """Attach a :class:`HotPathProfile` recording ``lock_wait`` /
        ``em_refit`` stage timings for every refit this engine runs."""
        self.profile = profile

    # -- lock-free reads -----------------------------------------------------

    @property
    def snapshot(self) -> Optional[ModelSnapshot]:
        """Latest published snapshot (lock-free; ``None`` before any fit)."""
        return self._snapshot

    @property
    def epoch(self) -> int:
        """Epoch of the latest snapshot (-1 before any fit)."""
        snapshot = self._snapshot
        return -1 if snapshot is None else snapshot.epoch

    def staleness(self, answers: AnswerSet) -> int:
        """Answers collected that the latest snapshot has not seen."""
        snapshot = self._snapshot
        if snapshot is None:
            return len(answers)
        return snapshot.staleness(answers)

    # -- scheduling ----------------------------------------------------------

    def notify(self, answers: AnswerSet) -> None:
        """Request a background refit if the snapshot is ``refit_every`` behind.

        Requests coalesce: however many arrive while a fit is running, the
        worker fits the newest answer count once.  In the
        ``max_stale_answers=0`` mode this is a no-op — every refit happens
        blocking on the select path, preserving the synchronous fit chain.
        """
        self._raise_background_error()
        if self._closed or self.max_stale_answers == 0:
            return
        snapshot = self._snapshot
        if snapshot is not None and snapshot.staleness(answers) < self.refit_every:
            return
        with self._request_lock:
            first = self._pending is None
            # Keep a reference to the live answer set plus the count to fit;
            # the worker freezes that prefix itself, off the serving path
            # (answers are append-only, so indexes < count are stable).
            self._pending = (answers, len(answers))
        if first:
            self._clock.submit(self._run_pending)

    def _run_pending(self) -> None:
        """Worker-side job: freeze the newest requested prefix and fit it."""
        with self._request_lock:
            request, self._pending = self._pending, None
        if request is None:
            return
        answers, count = request
        snapshot = self._snapshot
        if snapshot is not None and count <= snapshot.answers_seen:
            return
        try:
            frozen = AnswerSet(answers.schema, [answers[i] for i in range(count)])
            with self._fit_lock:
                snapshot = self._snapshot
                if snapshot is not None and count <= snapshot.answers_seen:
                    return
                with _stage(self.profile, "em_refit"):
                    result = self._fit(frozen, snapshot)
                self.background_refits += 1
                self._publish(result, count)
        except BaseException as exc:  # surfaced on the next serving call
            self._background_error = exc

    # -- serving -------------------------------------------------------------

    def result_for(self, answers: AnswerSet) -> InferenceResult:
        """The model the select path should score ``answers`` with.

        See :meth:`snapshot_for` for the staleness contract.
        """
        return self.snapshot_for(answers).result

    def snapshot_for(self, answers: AnswerSet) -> ModelSnapshot:
        """The snapshot the select path should score ``answers`` with.

        Lock-free unless the snapshot is missing or too stale, in which
        case one blocking catch-up refit runs before returning.  "Too
        stale" honours both knobs: the staleness bound *and* the refit
        cadence — the synchronous assigner itself serves a model up to
        ``refit_every - 1`` answers old between cadence refits, so the
        blocking threshold is ``max(max_stale_answers, refit_every - 1)``.
        That is what makes ``max_stale_answers=0`` reproduce the
        synchronous fit chain at any ``refit_every``, not just 1.

        Returning the whole :class:`ModelSnapshot` (rather than just its
        result) gives callers a consistent ``(epoch, result,
        answers_seen)`` read off one atomic reference — the key the
        composed policy's scoring cache is indexed by.
        """
        self._raise_background_error()
        snapshot = self._snapshot
        if snapshot is not None:
            if self.max_stale_answers is None:
                return snapshot
            threshold = max(self.max_stale_answers, self.refit_every - 1)
            if snapshot.staleness(answers) <= threshold:
                return snapshot
        return self.refit_now(answers)

    def restore(
        self, result: InferenceResult, answers_seen: int, epoch: Optional[int] = None
    ) -> ModelSnapshot:
        """Publish a previously persisted result as the served snapshot.

        The durable-recovery entry point: the service layer's write-ahead
        log deserialises the model state it snapshotted and re-seats it
        here, after which selects and catch-up refits continue the very
        same warm-start chain the crashed process was on.  ``epoch``
        defaults to one past the current epoch (0 on a fresh engine).
        """
        with self._fit_lock:
            if epoch is None:
                epoch = self.epoch + 1
            self._snapshot = ModelSnapshot(
                epoch=int(epoch),
                result=result,
                answers_seen=int(answers_seen),
            )
            return self._snapshot

    def refit_now(self, answers: AnswerSet) -> ModelSnapshot:
        """Blocking refit bringing the snapshot fully up to date."""
        self._raise_background_error()
        count = len(answers)
        with _stage(self.profile, "lock_wait"):
            self._fit_lock.acquire()
        try:
            snapshot = self._snapshot
            if snapshot is not None and snapshot.answers_seen >= count:
                # A background fit caught us up while we waited for the lock.
                return snapshot
            with _stage(self.profile, "em_refit"):
                result = self._fit(answers, snapshot)
            self.blocking_refits += 1
            self._publish(result, count)
            return self._snapshot
        finally:
            self._fit_lock.release()

    # -- internals -----------------------------------------------------------

    def _fit(
        self, answers: AnswerSet, previous: Optional[ModelSnapshot]
    ) -> InferenceResult:
        """One refit, warm-started and tolerance-stopped per the knobs."""
        tol = self.tol if (self.warm_start and previous is not None) else None
        return refit_model(
            self.model,
            self.schema,
            answers,
            previous=previous.result if previous is not None else None,
            warm_start=self.warm_start,
            tol=tol,
        )

    def _publish(self, result: InferenceResult, answers_seen: int) -> None:
        """Swap in a new immutable snapshot (caller holds ``_fit_lock``)."""
        previous = self._snapshot
        epoch = 0 if previous is None else previous.epoch + 1
        self._snapshot = ModelSnapshot(
            epoch=epoch, result=result, answers_seen=answers_seen
        )

    def _raise_background_error(self) -> None:
        error, self._background_error = self._background_error, None
        if error is not None:
            raise error

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for (or, with a :class:`VirtualClock`, run) pending refits."""
        done = self._clock.drain(timeout=timeout)
        self._raise_background_error()
        return done

    def close(self) -> None:
        """Shut down an engine-owned worker thread (idempotent)."""
        self._closed = True
        if self._owns_clock:
            self._clock.close()

    def __enter__(self) -> "AsyncRefitEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncRefitPolicy(AssignmentPolicy):
    """Serve a :class:`TCrowdAssigner`'s policy from async refit snapshots.

    Candidate filtering uses the same incremental
    :class:`~repro.engine.SessionState` as the wrapped assigner; scoring
    uses the wrapped assigner's gain calculators, built over whatever
    :class:`ModelSnapshot` the engine serves — the only behavioural
    difference to the synchronous policy is *which* inference result scores
    a select, exactly as bounded by ``max_stale_answers``.

    Parameters
    ----------
    inner:
        The assigner whose model, gain configuration and refit cadence are
        reused.  Monte-Carlo gain estimation (``continuous_samples > 0``)
        consumes an ordered sample stream whose draws would interleave
        nondeterministically with background refits and is rejected.
    max_stale_answers:
        See :class:`AsyncRefitEngine`.
    clock:
        See :class:`AsyncRefitEngine`; pass a :class:`VirtualClock` for
        deterministic tests.
    """

    def __init__(
        self,
        inner: TCrowdAssigner,
        max_stale_answers: Optional[int] = 0,
        clock=None,
    ) -> None:
        super().__init__(
            inner.schema,
            max_answers_per_cell=inner.max_answers_per_cell,
            incremental=True,
        )
        if inner.continuous_samples:
            raise ConfigurationError(
                "AsyncRefitPolicy requires the closed-form gain path "
                "(continuous_samples=0); the Monte-Carlo estimator consumes "
                "an ordered sample stream that async refits would reorder"
            )
        self.inner = inner
        self.profile: Optional[HotPathProfile] = None
        self.engine = AsyncRefitEngine(
            inner.model,
            inner.schema,
            refit_every=inner.refit_every,
            max_stale_answers=max_stale_answers,
            warm_start=inner.warm_start,
            tol=inner.refit_tol,
            clock=clock,
        )

    def set_profile(self, profile: Optional[HotPathProfile]) -> None:
        """Attach a :class:`HotPathProfile` to the policy and its engine."""
        self.profile = profile
        self.engine.set_profile(profile)

    @property
    def name(self) -> str:
        return f"{self.inner.name} [async refit]"

    @property
    def last_result(self) -> Optional[InferenceResult]:
        """The latest snapshot's inference result (None before any fit)."""
        snapshot = self.engine.snapshot
        return None if snapshot is None else snapshot.result

    def close(self) -> None:
        """Shut down the engine's background worker (idempotent)."""
        self.engine.close()

    def __enter__(self) -> "AsyncRefitPolicy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- policy --------------------------------------------------------------

    def select(self, worker: str, answers: AnswerSet, k: int = 1) -> BatchAssignment:
        """Assign the top-``k`` cells, scored with the served snapshot."""
        if k < 1:
            raise AssignmentError(f"k must be >= 1, got {k}")
        if len(answers) == 0:
            raise AssignmentError(
                "T-Crowd assignment needs at least one collected answer; "
                "seed each task with initial answers first (Algorithm 2, line 1)"
            )
        candidates = self.candidate_cells(worker, answers)
        if not candidates:
            raise AssignmentError(f"No candidate cells left for worker {worker!r}")
        with _stage(self.profile, "snapshot_acquire"):
            snapshot = self.engine.snapshot_for(answers)
        assignment = self.inner.rank_candidates(
            snapshot.result, worker, answers, candidates, k
        )
        if self._recorder is not None:
            self._record_decision(
                assignment,
                answers_seen=snapshot.answers_seen,
                answers_total=len(answers),
                candidates=len(candidates),
                result=snapshot.result,
                shards=_single_shard_lineage(len(candidates), assignment),
            )
        return assignment

    def observe(self, answers: AnswerSet) -> None:
        """Request a background refit for the newly arrived answers."""
        self.engine.notify(answers)

    def final_result(self, answers: AnswerSet) -> InferenceResult:
        """Blocking catch-up fit over all answers (end-of-session estimates)."""
        return self.engine.refit_now(answers).result

    # -- durability ----------------------------------------------------------

    def snapshot_state(self) -> Optional[Tuple[InferenceResult, int]]:
        """``(result, answers_seen)`` of the served snapshot (durable protocol)."""
        snapshot = self.engine.snapshot
        if snapshot is None:
            return None
        return snapshot.result, snapshot.answers_seen

    def restore_state(self, result: InferenceResult, answers_seen: int) -> None:
        """Re-seat a persisted snapshot (see :meth:`AsyncRefitEngine.restore`)."""
        self.engine.restore(result, answers_seen)
