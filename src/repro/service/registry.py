"""Multi-tenant session registry and the JSON codecs of the service API.

The registry owns every live :class:`ServedSession` of one server process.
Concurrency discipline:

* the **registry lock** guards only the id → session map (create / get /
  remove are O(1) critical sections);
* each session carries its **own** re-entrant lock, taken around every
  session operation (select, ingest, estimates, worker lookup).  The
  engine policies are single-session objects and not thread-safe against
  concurrent mutation, so the per-session lock serialises requests *within*
  a session while different sessions proceed fully in parallel — the same
  partitioning the sharded engine applies one level down.

Sessions are described by a **version-1 spec body** (see
:mod:`repro.config`): the envelope names where the rows live (an inline
``schema`` or a named ``dataset``, plus ``session_id`` / ``durable``),
the spec sections pick the policy, the serving mode and the durability
settings.  The PR-4 config dialect is still accepted — bodies without a
``version`` key upgrade through
:func:`repro.config.upgrade_legacy_config`.  Durable sessions pin the
*canonical* spec to ``session.json`` inside the durable directory;
:meth:`SessionRegistry.create` with such a directory *recovers* the
session (write-ahead-log replay, see :mod:`repro.service.wal`) instead of
creating a fresh one, and ``GET /sessions/{id}/config`` serves the
canonical spec back.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import pathlib
import threading
import uuid
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import (
    SessionSpec,
    split_envelope,
    upgrade_legacy_config,
)
from repro.config.factory import build_durable_session
from repro.config.factory import build_policy as _build_spec_policy
from repro.core.schema import Column, TableSchema
from repro.engine.provenance import DEFAULT_PAGE_LIMIT
from repro.service.wal import DurableSession
from repro.utils.exceptions import ConfigurationError, ReproError

_log = logging.getLogger("repro.service.registry")

#: Version of the durable ``session.json`` manifest.  Format 2 pins the
#: canonical v1 spec under ``"spec"``; format-1 manifests (the PR-4 legacy
#: config under ``"config"``) still recover through the upgrade shim.
MANIFEST_FORMAT = 2

#: Loaders a ``{"dataset": {"name": ...}}`` spec may reference.
_DATASET_LOADERS = {
    "celebrity": "load_celebrity",
    "emotion": "load_emotion",
    "restaurant": "load_restaurant",
    "synthetic": "generate_synthetic",
}


# -- schema codec -------------------------------------------------------------


def schema_to_dict(schema: TableSchema) -> dict:
    """JSON-safe description of a :class:`TableSchema`."""
    columns = []
    for column in schema.columns:
        if column.is_categorical:
            columns.append(
                {
                    "name": column.name,
                    "type": "categorical",
                    "labels": list(column.labels),
                }
            )
        else:
            columns.append(
                {
                    "name": column.name,
                    "type": "continuous",
                    "domain": list(column.domain) if column.domain else None,
                }
            )
    return {
        "entity_attribute": schema.entity_attribute,
        "num_rows": schema.num_rows,
        "columns": columns,
    }


def schema_from_dict(payload: dict) -> TableSchema:
    """Rebuild the :class:`TableSchema` described by :func:`schema_to_dict`."""
    try:
        columns = []
        for spec in payload["columns"]:
            kind = spec.get("type")
            if kind == "categorical":
                columns.append(
                    Column.categorical(spec["name"], tuple(spec["labels"]))
                )
            elif kind == "continuous":
                domain = spec.get("domain") or ()
                columns.append(Column.continuous(spec["name"], tuple(domain)))
            else:
                raise ConfigurationError(
                    f"Unknown column type {kind!r} (expected 'categorical' "
                    "or 'continuous')"
                )
        return TableSchema.build(
            payload["entity_attribute"], columns, int(payload["num_rows"])
        )
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"Malformed schema payload: {exc}") from exc


def resolve_schema(config: dict) -> TableSchema:
    """Schema of a session config: inline ``schema`` or a named ``dataset``."""
    if "schema" in config:
        return schema_from_dict(config["schema"])
    if "dataset" in config:
        spec = dict(config["dataset"])
        name = spec.pop("name", None)
        loader_name = _DATASET_LOADERS.get(name)
        if loader_name is None:
            raise ConfigurationError(
                f"Unknown dataset {name!r}; expected one of "
                f"{sorted(_DATASET_LOADERS)}"
            )
        import repro.datasets as datasets

        try:
            return getattr(datasets, loader_name)(**spec).schema
        except TypeError as exc:
            raise ConfigurationError(
                f"Invalid options for dataset {name!r}: {exc}"
            ) from exc
    raise ConfigurationError(
        "A session config needs either 'schema' (inline columns) or "
        "'dataset' (a named loader)"
    )


# -- config parsing / policy construction -------------------------------------


def parse_config(config: dict) -> Tuple[dict, SessionSpec]:
    """Parse a ``POST /sessions`` body into ``(envelope, spec)``.

    A body carrying ``version`` is parsed as a v1 spec document (strict,
    path-qualified errors); one without is treated as the legacy PR-4
    dialect and upgraded first (see
    :func:`repro.config.upgrade_legacy_config`).  The envelope holds the
    service-side keys (``schema`` / ``dataset`` / ``session_id`` /
    ``durable``).
    """
    if not isinstance(config, dict):
        raise ConfigurationError("The session config must be a JSON object")
    if "version" not in config:
        config = upgrade_legacy_config(config)
    envelope, payload = split_envelope(config)
    return envelope, SessionSpec.from_dict(payload)


def build_policy(schema: TableSchema, config):
    """Build the serving policy a session config describes.

    ``config`` may be a :class:`~repro.config.SessionSpec` or a JSON body
    in either dialect (v1 spec, or the legacy PR-4 config, upgraded via
    :func:`parse_config`).  The actual construction — assigner options,
    model options, and the serving-mode table (plain / sharded / async /
    composed) — is the shared factory in :mod:`repro.config.factory`.
    """
    if not isinstance(config, SessionSpec):
        _envelope, config = parse_config(dict(config))
    return _build_spec_policy(schema, config)


# -- served session -----------------------------------------------------------


class ServedSession:
    """One live session: policy + answers + WAL behind a per-session lock."""

    def __init__(
        self,
        session_id: str,
        schema: TableSchema,
        spec: SessionSpec,
        durable: DurableSession,
    ) -> None:
        self.session_id = session_id
        self.schema = schema
        self.spec = spec
        self.durable = durable
        self.lock = threading.RLock()
        self.selects_served = 0
        self.answers_ingested = 0
        self.estimate_requests = 0

    def config_payload(self) -> Dict[str, object]:
        """The canonical v1 spec body (``GET /sessions/{id}/config``).

        Exactly what :meth:`SessionRegistry.create` would need to rebuild
        this session: the spec's canonical ``to_dict`` form plus the
        schema/session-id envelope.
        """
        payload: Dict[str, object] = {
            "session_id": self.session_id,
            "schema": schema_to_dict(self.schema),
        }
        payload.update(self.spec.to_dict())
        return payload

    # -- operations (each one critical-sectioned on the session lock) --------

    def select(self, worker: str, k: int = 1):
        """Assign the next ``k`` cells to ``worker``."""
        with self.lock:
            assignment = self.durable.select(worker, k=k)
            self.selects_served += 1
            return assignment

    def ingest(self, worker: str, items: Sequence[Tuple[int, int, object]]) -> int:
        """Record a batch of collected answers; return the new total."""
        with self.lock:
            total = self.durable.append_answers(worker, items)
            self.answers_ingested += len(items)
            return total

    def estimates(self) -> Dict[str, object]:
        """Current truth estimates for every cell (triggers a catch-up fit)."""
        with self.lock:
            result = self.durable.estimates()
            self.estimate_requests += 1
            estimates = {
                f"{row},{col}": result.estimate(row, col)
                for row in range(self.schema.num_rows)
                for col in range(self.schema.num_columns)
            }
            return {
                "session_id": self.session_id,
                "answers_collected": len(self.durable.answers),
                "mean_answers_per_cell": self.durable.answers.mean_answers_per_cell(),
                "estimates": estimates,
            }

    def worker_info(self, worker: str) -> Dict[str, object]:
        """Answer count and estimated quality of one known worker.

        Raises :class:`KeyError` for a worker that never contributed an
        answer to this session (the API's 404).
        """
        with self.lock:
            answers = self.durable.answers
            if worker not in answers.workers:
                raise KeyError(worker)
            result = getattr(self.durable.policy, "last_result", None)
            quality = None
            variance = None
            if result is not None and result.has_worker(worker):
                quality = float(result.worker_quality(worker))
                variance = float(result.worker_variance(worker))
            return {
                "session_id": self.session_id,
                "worker": worker,
                "answers": len(answers.answers_by_worker(worker)),
                "quality": quality,
                "variance": variance,
            }

    # -- decisions API (audit layer) ------------------------------------------

    def _recorder(self):
        recorder = self.durable.recorder
        if recorder is None:
            raise ConfigurationError(
                "this session was created with serving.audit=false; "
                "no decision records exist"
            )
        return recorder

    def decision(self, decision_id: int) -> Dict[str, object]:
        """One audit record (``GET /sessions/{id}/decisions/{n}``).

        Raises :class:`KeyError` for an unknown decision id (the API's
        404) and :class:`ConfigurationError` when auditing is off.
        """
        with self.lock:
            record = self._recorder().get(int(decision_id))
        return {"session_id": self.session_id, **record.to_dict()}

    def decisions(
        self, since: int = 0, limit: int = DEFAULT_PAGE_LIMIT
    ) -> Dict[str, object]:
        """A page of audit records (``GET /sessions/{id}/decisions``)."""
        with self.lock:
            recorder = self._recorder()
            records = recorder.page(since, limit)
            total = recorder.count
            head = recorder.chain_head
        next_since = records[-1].decision_id + 1 if records else int(since)
        return {
            "session_id": self.session_id,
            "total": total,
            "chain_head": head,
            "next_since": next_since if next_since < total else None,
            "decisions": [record.to_dict() for record in records],
        }

    def stats(self) -> Dict[str, object]:
        """Status summary (the session resource representation)."""
        with self.lock:
            answers = self.durable.answers
            recorder = self.durable.recorder
            audit = {
                "decisions_recorded": (
                    None if recorder is None else recorder.count
                ),
                "decision_chain_hash": (
                    None if recorder is None else recorder.chain_head
                ),
                "audit_replay_verified": (
                    None if recorder is None else recorder.replay_verified
                ),
                "audit_replay_mismatches": (
                    None if recorder is None else recorder.replay_mismatches
                ),
            }
            return {
                "session_id": self.session_id,
                "policy": self.durable.policy.name,
                "num_rows": self.schema.num_rows,
                "num_columns": self.schema.num_columns,
                "answers_collected": len(answers),
                "workers": answers.num_workers,
                "mean_answers_per_cell": answers.mean_answers_per_cell(),
                "selects_served": self.selects_served,
                "answers_ingested": self.answers_ingested,
                "estimate_requests": self.estimate_requests,
                "durable": self.durable.durable,
                "wal_records": self.durable.wal_records,
                "wal_segments": self.durable.wal_segments,
                "snapshots_written": self.durable.snapshots_written,
                "snapshots_retained": self.durable.snapshots_retained,
                "durability_backend": self.durable.backend_name,
                "recovered_epoch": self.durable.recovered_epoch,
                **audit,
            }

    def close(self) -> None:
        """Snapshot, close the log, release the policy's threads."""
        with self.lock:
            self.durable.close()


# -- registry -----------------------------------------------------------------


class SessionRegistry:
    """The id → :class:`ServedSession` map of one server process.

    Parameters
    ----------
    durable_root:
        Optional directory under which sessions created with
        ``{"durable": true}`` get their per-session subdirectory.  Explicit
        ``{"durable_dir": ...}`` configs work without it.
    durable_backend:
        Optional server-wide default storage backend (``"jsonl"`` /
        ``"sqlite"``) applied to durable sessions whose config does not
        set ``durability.backend`` explicitly.  Recovered sessions always
        use the backend pinned in their manifest.
    """

    def __init__(self, durable_root=None, durable_backend=None) -> None:
        self.durable_root = (
            None if durable_root is None else pathlib.Path(durable_root)
        )
        self.durable_backend = durable_backend
        self._sessions: Dict[str, ServedSession] = {}
        self._lock = threading.Lock()
        #: Optional :class:`~repro.engine.HotPathProfile` attached to every
        #: policy built by this registry that supports ``set_profile``
        #: (the engine serving wrappers).  The service sets this to the
        #: profile behind ``/metrics`` so per-stage hot-path histograms
        #: aggregate across sessions.
        self.hotpath_profile = None

    # -- lookup --------------------------------------------------------------

    def ids(self) -> List[str]:
        """Ids of every live session."""
        with self._lock:
            return sorted(self._sessions)

    def sessions(self) -> List[ServedSession]:
        """Snapshot of every live session (for metrics aggregation)."""
        with self._lock:
            return list(self._sessions.values())

    def get(self, session_id: str) -> ServedSession:
        """The live session with this id (raises :class:`KeyError`)."""
        with self._lock:
            return self._sessions[session_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- creation / recovery -------------------------------------------------

    def create(self, config: dict) -> ServedSession:
        """Create (or recover) a session from its JSON config.

        Accepts the v1 spec body and — via the upgrade shim — the legacy
        PR-4 dialect (see :func:`parse_config`).
        """
        envelope, spec = parse_config(config)
        durable_dir = self._resolve_durable_dir(envelope, spec)
        if durable_dir is not None and (durable_dir / "session.json").exists():
            return self._register(self._recover(durable_dir))
        session_id = envelope.get("session_id") or uuid.uuid4().hex[:12]
        if durable_dir is None and envelope.get("durable"):
            raise ConfigurationError(
                "durable=true needs the server's --durable-root (or an "
                "explicit durability.durable_dir in the session spec)"
            )
        if durable_dir is not None:
            # Pin the resolved directory so the manifest spec is the full,
            # self-contained truth (a later create() on just that directory
            # recovers the identical session).
            spec = spec.with_durable_dir(str(durable_dir))
            spec = self._apply_default_backend(config, spec)
        session = self._build(session_id, envelope, spec, durable_dir)
        if durable_dir is not None:
            manifest = {
                "format": MANIFEST_FORMAT,
                "session_id": session_id,
                "schema": schema_to_dict(session.schema),
                "spec": spec.to_dict(),
            }
            (durable_dir / "session.json").write_text(
                json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
            )
        return self._register(session)

    def recover_all(self) -> List[str]:
        """Recover every durable session found under ``durable_root``.

        One corrupt directory must not take the healthy sessions (or the
        whole server boot) down with it: per-directory failures are
        reported to stderr and skipped.
        """
        if self.durable_root is None or not self.durable_root.exists():
            return []
        recovered = []
        for path in sorted(self.durable_root.iterdir()):
            if not (path / "session.json").exists():
                continue
            try:
                recovered.append(self._register(self._recover(path)).session_id)
            except ReproError as exc:
                _log.warning(
                    "skipping unrecoverable session directory %s: %s",
                    path, exc,
                    extra={"session_id": path.name},
                )
        return recovered

    def _apply_default_backend(self, config, spec: SessionSpec) -> SessionSpec:
        """Fill in the server-wide default backend when the config left it out.

        Only an *explicit* ``durability.backend`` in the request body wins
        over the server default; the spec-level default (``jsonl``) does
        not, or ``--durable-backend`` could never take effect.
        """
        if self.durable_backend is None:
            return spec
        requested = None
        if isinstance(config, dict):
            durability = config.get("durability")
            if isinstance(durability, dict):
                requested = durability.get("backend")
        if requested is not None:
            return spec
        return dataclasses.replace(
            spec,
            durability=dataclasses.replace(
                spec.durability, backend=self.durable_backend
            ),
        )

    def _resolve_durable_dir(
        self, envelope: dict, spec: SessionSpec
    ) -> Optional[pathlib.Path]:
        explicit = spec.durability.durable_dir
        if explicit:
            return pathlib.Path(explicit)
        if envelope.get("durable"):
            if self.durable_root is None:
                return None  # create() raises the descriptive error
            session_id = envelope.get("session_id") or uuid.uuid4().hex[:12]
            envelope["session_id"] = session_id
            return self.durable_root / session_id
        return None

    def _recover(self, durable_dir: pathlib.Path) -> ServedSession:
        try:
            manifest = json.loads(
                (durable_dir / "session.json").read_text(encoding="utf-8")
            )
            session_id = manifest["session_id"]
            if "spec" in manifest:
                envelope = {"schema": manifest["schema"]}
                spec = SessionSpec.from_dict(manifest["spec"])
            else:
                # Format-1 manifest (PR-4 legacy config): upgrade in place.
                config = dict(manifest.get("config") or {})
                config["schema"] = manifest["schema"]
                envelope, spec = parse_config(config)
        except (OSError, ValueError, KeyError) as exc:
            raise ConfigurationError(
                f"Cannot recover session manifest in {durable_dir}: {exc}"
            ) from exc
        # The directory may have moved since the manifest was written (the
        # operator relocated --durable-root); trust where we found it.
        spec = spec.with_durable_dir(str(durable_dir))
        with self._lock:
            if session_id in self._sessions:
                return self._sessions[session_id]
        return self._build(session_id, envelope, spec, durable_dir)

    def _build(
        self,
        session_id: str,
        envelope: dict,
        spec: SessionSpec,
        durable_dir: Optional[pathlib.Path],
    ) -> ServedSession:
        schema = resolve_schema(envelope)
        policy = _build_spec_policy(schema, spec)
        if self.hotpath_profile is not None and hasattr(policy, "set_profile"):
            policy.set_profile(self.hotpath_profile)
        durable = build_durable_session(
            schema, policy, spec, directory=durable_dir
        )
        return ServedSession(session_id, schema, spec, durable)

    def _register(self, session: ServedSession) -> ServedSession:
        with self._lock:
            existing = self._sessions.get(session.session_id)
            if existing is not None and existing is not session:
                session.close()
                raise ConfigurationError(
                    f"Session id {session.session_id!r} is already live"
                )
            self._sessions[session.session_id] = session
        _log.info(
            "session registered: %s (%s)",
            session.session_id, session.durable.policy.name,
            extra={"session_id": session.session_id},
        )
        return session

    # -- teardown ------------------------------------------------------------

    def remove(self, session_id: str) -> None:
        """Close one session and drop it (raises :class:`KeyError`)."""
        with self._lock:
            session = self._sessions.pop(session_id)
        session.close()
        _log.info(
            "session removed: %s", session_id,
            extra={"session_id": session_id},
        )

    def close_all(self) -> None:
        """Close every session (server shutdown)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()
