"""Dawid & Skene (1979) confusion-matrix EM — the paper's "EM" baseline.

Each categorical column is processed independently (the method has no way to
transfer knowledge across label sets of different columns, which is exactly
the weakness T-Crowd addresses).  For every column, each worker gets an
``|L| x |L|`` confusion matrix whose entry ``(t, a)`` is the probability of
answering ``a`` when the truth is ``t``; truths and matrices are estimated by
EM with Laplace smoothing.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.baselines.base import BaselineResult, TruthInferenceMethod
from repro.core.answers import AnswerSet
from repro.core.schema import TableSchema
from repro.utils.numerics import normalize_log_probs, safe_log


class DawidSkene(TruthInferenceMethod):
    """Per-column Dawid & Skene EM with confusion matrices."""

    name = "D&S (EM)"

    def __init__(self, max_iterations: int = 50, tolerance: float = 1e-4,
                 smoothing: float = 0.1) -> None:
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.smoothing = float(smoothing)

    def supports_continuous(self) -> bool:
        return False

    def fit(self, schema: TableSchema, answers: AnswerSet) -> BaselineResult:
        estimates: Dict[Tuple[int, int], object] = {}
        worker_accuracy: Dict[str, List[float]] = {}
        for col in schema.categorical_indices:
            column_estimates, column_accuracy = self._fit_column(schema, answers, col)
            estimates.update(column_estimates)
            for worker, accuracy in column_accuracy.items():
                worker_accuracy.setdefault(worker, []).append(accuracy)
        weights = {
            worker: float(np.mean(values)) for worker, values in worker_accuracy.items()
        }
        return BaselineResult(schema, self.name, estimates, worker_weights=weights)

    # -- single column ---------------------------------------------------------

    def _fit_column(self, schema: TableSchema, answers: AnswerSet, col: int):
        column = schema.columns[col]
        num_labels = column.num_labels
        column_answers = answers.answers_in_column(col)
        if not column_answers:
            return {}, {}
        workers = sorted({answer.worker for answer in column_answers})
        worker_index = {worker: u for u, worker in enumerate(workers)}
        rows = sorted({answer.row for answer in column_answers})
        row_index = {row: i for i, row in enumerate(rows)}

        # observation arrays
        obs_row = np.array([row_index[a.row] for a in column_answers])
        obs_worker = np.array([worker_index[a.worker] for a in column_answers])
        obs_label = np.array([column.label_index(a.value) for a in column_answers])

        num_rows = len(rows)
        num_workers = len(workers)

        # Initialise posteriors from vote fractions.
        posterior = np.full((num_rows, num_labels), 1e-6)
        np.add.at(posterior, (obs_row, obs_label), 1.0)
        posterior = posterior / posterior.sum(axis=1, keepdims=True)

        confusion = np.full((num_workers, num_labels, num_labels), 1.0 / num_labels)
        prior = np.full(num_labels, 1.0 / num_labels)

        for _iteration in range(self.max_iterations):
            previous = posterior.copy()
            # M-step: confusion matrices and class prior.
            confusion = np.full(
                (num_workers, num_labels, num_labels), self.smoothing
            )
            np.add.at(
                confusion,
                (obs_worker, slice(None), obs_label),
                posterior[obs_row],
            )
            confusion = confusion / confusion.sum(axis=2, keepdims=True)
            prior = posterior.sum(axis=0) + self.smoothing
            prior = prior / prior.sum()
            # E-step: truth posteriors.
            log_post = np.tile(safe_log(prior), (num_rows, 1))
            log_terms = safe_log(confusion[obs_worker, :, obs_label])
            np.add.at(log_post, obs_row, log_terms)
            posterior = normalize_log_probs(log_post, axis=1)
            if np.max(np.abs(posterior - previous)) < self.tolerance:
                break

        estimates = {
            (row, col): column.labels[int(np.argmax(posterior[row_index[row]]))]
            for row in rows
        }
        accuracy = {
            worker: float(np.mean(np.diag(confusion[worker_index[worker]])))
            for worker in workers
        }
        return estimates, accuracy
