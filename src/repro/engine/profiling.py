"""Per-stage wall-clock accounting for the serving hot path.

Optimising the composed serving mode needs attribution, not anecdotes: a
select that takes 4 ms could be spending it acquiring the model snapshot,
rebuilding the gain calculator, scoring candidates, or merging per-shard
top-Ks — and the fix is different for each.  :class:`HotPathProfile` is the
lightweight answer: a thread-safe set of named stage timers that the engine
layer feeds through :meth:`HotPathProfile.stage` context managers.  Profiles
are strictly opt-in — no policy carries one until :meth:`set_profile` wires
it — so the default hot path pays nothing beyond an attribute check.

The canonical stage names (``STAGES``) cover the composed pipeline:

``snapshot_acquire``
    Getting the inference result to score with (lock-free snapshot read, or
    a blocking catch-up refit when the staleness bound trips).
``lock_wait``
    Time spent waiting on the refit lock inside a blocking catch-up (a
    subset of ``snapshot_acquire`` when contention exists).
``em_refit``
    The EM fit itself, background or blocking.
``calculator_build``
    Building the per-select gain calculator over the snapshot (includes the
    structure-model fit; the scoring cache exists to amortise this).
``gains_batch``
    Vectorised candidate scoring.
``top_k_merge``
    Selecting the global top-K (stacked ``top_k_stable`` or the per-shard
    heap merge).

Aggregates per stage: call count, total seconds, max seconds, and a
fixed-bound latency histogram — the same cumulative-bucket shape Prometheus
expects, so the service layer can surface the profile on ``/metrics``
verbatim.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Canonical hot-path stage names, in pipeline order.
STAGES: Tuple[str, ...] = (
    "snapshot_acquire",
    "lock_wait",
    "em_refit",
    "calculator_build",
    "gains_batch",
    "top_k_merge",
)

#: Histogram bucket upper bounds, in seconds.  Spans 0.1 ms to 1 s —
#: everything slower lands in the implicit +Inf bucket.
BUCKET_BOUNDS: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
)


@dataclass
class StageStats:
    """Aggregated timings of one named hot-path stage."""

    calls: int = 0
    seconds: float = 0.0
    max_seconds: float = 0.0
    #: Non-cumulative per-bucket counts; index i counts observations with
    #: ``seconds <= BUCKET_BOUNDS[i]`` (and > the previous bound); the last
    #: slot is the +Inf overflow bucket.
    buckets: List[int] = field(
        default_factory=lambda: [0] * (len(BUCKET_BOUNDS) + 1)
    )

    def observe(self, seconds: float) -> None:
        self.calls += 1
        self.seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        for index, bound in enumerate(BUCKET_BOUNDS):
            if seconds <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "calls": self.calls,
            "seconds": self.seconds,
            "max_seconds": self.max_seconds,
            "mean_ms": (self.seconds / self.calls * 1000.0) if self.calls else 0.0,
            "buckets": list(self.buckets),
        }


def stage(profile: Optional["HotPathProfile"], name: str):
    """Stage timer that degrades to a no-op when no profile is attached.

    The engine layer calls this on every select; without a profile it
    returns a shared :func:`~contextlib.nullcontext`, so unprofiled serving
    pays one ``is None`` check per stage.
    """
    return nullcontext() if profile is None else profile.stage(name)


class HotPathProfile:
    """Thread-safe per-stage wall-clock profile of the serving hot path.

    One instance is shared by every component of a policy stack (sharded
    scorer, async engine, service session), each timing its own stages; the
    per-stage aggregates therefore describe the stack as one pipeline.
    Recording is two dict lookups plus float adds under a lock — cheap
    enough to leave on during benchmarking, but still opt-in.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: Dict[str, StageStats] = {}

    def record(self, stage: str, seconds: float) -> None:
        """Fold one observation of ``stage`` taking ``seconds`` in."""
        with self._lock:
            stats = self._stages.get(stage)
            if stats is None:
                stats = self._stages[stage] = StageStats()
            stats.observe(seconds)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block as one observation of stage ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    def stats(self, stage: str) -> StageStats:
        """A copy of one stage's aggregates (zeros if never observed)."""
        with self._lock:
            stats = self._stages.get(stage)
            if stats is None:
                return StageStats()
            return StageStats(
                calls=stats.calls,
                seconds=stats.seconds,
                max_seconds=stats.max_seconds,
                buckets=list(stats.buckets),
            )

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready ``{stage: {calls, seconds, max_seconds, mean_ms,
        buckets}}`` in canonical stage order (extra stages sort last)."""
        with self._lock:
            items = dict(self._stages)
        ordered = [name for name in STAGES if name in items]
        ordered += sorted(name for name in items if name not in STAGES)
        return {name: items[name].to_dict() for name in ordered}

    def render_prometheus(self, prefix: str = "repro_hotpath") -> List[str]:
        """Prometheus text-format histogram lines for every observed stage.

        Buckets are emitted cumulatively with an ``le`` label, one
        ``<prefix>_stage_seconds`` histogram per stage, matching the
        exposition format the rest of ``/metrics`` uses.
        """
        snapshot = self.to_dict()
        if not snapshot:
            return []
        lines = [
            f"# HELP {prefix}_stage_seconds Hot-path stage latency histogram.",
            f"# TYPE {prefix}_stage_seconds histogram",
        ]
        for name, stats in snapshot.items():
            cumulative = 0
            for bound, count in zip(BUCKET_BOUNDS, stats["buckets"]):
                cumulative += count
                lines.append(
                    f'{prefix}_stage_seconds_bucket{{stage="{name}",le="{bound}"}} '
                    f"{cumulative}"
                )
            cumulative += stats["buckets"][-1]
            lines.append(
                f'{prefix}_stage_seconds_bucket{{stage="{name}",le="+Inf"}} '
                f"{cumulative}"
            )
            lines.append(
                f'{prefix}_stage_seconds_sum{{stage="{name}"}} {stats["seconds"]}'
            )
            lines.append(
                f'{prefix}_stage_seconds_count{{stage="{name}"}} {stats["calls"]}'
            )
        return lines
