"""The :class:`AssignmentStrategy` seam and its determinism toolkit.

A strategy decides *what scores candidate cells* — it plugs into
:meth:`repro.core.assignment.TCrowdAssigner._build_calculator`, the one
point every serving mode funnels scoring through (the vectorized select,
the scalar path, the sharded per-shard scorer, the composed
snapshot-scoring path and the multi-process worker twins all build their
calculator there).  Everything *around* the scores — candidate filtering,
stable top-K and the cross-shard merge, refit cadence, WAL replay,
decision provenance — is shared machinery the strategy never touches,
which is what makes every strategy bit-identical across all five serving
modes by construction.

The contract for the returned calculator mirrors the paper calculators
(:class:`~repro.core.information_gain.InformationGainCalculator`):

``gain(worker, row, col) -> float``
    Score one cell (the scalar / non-vectorized path).
``gains_batch(worker, cells) -> np.ndarray``
    Score many cells in one pass (the vectorized and sharded paths).
``prewarm() -> None``
    Make subsequent ``gains_batch`` calls side-effect free (the threaded
    sharded scorer calls it before fanning out; a no-op is fine for
    calculators that never mutate).

Determinism rules every strategy must obey (and the provided helpers
make easy):

* **No stateful RNG.**  A generator advanced per call would diverge the
  moment one serving mode scores in a different order than another, or a
  WAL recovery replays from a snapshot-pruned prefix.  Randomised
  strategies draw from :func:`hash_unit` — a pure function of
  ``(seed, context)`` — instead.
* **Scores are a pure function of ``(result, answers, worker, cell)``.**
  Two processes holding the same session state must produce the same
  score for the same cell, or the multi-process merge breaks.
* **Finite floats only.**  Scores ride the JSON wire protocol of the
  process coordinator and the audit ledger; ``inf``/``nan`` do not
  survive it.  Use :data:`RETIRED_GAIN` as the "never pick this" value.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.inference import InferenceResult

Cell = Tuple[int, int]

#: Finite sentinel for cells a strategy has retired: small enough that any
#: live cell outranks it, finite so it survives JSON (the coordinator wire
#: protocol and the audit ledger both refuse ``-inf``).
RETIRED_GAIN = -1e18

_DOMAIN = b"repro.strategies"


def hash_unit(seed, *context) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed on ``(seed, context)``.

    A BLAKE2b digest over the canonical byte string of the key, mapped to
    a float — the stateless substitute for a stateful RNG.  Identical
    keys give identical draws in every process, serving mode and replay;
    varying any key component (e.g. ``answers_total``) refreshes the
    stream as the session advances.
    """
    key = ":".join(
        "none" if part is None else str(part) for part in (seed, *context)
    )
    digest = hashlib.blake2b(
        key.encode("utf-8"), digest_size=8, person=_DOMAIN
    ).digest()
    return int.from_bytes(digest, "little") / 2.0 ** 64


class StrategyCalculator(abc.ABC):
    """Base class for strategy-built gain calculators.

    Provides the default ``gains_batch`` (a loop over :meth:`gain`) and a
    no-op :meth:`prewarm`; strategies with a vectorisable score override
    ``gains_batch``.
    """

    @abc.abstractmethod
    def gain(self, worker: str, row: int, col: int) -> float:
        """Score one candidate cell for ``worker``."""

    def gains_batch(self, worker: str, cells: Iterable[Cell]) -> np.ndarray:
        """Scores for many candidate cells (default: scalar loop)."""
        return np.array(
            [self.gain(worker, row, col) for row, col in cells], dtype=float
        )

    def prewarm(self) -> None:
        """Make ``gains_batch`` side-effect free (default: already is)."""


class AssignmentStrategy(abc.ABC):
    """One pluggable scoring policy (see the module docs for the contract).

    ``spec`` is the :class:`~repro.config.StrategySpec` the strategy was
    built from — the serializable identity that ships across the process
    boundary (:func:`repro.engine.coordinator.worker_spec_from_assigner`)
    and is pinned, by name, into durable manifests and the decision-chain
    genesis.
    """

    def __init__(self, spec) -> None:
        self.spec = spec

    @property
    def name(self) -> str:
        """The registry name (``spec.name``)."""
        return self.spec.name

    @abc.abstractmethod
    def build_calculator(
        self,
        assigner,
        result: InferenceResult,
        answers: AnswerSet,
    ):
        """The calculator scoring this select.

        ``assigner`` is the owning
        :class:`~repro.core.assignment.TCrowdAssigner`; strategies that
        compose over the paper's gain call
        ``assigner.paper_calculator(result, answers)`` for the inner
        calculator (never ``_build_calculator``, which would recurse back
        into the strategy).
        """


def batch_scores(
    cells: Sequence[Cell], score_fn
) -> np.ndarray:
    """``np.ndarray`` of ``score_fn(row, col)`` over ``cells``."""
    return np.array([score_fn(row, col) for row, col in cells], dtype=float)
