"""Composition of single-datatype inference methods.

Several compared systems handle only one datatype (Majority Voting, Median,
GTM, ...).  :class:`CombinedInference` composes one method for categorical
columns with one for continuous columns so that they can be evaluated — and
used as the evaluation model of an assignment policy — on the full
heterogeneous table, exactly as the paper pairs e.g. CDAS with majority
voting and AskIt! with majority voting / averaging.
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult, TruthInferenceMethod
from repro.baselines.majority_voting import MajorityVoting
from repro.baselines.median import MedianAggregator
from repro.core.answers import AnswerSet
from repro.core.schema import TableSchema


class CombinedInference(TruthInferenceMethod):
    """Run one method on categorical columns and another on continuous columns."""

    def __init__(
        self,
        categorical: TruthInferenceMethod = None,
        continuous: TruthInferenceMethod = None,
        name: str = None,
    ) -> None:
        self.categorical = categorical or MajorityVoting()
        self.continuous = continuous or MedianAggregator()
        self.name = name or f"{self.categorical.name} + {self.continuous.name}"

    def fit(self, schema: TableSchema, answers: AnswerSet) -> BaselineResult:
        estimates = {}
        weights = {}
        if schema.categorical_indices:
            categorical_answers = answers.restricted_to_columns(
                schema.categorical_indices
            )
            if len(categorical_answers):
                result = self.categorical.fit(schema, categorical_answers)
                estimates.update(result.estimates())
                weights.update(result.worker_weights)
        if schema.continuous_indices:
            continuous_answers = answers.restricted_to_columns(
                schema.continuous_indices
            )
            if len(continuous_answers):
                result = self.continuous.fit(schema, continuous_answers)
                estimates.update(result.estimates())
                for worker, weight in result.worker_weights.items():
                    weights.setdefault(worker, weight)
        return BaselineResult(schema, self.name, estimates, worker_weights=weights)
