"""Shared utilities: RNG handling, numerics, validation and exceptions."""

from repro.utils.exceptions import (
    ConfigurationError,
    DataError,
    InferenceError,
    ReproError,
)
from repro.utils.numerics import (
    log_erf,
    logsumexp,
    normalize_log_probs,
    safe_erf,
    safe_log,
    safe_var,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    require,
    require_in_range,
    require_positive,
    require_probability,
)

__all__ = [
    "ConfigurationError",
    "DataError",
    "InferenceError",
    "ReproError",
    "as_generator",
    "log_erf",
    "logsumexp",
    "normalize_log_probs",
    "require",
    "require_in_range",
    "require_positive",
    "require_probability",
    "safe_erf",
    "safe_log",
    "safe_var",
    "spawn_generators",
]
