"""Figure 2 — end-to-end system comparison (effectiveness vs budget).

Each compared system pairs an assignment policy with its own truth-inference
method (as in the paper):

* **T-Crowd** — structure-aware information-gain assignment + T-Crowd inference;
* **AskIt!** — highest-uncertainty assignment + majority voting / averaging;
* **CDAS** — confidence-terminated random assignment + majority voting / averaging;
* **CRH** — random assignment + CRH inference;
* **CATD** — random assignment + CATD inference.

The harness runs one simulated crowdsourcing session per system over the same
dataset and budget and reports Error Rate and MNAD as a function of the
average number of answers per task — the five panels of Figure 2 correspond
to (dataset, metric) combinations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines import CATD, CRH
from repro.baselines.assignment_askit import AskItAssigner
from repro.baselines.assignment_cdas import CDASAssigner
from repro.baselines.assignment_simple import RandomAssigner
from repro.baselines.combined import CombinedInference
from repro.core.assignment import TCrowdAssigner
from repro.core.inference import TCrowdModel
from repro.datasets import load_celebrity, load_emotion, load_restaurant
from repro.experiments.reporting import ExperimentReport
from repro.platform import CrowdsourcingSession, SessionTrace
from repro.utils.exceptions import ConfigurationError

#: Dataset loaders and their paper budget (max answers per task in Figure 2).
_FIGURE2_DATASETS = {
    "Celebrity": (load_celebrity, 5.0),
    "Restaurant": (load_restaurant, 4.0),
    "Emotion": (load_emotion, 10.0),
}


def _build_policies(
    schema,
    seed: int,
    refit_every: int,
    model: TCrowdModel,
    warm_start: bool = False,
):
    """The five compared systems: (name, policy, inference)."""
    return [
        (
            "T-Crowd",
            TCrowdAssigner(
                schema,
                model=model,
                use_structure=True,
                refit_every=refit_every,
                warm_start=warm_start,
            ),
            model,
        ),
        ("AskIt!", AskItAssigner(schema), CombinedInference(name="MV+Median")),
        ("CDAS", CDASAssigner(schema, seed=seed + 1), CombinedInference(name="MV+Median")),
        ("CRH", RandomAssigner(schema, seed=seed + 2), CRH()),
        ("CATD", RandomAssigner(schema, seed=seed + 3), CATD()),
    ]


def run_figure2(
    dataset_name: str = "Celebrity",
    seed: int = 7,
    num_rows: Optional[int] = 40,
    target_answers_per_task: Optional[float] = None,
    initial_answers_per_task: int = 1,
    eval_every: float = 0.5,
    refit_every: Optional[int] = None,
    model_kwargs: Optional[dict] = None,
    warm_start: bool = False,
) -> ExperimentReport:
    """Reproduce one dataset's panels of Figure 2.

    ``num_rows`` defaults to a reduced table so the five sessions finish in
    seconds; pass ``None`` for the paper-sized tables.  ``target_answers_per_task``
    defaults to the paper's budget for the chosen dataset.  ``warm_start``
    opts T-Crowd's refits into reusing the previous inference result; the
    reproduction default stays ``False`` (cold starts) so the figure replays
    the validated seed trajectories — warm starts are tolerance-equivalent
    but break near-ties differently (see ``tests/test_engine.py``).
    """
    if dataset_name not in _FIGURE2_DATASETS:
        raise ConfigurationError(
            f"Unknown dataset {dataset_name!r}; choose from {sorted(_FIGURE2_DATASETS)}"
        )
    loader, paper_budget = _FIGURE2_DATASETS[dataset_name]
    budget = target_answers_per_task or paper_budget
    kwargs = {"seed": seed}
    if num_rows:
        kwargs["num_rows"] = num_rows
    dataset = loader(**kwargs)
    schema = dataset.schema
    refit = refit_every or max(schema.num_columns, 5)
    model = TCrowdModel(**(model_kwargs or {"max_iterations": 15, "m_step_iterations": 20}))

    report = ExperimentReport(
        experiment_id="figure2",
        title=f"End-to-end comparison on {dataset_name} (Error Rate / MNAD vs answers per task)",
        headers=["System", "final answers/task", "final ErrorRate", "final MNAD"],
    )
    traces: Dict[str, SessionTrace] = {}
    for name, policy, inference in _build_policies(
        schema, seed, refit, model, warm_start=warm_start
    ):
        session = CrowdsourcingSession(
            dataset,
            policy,
            inference,
            target_answers_per_task=budget,
            initial_answers_per_task=initial_answers_per_task,
            eval_every_answers_per_task=eval_every,
            seed=seed + 100,
        )
        trace = session.run()
        traces[name] = trace
        final = trace.final
        report.add_row(name, round(final.answers_per_task, 2), final.error_rate, final.mnad)
        if schema.categorical_indices:
            report.add_series(f"{name} ErrorRate", trace.series("error_rate"))
        if schema.continuous_indices:
            report.add_series(f"{name} MNAD", trace.series("mnad"))
    report.add_note(
        f"dataset={dataset_name}, num_rows={num_rows or 'paper size'}, "
        f"budget={budget} answers/task, seed={seed}, refit_every={refit}"
    )
    report.add_note(
        "Each system is evaluated with its own inference method; T-Crowd uses "
        "structure-aware information gain."
    )
    return report


def run_figure2_all(seed: int = 7, num_rows: Optional[int] = 40) -> List[ExperimentReport]:
    """Run Figure 2 for all three datasets (panels a-e)."""
    return [
        run_figure2(dataset_name=name, seed=seed, num_rows=num_rows)
        for name in _FIGURE2_DATASETS
    ]
