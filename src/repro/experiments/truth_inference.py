"""Table 7 — effectiveness of truth inference.

Runs every compared method (T-Crowd, CRH, CATD, Majority Voting, D&S/EM,
GLAD, ZenCrowd, TC-onlyCate, Median, GTM, TC-onlyCont) on the three
(simulated) real datasets and reports Error Rate / MNAD, exactly like the
paper's Table 7.  Multiple trials regenerate the simulated datasets with
different seeds and the metrics are averaged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import (
    CATD,
    CRH,
    DawidSkene,
    GLAD,
    GTM,
    MajorityVoting,
    MedianAggregator,
    ZenCrowd,
)
from repro.core.inference import TCrowdModel
from repro.core.restricted import TCrowdCategoricalOnly, TCrowdContinuousOnly
from repro.datasets import load_celebrity, load_emotion, load_restaurant
from repro.experiments.reporting import ExperimentReport
from repro.metrics import error_rate, mnad

#: Default dataset loaders keyed by display name.
DATASET_LOADERS: Dict[str, Callable] = {
    "Celebrity": load_celebrity,
    "Restaurant": load_restaurant,
    "Emotion": load_emotion,
}


def _method_registry(model_kwargs: Optional[dict] = None) -> List[tuple]:
    """(name, factory, handles_categorical, handles_continuous) for Table 7."""
    model_kwargs = dict(model_kwargs or {})
    return [
        ("T-Crowd", lambda: TCrowdModel(**model_kwargs), True, True),
        ("CRH", CRH, True, True),
        ("CATD", CATD, True, True),
        ("Maj. Voting", MajorityVoting, True, False),
        ("EM", DawidSkene, True, False),
        ("GLAD", GLAD, True, False),
        ("Zencrowd", ZenCrowd, True, False),
        ("TC-onlyCate", lambda: TCrowdCategoricalOnly(**model_kwargs), True, False),
        ("Median", MedianAggregator, False, True),
        ("GTM", GTM, False, True),
        ("TC-onlyCont", lambda: TCrowdContinuousOnly(**model_kwargs), False, True),
    ]


def evaluate_method(method, dataset) -> Dict[str, Optional[float]]:
    """Fit one method on one dataset and return its Error Rate / MNAD."""
    result = method.fit(dataset.schema, dataset.answers)
    metrics: Dict[str, Optional[float]] = {"error_rate": None, "mnad": None}
    if dataset.schema.categorical_indices and getattr(
        method, "supports_categorical", lambda: True
    )():
        metrics["error_rate"] = error_rate(result, dataset)
    if dataset.schema.continuous_indices and getattr(
        method, "supports_continuous", lambda: True
    )():
        metrics["mnad"] = mnad(result, dataset)
    return metrics


def run_table7(
    dataset_names: Optional[Sequence[str]] = None,
    seed: int = 7,
    trials: int = 1,
    num_rows: Optional[int] = None,
    model_kwargs: Optional[dict] = None,
) -> ExperimentReport:
    """Reproduce Table 7 (truth-inference effectiveness).

    ``trials`` regenerates each simulated dataset that many times with
    different seeds and averages the metrics; ``num_rows`` reduces the table
    sizes for quick runs (None keeps the paper's sizes).
    """
    names = list(dataset_names or DATASET_LOADERS)
    report = ExperimentReport(
        experiment_id="table7",
        title="Effectiveness of Truth Inference (Error Rate / MNAD)",
    )
    headers = ["Method"]
    for name in names:
        loader = DATASET_LOADERS[name]
        probe = loader(seed=seed, **({"num_rows": num_rows} if num_rows else {}))
        if probe.schema.categorical_indices:
            headers.append(f"{name} ErrorRate")
        if probe.schema.continuous_indices:
            headers.append(f"{name} MNAD")
    report.headers = headers

    methods = _method_registry(model_kwargs)
    accumulator: Dict[str, Dict[str, List[float]]] = {
        method_name: {} for method_name, *_ in methods
    }
    for trial in range(trials):
        for name in names:
            loader = DATASET_LOADERS[name]
            kwargs = {"seed": seed + trial}
            if num_rows:
                kwargs["num_rows"] = num_rows
            dataset = loader(**kwargs)
            has_cat = bool(dataset.schema.categorical_indices)
            has_cont = bool(dataset.schema.continuous_indices)
            for method_name, factory, handles_cat, handles_cont in methods:
                if not ((handles_cat and has_cat) or (handles_cont and has_cont)):
                    continue
                metrics = evaluate_method(factory(), dataset)
                store = accumulator[method_name]
                if handles_cat and has_cat and metrics["error_rate"] is not None:
                    store.setdefault(f"{name} ErrorRate", []).append(metrics["error_rate"])
                if handles_cont and has_cont and metrics["mnad"] is not None:
                    store.setdefault(f"{name} MNAD", []).append(metrics["mnad"])

    for method_name, *_ in methods:
        row: List = [method_name]
        for header in headers[1:]:
            values = accumulator[method_name].get(header)
            row.append(float(np.mean(values)) if values else None)
        report.add_row(*row)

    report.add_note(
        f"trials={trials}, seed={seed}, num_rows={num_rows or 'paper sizes'}; "
        "datasets are simulated equivalents of the paper's AMT collections "
        "(see DESIGN.md §4)"
    )
    return report
