"""Truth inference on the simulated Celebrity dataset (paper Section 6.2).

Loads the simulated Celebrity dataset (174 entities x 7 attributes, 5 answers
per task), runs T-Crowd and the main baselines, and prints a Table 7-style
comparison of Error Rate and MNAD.

Run with::

    python examples/celebrity_truth_inference.py [--rows 60]
"""

import argparse

from repro import TCrowdModel
from repro.baselines import CATD, CRH, DawidSkene, GLAD, GTM, MajorityVoting, MedianAggregator, ZenCrowd
from repro.datasets import load_celebrity
from repro.experiments.reporting import format_table
from repro.metrics import error_rate, mnad


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=None,
                        help="reduce the table to this many rows for a faster run")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    kwargs = {"seed": args.seed}
    if args.rows:
        kwargs["num_rows"] = args.rows
    dataset = load_celebrity(**kwargs)
    print("Dataset:", dataset.summary())

    methods = [
        ("T-Crowd", TCrowdModel(seed=args.seed), True, True),
        ("CRH", CRH(), True, True),
        ("CATD", CATD(), True, True),
        ("Majority Voting", MajorityVoting(), True, False),
        ("D&S (EM)", DawidSkene(), True, False),
        ("GLAD", GLAD(), True, False),
        ("ZenCrowd", ZenCrowd(), True, False),
        ("Median", MedianAggregator(), False, True),
        ("GTM", GTM(), False, True),
    ]

    rows = []
    for name, method, handles_cat, handles_cont in methods:
        result = method.fit(dataset.schema, dataset.answers)
        rows.append([
            name,
            error_rate(result, dataset) if handles_cat else None,
            mnad(result, dataset) if handles_cont else None,
        ])
    print()
    print(format_table(["Method", "Error Rate", "MNAD"], rows))
    best_error = min(r[1] for r in rows if r[1] is not None)
    best_mnad = min(r[2] for r in rows if r[2] is not None)
    print(f"\nBest error rate: {best_error:.4f}; best MNAD: {best_mnad:.4f}")


if __name__ == "__main__":
    main()
