"""Per-cell truth posteriors ``T_ij`` (Section 4.3, E-step output).

Two posterior families are used by the paper:

* continuous cells carry a Gaussian posterior ``N(Tmu_ij, Tphi_ij)``;
* categorical cells carry a multinomial posterior ``P(T_ij = z)`` over the
  column's label set.

Both support the operations that truth inference and task assignment need:
entropy, point estimates, and the *incremental* Bayesian update used when
the information-gain calculator hypothesises one extra answer (Section 5.1,
"we accelerate by updating the parameters related to this answer").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.utils.exceptions import ConfigurationError
from repro.utils.numerics import normalize_log_probs, safe_log


@runtime_checkable
class Posterior(Protocol):
    """Structural interface shared by every truth-posterior family.

    Both families (and any future one, e.g. ordinal cells) expose a point
    estimate ``T^hat_ij`` and an entropy ``H(T_ij)``; truth inference and the
    information-gain calculators depend only on this protocol.
    """

    @property
    def is_categorical(self) -> bool:
        """True for discrete-label posteriors, False for continuous ones."""
        ...

    def point_estimate(self):
        """The estimated truth ``T^hat_ij``."""
        ...

    def entropy(self) -> float:
        """Uniform entropy ``H(T_ij)`` (Shannon or differential)."""
        ...


@dataclass(frozen=True)
class GaussianPosterior:
    """Gaussian truth posterior for a continuous cell."""

    mean: float
    variance: float

    def __post_init__(self) -> None:
        if not self.variance > 0:
            raise ConfigurationError(
                f"Gaussian posterior variance must be positive, got {self.variance}"
            )

    @property
    def is_categorical(self) -> bool:
        """False: this is the continuous-cell posterior."""
        return False

    def entropy(self) -> float:
        """Differential entropy ``0.5 * ln(2 pi e variance)``."""
        return 0.5 * float(np.log(2.0 * np.pi * np.e * self.variance))

    def point_estimate(self) -> float:
        """The estimated truth ``T^hat_ij = Tmu_ij``."""
        return self.mean

    def updated_with_answer(self, value: float, answer_variance: float) -> "GaussianPosterior":
        """Posterior after observing one answer with the given noise variance."""
        if not answer_variance > 0:
            raise ConfigurationError(
                f"answer_variance must be positive, got {answer_variance}"
            )
        precision = 1.0 / self.variance + 1.0 / answer_variance
        new_variance = 1.0 / precision
        new_mean = (self.mean / self.variance + value / answer_variance) * new_variance
        return GaussianPosterior(new_mean, new_variance)

    def updated_variance(self, answer_variance: float) -> float:
        """Posterior variance after one more answer (independent of its value)."""
        return 1.0 / (1.0 / self.variance + 1.0 / answer_variance)

    def predictive_variance(self, answer_variance: float) -> float:
        """Variance of the predictive distribution of a new answer."""
        return self.variance + answer_variance

    def scaled(self, scale: float, offset: float) -> "GaussianPosterior":
        """Affine transform ``x -> x * scale + offset`` of the posterior."""
        return GaussianPosterior(self.mean * scale + offset, self.variance * scale**2)


@dataclass(frozen=True)
class CategoricalPosterior:
    """Multinomial truth posterior for a categorical cell."""

    labels: tuple
    probs: np.ndarray

    def __post_init__(self) -> None:
        probs = np.asarray(self.probs, dtype=float)
        if probs.shape != (len(self.labels),):
            raise ConfigurationError(
                "probs must have one entry per label: "
                f"{probs.shape} vs {len(self.labels)} labels"
            )
        total = probs.sum()
        if not np.isfinite(total) or total <= 0:
            raise ConfigurationError("probs must sum to a positive finite value")
        object.__setattr__(self, "probs", probs / total)

    @property
    def is_categorical(self) -> bool:
        """True: this is the categorical-cell posterior."""
        return True

    @property
    def num_labels(self) -> int:
        """Size of the label set."""
        return len(self.labels)

    @classmethod
    def uniform(cls, labels) -> "CategoricalPosterior":
        """Uninformative posterior (the paper's uniform prior)."""
        labels = tuple(labels)
        return cls(labels, np.full(len(labels), 1.0 / len(labels)))

    @classmethod
    def from_normalized(cls, labels, probs) -> "CategoricalPosterior":
        """Rebuild a posterior from already-normalised probabilities.

        The constructor renormalises ``probs`` by their sum, which can
        perturb the last bits when the stored mass sums to 1 only within a
        few ulps.  Durable snapshot restores need the *exact* persisted
        vector back (gain rankings break near-ties on those bits), so this
        constructor validates and then reinstates the probabilities as-is.
        """
        posterior = cls(tuple(labels), probs)
        object.__setattr__(
            posterior, "probs", np.asarray(probs, dtype=float).copy()
        )
        return posterior

    def entropy(self) -> float:
        """Shannon entropy ``-sum_z P(z) ln P(z)``."""
        probs = self.probs
        return float(-np.sum(probs * safe_log(probs)))

    def point_estimate(self):
        """The estimated truth ``argmax_z P(T_ij = z)``."""
        return self.labels[int(np.argmax(self.probs))]

    def prob_of(self, label) -> float:
        """Posterior probability of ``label``."""
        return float(self.probs[self.labels.index(label)])

    def updated_with_answer(self, label_index: int, quality: float) -> "CategoricalPosterior":
        """Posterior after observing an answer equal to ``labels[label_index]``.

        ``quality`` is the per-worker-per-cell quality ``q^u_ij`` of the
        answering worker; the likelihood follows Eq. 3.
        """
        if not 0 <= label_index < self.num_labels:
            raise ConfigurationError(
                f"label_index {label_index} out of range for {self.num_labels} labels"
            )
        quality = float(np.clip(quality, 1e-9, 1.0 - 1e-9))
        wrong = (1.0 - quality) / max(self.num_labels - 1, 1)
        log_like = np.full(self.num_labels, np.log(wrong))
        log_like[label_index] = np.log(quality)
        log_post = safe_log(self.probs) + log_like
        return CategoricalPosterior(self.labels, normalize_log_probs(log_post))

    def predictive_answer_probs(self, quality: float) -> np.ndarray:
        """Distribution of the next answer by a worker with quality ``quality``.

        ``P(a = z') = sum_z P(T = z) P(a = z' | T = z)`` under Eq. 3.
        """
        quality = float(np.clip(quality, 1e-9, 1.0 - 1e-9))
        wrong = (1.0 - quality) / max(self.num_labels - 1, 1)
        # P(a = z') = q * P(T = z') + wrong * (1 - P(T = z'))
        return quality * self.probs + wrong * (1.0 - self.probs)
