"""Benchmarks: Figures 11 and 12 — efficiency of assignment and inference."""

from conftest import FAST_MODEL, run_once

from repro.experiments import (
    run_figure11_assignment_time,
    run_figure12_convergence,
    run_figure12_runtime,
)


def test_figure11_assignment_time(benchmark, report_writer):
    """Regenerate Figure 11: assignment cost vs answers collected per task."""
    report = run_once(
        benchmark, run_figure11_assignment_time, answers_per_task_levels=(2, 3, 4, 5),
        seed=7, num_rows=40, model_kwargs=FAST_MODEL,
    )
    report_writer(report)
    seconds = [row[2] for row in report.rows]
    assert all(value > 0 for value in seconds)


def test_figure12a_em_convergence(benchmark, report_writer):
    """Regenerate Figure 12(a): EM objective value per iteration."""
    report = run_once(
        benchmark, run_figure12_convergence, seed=7, num_rows=80, max_iterations=20,
    )
    report_writer(report)
    values = [value for _iteration, value in report.series["objective"]]
    assert len(values) >= 3
    assert values[-1] >= values[0]


def test_figure12b_inference_runtime(benchmark, report_writer):
    """Regenerate Figure 12(b): inference runtime vs number of answers."""
    report = run_once(
        benchmark, run_figure12_runtime, answer_counts=(1_000, 3_000, 10_000), seed=7,
        model_kwargs=FAST_MODEL,
    )
    report_writer(report)
    answers = [row[0] for row in report.rows]
    seconds = [row[2] for row in report.rows]
    assert answers == sorted(answers)
    # Runtime grows no worse than ~linearly with a generous constant: the
    # paper's complexity analysis is O(w v l |A|).
    ratio = (seconds[-1] / seconds[0]) / (answers[-1] / answers[0])
    assert ratio < 10.0
