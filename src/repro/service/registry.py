"""Multi-tenant session registry and the JSON codecs of the service API.

The registry owns every live :class:`ServedSession` of one server process.
Concurrency discipline:

* the **registry lock** guards only the id → session map (create / get /
  remove are O(1) critical sections);
* each session carries its **own** re-entrant lock, taken around every
  session operation (select, ingest, estimates, worker lookup).  The
  engine policies are single-session objects and not thread-safe against
  concurrent mutation, so the per-session lock serialises requests *within*
  a session while different sessions proceed fully in parallel — the same
  partitioning the sharded engine applies one level down.

Sessions are described by a JSON config (see :func:`build_policy`): a schema
(inline, or named dataset), the assigner knobs, and the serving mode —
plain incremental, sharded, async-refit, or the composed sharded+async
policy.  Durable sessions pin their config to ``session.json`` inside the
durable directory; :meth:`SessionRegistry.create` with such a directory
*recovers* the session (write-ahead-log replay, see
:mod:`repro.service.wal`) instead of creating a fresh one.
"""

from __future__ import annotations

import json
import pathlib
import sys
import threading
import uuid
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.assignment import TCrowdAssigner
from repro.core.inference import TCrowdModel
from repro.core.schema import Column, TableSchema
from repro.service.wal import DurableSession
from repro.utils.exceptions import ConfigurationError, ReproError
from repro.utils.validation import require_positive

#: Loaders a ``{"dataset": {"name": ...}}`` spec may reference.
_DATASET_LOADERS = {
    "celebrity": "load_celebrity",
    "emotion": "load_emotion",
    "restaurant": "load_restaurant",
    "synthetic": "generate_synthetic",
}


# -- schema codec -------------------------------------------------------------


def schema_to_dict(schema: TableSchema) -> dict:
    """JSON-safe description of a :class:`TableSchema`."""
    columns = []
    for column in schema.columns:
        if column.is_categorical:
            columns.append(
                {
                    "name": column.name,
                    "type": "categorical",
                    "labels": list(column.labels),
                }
            )
        else:
            columns.append(
                {
                    "name": column.name,
                    "type": "continuous",
                    "domain": list(column.domain) if column.domain else None,
                }
            )
    return {
        "entity_attribute": schema.entity_attribute,
        "num_rows": schema.num_rows,
        "columns": columns,
    }


def schema_from_dict(payload: dict) -> TableSchema:
    """Rebuild the :class:`TableSchema` described by :func:`schema_to_dict`."""
    try:
        columns = []
        for spec in payload["columns"]:
            kind = spec.get("type")
            if kind == "categorical":
                columns.append(
                    Column.categorical(spec["name"], tuple(spec["labels"]))
                )
            elif kind == "continuous":
                domain = spec.get("domain") or ()
                columns.append(Column.continuous(spec["name"], tuple(domain)))
            else:
                raise ConfigurationError(
                    f"Unknown column type {kind!r} (expected 'categorical' "
                    "or 'continuous')"
                )
        return TableSchema.build(
            payload["entity_attribute"], columns, int(payload["num_rows"])
        )
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"Malformed schema payload: {exc}") from exc


def resolve_schema(config: dict) -> TableSchema:
    """Schema of a session config: inline ``schema`` or a named ``dataset``."""
    if "schema" in config:
        return schema_from_dict(config["schema"])
    if "dataset" in config:
        spec = dict(config["dataset"])
        name = spec.pop("name", None)
        loader_name = _DATASET_LOADERS.get(name)
        if loader_name is None:
            raise ConfigurationError(
                f"Unknown dataset {name!r}; expected one of "
                f"{sorted(_DATASET_LOADERS)}"
            )
        import repro.datasets as datasets

        try:
            return getattr(datasets, loader_name)(**spec).schema
        except TypeError as exc:
            raise ConfigurationError(
                f"Invalid options for dataset {name!r}: {exc}"
            ) from exc
    raise ConfigurationError(
        "A session config needs either 'schema' (inline columns) or "
        "'dataset' (a named loader)"
    )


# -- policy construction ------------------------------------------------------


def build_policy(schema: TableSchema, config: dict):
    """Build the serving policy a session config describes.

    ``config["policy"]`` configures the underlying
    :class:`~repro.core.assignment.TCrowdAssigner` (and its
    :class:`~repro.core.inference.TCrowdModel` via the ``model`` key);
    ``config["serving"]`` picks the serving mode:

    ========================  =============================================
    ``shards`` / ``async_refit``  policy served
    ========================  =============================================
    unset / false             the plain incremental assigner
    ``shards`` > 1 only       :class:`~repro.engine.ShardedAssignmentPolicy`
    ``async_refit`` only      :class:`~repro.engine.AsyncRefitPolicy`
    both                      :class:`~repro.engine.ShardedAsyncPolicy`
    ========================  =============================================
    """
    policy_config = dict(config.get("policy") or {})
    model_config = dict(policy_config.pop("model", None) or {})
    try:
        model = TCrowdModel(**model_config)
    except TypeError as exc:
        raise ConfigurationError(f"Invalid model options: {exc}") from exc
    try:
        assigner = TCrowdAssigner(schema, model=model, **policy_config)
    except TypeError as exc:
        raise ConfigurationError(f"Invalid policy options: {exc}") from exc

    serving = dict(config.get("serving") or {})
    shards = serving.get("shards")
    shard_workers = serving.get("shard_workers")
    async_refit = bool(serving.get("async_refit", False))
    max_stale = serving.get("max_stale_answers", 0)
    if shards is not None and int(shards) > 1 and async_refit:
        from repro.engine import ShardedAsyncPolicy

        return ShardedAsyncPolicy(
            assigner,
            num_shards=int(shards),
            max_workers=shard_workers,
            max_stale_answers=max_stale,
        )
    if shards is not None and int(shards) > 1:
        from repro.engine import ShardedAssignmentPolicy

        return ShardedAssignmentPolicy(
            assigner, num_shards=int(shards), max_workers=shard_workers
        )
    if async_refit:
        from repro.engine import AsyncRefitPolicy

        return AsyncRefitPolicy(assigner, max_stale_answers=max_stale)
    return assigner


# -- served session -----------------------------------------------------------


class ServedSession:
    """One live session: policy + answers + WAL behind a per-session lock."""

    def __init__(
        self,
        session_id: str,
        schema: TableSchema,
        config: dict,
        durable: DurableSession,
    ) -> None:
        self.session_id = session_id
        self.schema = schema
        self.config = config
        self.durable = durable
        self.lock = threading.RLock()
        self.selects_served = 0
        self.answers_ingested = 0
        self.estimate_requests = 0

    # -- operations (each one critical-sectioned on the session lock) --------

    def select(self, worker: str, k: int = 1):
        """Assign the next ``k`` cells to ``worker``."""
        with self.lock:
            assignment = self.durable.select(worker, k=k)
            self.selects_served += 1
            return assignment

    def ingest(self, worker: str, items: Sequence[Tuple[int, int, object]]) -> int:
        """Record a batch of collected answers; return the new total."""
        with self.lock:
            total = self.durable.append_answers(worker, items)
            self.answers_ingested += len(items)
            return total

    def estimates(self) -> Dict[str, object]:
        """Current truth estimates for every cell (triggers a catch-up fit)."""
        with self.lock:
            result = self.durable.estimates()
            self.estimate_requests += 1
            estimates = {
                f"{row},{col}": result.estimate(row, col)
                for row in range(self.schema.num_rows)
                for col in range(self.schema.num_columns)
            }
            return {
                "session_id": self.session_id,
                "answers_collected": len(self.durable.answers),
                "mean_answers_per_cell": self.durable.answers.mean_answers_per_cell(),
                "estimates": estimates,
            }

    def worker_info(self, worker: str) -> Dict[str, object]:
        """Answer count and estimated quality of one known worker.

        Raises :class:`KeyError` for a worker that never contributed an
        answer to this session (the API's 404).
        """
        with self.lock:
            answers = self.durable.answers
            if worker not in answers.workers:
                raise KeyError(worker)
            result = getattr(self.durable.policy, "last_result", None)
            quality = None
            variance = None
            if result is not None and result.has_worker(worker):
                quality = float(result.worker_quality(worker))
                variance = float(result.worker_variance(worker))
            return {
                "session_id": self.session_id,
                "worker": worker,
                "answers": len(answers.answers_by_worker(worker)),
                "quality": quality,
                "variance": variance,
            }

    def stats(self) -> Dict[str, object]:
        """Status summary (the session resource representation)."""
        with self.lock:
            answers = self.durable.answers
            return {
                "session_id": self.session_id,
                "policy": self.durable.policy.name,
                "num_rows": self.schema.num_rows,
                "num_columns": self.schema.num_columns,
                "answers_collected": len(answers),
                "workers": answers.num_workers,
                "mean_answers_per_cell": answers.mean_answers_per_cell(),
                "selects_served": self.selects_served,
                "answers_ingested": self.answers_ingested,
                "estimate_requests": self.estimate_requests,
                "durable": self.durable.durable,
                "wal_records": self.durable.wal_records,
                "snapshots_written": self.durable.snapshots_written,
                "recovered_epoch": self.durable.recovered_epoch,
            }

    def close(self) -> None:
        """Snapshot, close the log, release the policy's threads."""
        with self.lock:
            self.durable.close()


# -- registry -----------------------------------------------------------------


class SessionRegistry:
    """The id → :class:`ServedSession` map of one server process.

    Parameters
    ----------
    durable_root:
        Optional directory under which sessions created with
        ``{"durable": true}`` get their per-session subdirectory.  Explicit
        ``{"durable_dir": ...}`` configs work without it.
    """

    def __init__(self, durable_root=None) -> None:
        self.durable_root = (
            None if durable_root is None else pathlib.Path(durable_root)
        )
        self._sessions: Dict[str, ServedSession] = {}
        self._lock = threading.Lock()

    # -- lookup --------------------------------------------------------------

    def ids(self) -> List[str]:
        """Ids of every live session."""
        with self._lock:
            return sorted(self._sessions)

    def get(self, session_id: str) -> ServedSession:
        """The live session with this id (raises :class:`KeyError`)."""
        with self._lock:
            return self._sessions[session_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- creation / recovery -------------------------------------------------

    def create(self, config: dict) -> ServedSession:
        """Create (or recover) a session from its JSON config."""
        if not isinstance(config, dict):
            raise ConfigurationError("The session config must be a JSON object")
        config = dict(config)
        durable_dir = self._resolve_durable_dir(config)
        if durable_dir is not None and (durable_dir / "session.json").exists():
            return self._register(self._recover(durable_dir))
        session_id = config.pop("session_id", None) or uuid.uuid4().hex[:12]
        if durable_dir is None and config.pop("durable", False):
            raise ConfigurationError(
                "durable=true needs the server's --durable-root (or an "
                "explicit durable_dir in the session config)"
            )
        session = self._build(session_id, config, durable_dir)
        if durable_dir is not None:
            manifest = {
                "format": 1,
                "session_id": session_id,
                "schema": schema_to_dict(session.schema),
                "config": {
                    key: value
                    for key, value in config.items()
                    if key in ("policy", "serving", "snapshot_every", "fsync")
                },
            }
            (durable_dir / "session.json").write_text(
                json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
            )
        return self._register(session)

    def recover_all(self) -> List[str]:
        """Recover every durable session found under ``durable_root``.

        One corrupt directory must not take the healthy sessions (or the
        whole server boot) down with it: per-directory failures are
        reported to stderr and skipped.
        """
        if self.durable_root is None or not self.durable_root.exists():
            return []
        recovered = []
        for path in sorted(self.durable_root.iterdir()):
            if not (path / "session.json").exists():
                continue
            try:
                recovered.append(self._register(self._recover(path)).session_id)
            except ReproError as exc:
                print(
                    f"warning: skipping unrecoverable session directory "
                    f"{path}: {exc}",
                    file=sys.stderr,
                )
        return recovered

    def _resolve_durable_dir(self, config: dict) -> Optional[pathlib.Path]:
        explicit = config.get("durable_dir")
        if explicit:
            return pathlib.Path(explicit)
        if config.get("durable"):
            if self.durable_root is None:
                return None  # create() raises the descriptive error
            session_id = config.get("session_id") or uuid.uuid4().hex[:12]
            config["session_id"] = session_id
            return self.durable_root / session_id
        return None

    def _recover(self, durable_dir: pathlib.Path) -> ServedSession:
        try:
            manifest = json.loads(
                (durable_dir / "session.json").read_text(encoding="utf-8")
            )
            session_id = manifest["session_id"]
            config = dict(manifest.get("config") or {})
            config["schema"] = manifest["schema"]
        except (OSError, ValueError, KeyError) as exc:
            raise ConfigurationError(
                f"Cannot recover session manifest in {durable_dir}: {exc}"
            ) from exc
        with self._lock:
            if session_id in self._sessions:
                return self._sessions[session_id]
        return self._build(session_id, config, durable_dir)

    def _build(
        self,
        session_id: str,
        config: dict,
        durable_dir: Optional[pathlib.Path],
    ) -> ServedSession:
        schema = resolve_schema(config)
        policy = build_policy(schema, config)
        snapshot_every = int(config.get("snapshot_every", 200))
        require_positive(snapshot_every, "snapshot_every")
        durable = DurableSession(
            schema,
            policy,
            directory=durable_dir,
            snapshot_every=snapshot_every,
            fsync=bool(config.get("fsync", False)),
        )
        return ServedSession(session_id, schema, config, durable)

    def _register(self, session: ServedSession) -> ServedSession:
        with self._lock:
            existing = self._sessions.get(session.session_id)
            if existing is not None and existing is not session:
                session.close()
                raise ConfigurationError(
                    f"Session id {session.session_id!r} is already live"
                )
            self._sessions[session.session_id] = session
        return session

    # -- teardown ------------------------------------------------------------

    def remove(self, session_id: str) -> None:
        """Close one session and drop it (raises :class:`KeyError`)."""
        with self._lock:
            session = self._sessions.pop(session_id)
        session.close()

    def close_all(self) -> None:
        """Close every session (server shutdown)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()
