"""AskIt!-style assignment (Boim et al., ICDE 2012).

AskIt! assigns the task with the highest current *uncertainty*, computed
directly from the collected answers (truth inference is plain majority
voting / averaging), and disregards the quality of the incoming worker.

The uncertainty measure is entropy-like and not comparable across datatypes:
categorical cells use the Shannon entropy of the smoothed empirical vote
distribution, continuous cells use the differential entropy of the empirical
answer distribution.  Continuous cells on wide domains therefore dominate
the ranking at first — the bias the paper observes in Figure 2 ("its MNAD
drops fast while the error rate remains high").
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.assignment import AssignmentPolicy, BatchAssignment
from repro.core.entropy import differential_entropy, shannon_entropy
from repro.core.schema import TableSchema
from repro.utils.exceptions import AssignmentError


class AskItAssigner(AssignmentPolicy):
    """Greedy highest-uncertainty assignment from raw answer statistics."""

    def __init__(self, schema: TableSchema, smoothing: float = 0.5,
                 max_answers_per_cell: Optional[int] = None) -> None:
        super().__init__(schema, max_answers_per_cell=max_answers_per_cell)
        self.smoothing = float(smoothing)

    @property
    def name(self) -> str:
        return "AskIt!"

    # -- uncertainty -------------------------------------------------------------

    def uncertainty(self, answers: AnswerSet, row: int, col: int) -> float:
        """Entropy-like uncertainty of a cell from its raw answers."""
        column = self.schema.columns[col]
        cell_answers = answers.answers_for_cell(row, col)
        if column.is_categorical:
            counts = Counter(answer.value for answer in cell_answers)
            votes = np.array(
                [counts.get(label, 0) + self.smoothing for label in column.labels],
                dtype=float,
            )
            return shannon_entropy(votes)
        values = [float(answer.value) for answer in cell_answers]
        if len(values) < 2:
            # Prior uncertainty: uniform over the column's domain.
            if column.domain:
                low, high = column.domain
                width = max(high - low, 1e-6)
            else:
                width = 1.0
            return float(np.log(width))
        variance = max(float(np.var(values)) / len(values), 1e-9)
        return differential_entropy(variance)

    # -- policy -------------------------------------------------------------------

    def select(self, worker: str, answers: AnswerSet, k: int = 1) -> BatchAssignment:
        candidates = self.candidate_cells(worker, answers)
        if not candidates:
            raise AssignmentError(f"No candidate cells left for worker {worker!r}")
        scored = [
            (self.uncertainty(answers, row, col), (row, col))
            for row, col in candidates
        ]
        scored.sort(key=lambda item: item[0], reverse=True)
        top = scored[:k]
        cells = tuple(cell for _score, cell in top)
        gains = tuple(score for score, _cell in top)
        return BatchAssignment(worker, cells, gains)
