"""Pluggable assignment strategies (the strategy zoo).

See ``src/repro/strategies/README.md`` for the strategy table, the
composition semantics of ``epsilon_greedy`` and the scenario knobs the
strategy benchmark pairs them with.  The public surface:

* :class:`AssignmentStrategy` / :class:`StrategyCalculator` — the plug-in
  protocol (scoring only; selection, sharding, provenance and durability
  are shared machinery);
* :func:`build_strategy` — :class:`~repro.config.StrategySpec` to live
  strategy (``None`` for ``"paper"``, keeping the default byte-for-byte);
* the built-ins: :class:`RandomStrategy`, :class:`RoundRobinStrategy`,
  :class:`UncertaintyStrategy`, :class:`BudgetVoIStrategy`,
  :class:`EpsilonGreedyStrategy`.
"""

from repro.strategies.base import (
    RETIRED_GAIN,
    AssignmentStrategy,
    StrategyCalculator,
    hash_unit,
)
from repro.strategies.registry import build_strategy
from repro.strategies.zoo import (
    BudgetVoIStrategy,
    EpsilonGreedyStrategy,
    RandomStrategy,
    RoundRobinStrategy,
    UncertaintyStrategy,
    posterior_confidence,
)

__all__ = [
    "RETIRED_GAIN",
    "AssignmentStrategy",
    "BudgetVoIStrategy",
    "EpsilonGreedyStrategy",
    "RandomStrategy",
    "RoundRobinStrategy",
    "StrategyCalculator",
    "UncertaintyStrategy",
    "build_strategy",
    "hash_unit",
    "posterior_confidence",
]
