"""CI smoke test of the crowd-serving HTTP service.

Starts ``python -m repro.service --port 0`` as a real subprocess, drives a
scripted session over HTTP (create session from a **v1 SessionSpec body**
→ seed answers → select/ingest loop → estimates → ``GET .../config``),
scrapes ``/metrics``, pins the legacy-config **upgrade shim** with one
PR-4-dialect request, and shuts the server down cleanly (SIGINT, asserting
the clean-shutdown message).  Exercises the same code path an operator
would run, end to end, in a few seconds.

With ``--processes N`` the smoke instead pins the **process-level serving
path**: it creates one session with ``serving.processes = N`` (the server
spawns real shard-worker subprocesses behind
:class:`repro.engine.ProcessShardCoordinator`) and one in-process oracle
session, drives both with the identical scripted RNG, and asserts the two
sessions return bit-identical assignment sequences — cells *and* gains —
over live HTTP.  Set ``REPRO_WORKER_LOG_DIR`` to collect the workers'
stdout/stderr logs (CI uploads them as an artifact on failure).

With ``--rotate`` the smoke pins **bounded durability** end to end, once
per storage backend (JSONL segments and sqlite): it starts the server with
a ``--durable-root``, creates a durable session with a deliberately tiny
``rotate_every_records`` / ``keep_snapshots`` so the WAL rotates and the
GC prunes many times during the drive, restarts the server (SIGINT + a
fresh process over the same root), and asserts the recovered session
serves **bit-identical** estimates, that the on-disk file count stayed
bounded (``keep_snapshots`` + 2 WAL segments + the session manifest), and
that the session keeps serving selects after recovery.

With ``--audit`` the smoke pins the **decision provenance layer** end to
end: it starts the server with ``--log-json`` over a ``--durable-root``,
drives a scripted audited session, fetches every decision record over
``GET .../decisions`` (paginated *and* one by one), **recomputes the
reproducibility chain client-side** — plain ``hashlib`` over the
sorted-keys compact JSON of each record's core fields, no repro imports —
asserts it against the served ``record_hash``/``decision_chain_hash``,
then restarts the server (SIGINT + fresh process) and asserts the
recovered session serves the identical ledger record for record.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py
    PYTHONPATH=src python scripts/service_smoke.py --processes 2
    PYTHONPATH=src python scripts/service_smoke.py --rotate
    PYTHONPATH=src python scripts/service_smoke.py --audit
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.config import SessionSpec  # noqa: E402
from repro.datasets import load_celebrity  # noqa: E402
from repro.service.bench import ServiceClient  # noqa: E402
from repro.service.registry import schema_to_dict  # noqa: E402


def start_server(*extra_args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={
            **os.environ,
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PYTHONUNBUFFERED": "1",
        },
    )


#: Server log output (stderr, merged into our pipe) interleaves with the
#: stdout banner: plain-format lines carry the level token, ``--log-json``
#: lines are one JSON object each.  Banner readers skip both.
_LOG_MARKERS = (" DEBUG ", " INFO ", " WARNING ", " ERROR ", " CRITICAL ")


def _is_log_line(line: str) -> bool:
    return line.startswith("{") or any(marker in line for marker in _LOG_MARKERS)


def server_address(process: subprocess.Popen) -> str:
    while True:
        raw = process.stdout.readline()
        if not raw:
            raise RuntimeError("server exited before printing its banner")
        line = raw.strip()
        if not line or _is_log_line(line):
            continue
        if not line.startswith("listening on "):
            raise RuntimeError(f"unexpected server banner: {line!r}")
        return line.removeprefix("listening on ")


def server_address_after_recovery(
    process: subprocess.Popen,
) -> tuple:
    """Like :func:`server_address`, tolerating ``recovered session`` lines.

    A server restarted over a populated ``--durable-root`` prints one
    ``recovered session <id>`` line per session *before* the listening
    banner.  Returns ``(address, [recovered session ids])``.
    """
    recovered = []
    while True:
        raw = process.stdout.readline()
        if not raw:
            raise RuntimeError("server exited before printing its banner")
        line = raw.strip()
        if not line or _is_log_line(line):
            continue
        if line.startswith("recovered session "):
            recovered.append(line.removeprefix("recovered session "))
            continue
        if line.startswith("listening on "):
            return line.removeprefix("listening on "), recovered
        raise RuntimeError(f"unexpected server banner: {line!r}")


def stop_server(process: subprocess.Popen) -> None:
    process.send_signal(signal.SIGINT)
    remaining, _ = process.communicate(timeout=30)
    if "shut down cleanly" not in remaining:
        raise RuntimeError(f"no clean shutdown message in: {remaining!r}")


def drive_scripted_session(
    client, session_id: str, dataset, extra: int
) -> list:
    """Seed answers + select/ingest loop with a fixed RNG script.

    Returns the assignment trace ``[(worker, cells, gains), ...]``.  Two
    sessions driven by this function see the identical worker arrivals and
    oracle answers, so their traces are comparable bit for bit.
    """
    schema = dataset.schema
    pool = dataset.worker_pool
    worker_ids, activities = pool.worker_ids(), pool.activities()
    rng = np.random.default_rng(7)
    for row in range(schema.num_rows):
        worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
        client.post_answers(
            session_id,
            worker,
            [
                (row, col, dataset.oracle.answer(worker, row, col, rng))
                for col in range(schema.num_columns)
            ],
        )
    trace = []
    collected = failures = 0
    while collected < extra and failures < 50:
        worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
        status, body = client.get_tasks(
            session_id, worker, k=min(schema.num_columns, extra - collected)
        )
        if status == 409:
            failures += 1
            continue
        assert status == 200, (status, body)
        failures = 0
        trace.append((worker, body["cells"], body["gains"]))
        client.post_answers(
            session_id,
            worker,
            [
                (row, col, dataset.oracle.answer(worker, row, col, rng))
                for row, col in body["cells"]
            ],
        )
        collected += len(body["cells"])
    return trace


def multiprocess_main(processes: int) -> int:
    process = start_server()
    try:
        address = server_address(process)
        print(f"server up at {address}")
        client = ServiceClient(address, timeout=60.0)

        dataset = load_celebrity(seed=7, num_rows=8)
        schema = dataset.schema
        base = (
            SessionSpec.builder()
            .model(max_iterations=4, m_step_iterations=8)
            .policy(refit_every=1)
        )
        mp_spec = base.serving(processes=processes).build()
        oracle_spec = base.serving(processes=0).build()

        mp_session = client.create_session(
            {"schema": schema_to_dict(schema), **mp_spec.to_dict()}
        )
        assert "processes" in mp_session["policy"], mp_session
        print(
            f"multiprocess session {mp_session['session_id']} created "
            f"({mp_session['policy']})"
        )
        oracle_session = client.create_session(
            {"schema": schema_to_dict(schema), **oracle_spec.to_dict()}
        )
        print(f"oracle session {oracle_session['session_id']} created")

        extra = int(round(0.4 * schema.num_cells))
        mp_trace = drive_scripted_session(
            client, mp_session["session_id"], dataset, extra
        )
        oracle_trace = drive_scripted_session(
            client, oracle_session["session_id"], dataset, extra
        )
        assert mp_trace, "multiprocess session served no assignments"
        if mp_trace != oracle_trace:
            for step, (got, want) in enumerate(zip(mp_trace, oracle_trace)):
                if got != want:
                    raise AssertionError(
                        f"assignment sequences diverged at step {step}: "
                        f"processes={processes} returned {got}, in-process "
                        f"oracle returned {want}"
                    )
            raise AssertionError(
                f"trace lengths differ: {len(mp_trace)} vs "
                f"{len(oracle_trace)}"
            )
        print(
            f"equivalence OK: {len(mp_trace)} assignments bit-identical "
            f"(cells + gains) across processes={processes} and in-process"
        )

        mp_estimates = client.get_estimates(mp_session["session_id"])
        oracle_estimates = client.get_estimates(oracle_session["session_id"])
        assert mp_estimates["estimates"] == oracle_estimates["estimates"], (
            "final estimates diverged between the multiprocess and "
            "in-process sessions"
        )
        print("final estimates identical")

        # Deleting the session must shut its shard workers down; the server
        # then exits cleanly with no orphaned children.
        client.delete_session(mp_session["session_id"])
        client.delete_session(oracle_session["session_id"])
        process.send_signal(signal.SIGINT)
        remaining, _ = process.communicate(timeout=30)
        if "shut down cleanly" not in remaining:
            raise RuntimeError(f"no clean shutdown message in: {remaining!r}")
        print("clean shutdown OK")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


def rotate_backend_pass(backend: str, root: pathlib.Path) -> None:
    """Pin bounded durability for one storage backend, over a real restart."""
    # Snapshots must be cut a few times per segment for the GC cover (the
    # oldest retained snapshot) to stay within one segment of the tail —
    # that is what keeps the sealed-segment count at <= 1 + the active one.
    rotate_every, keep_snapshots, snapshot_every = 12, 2, 10
    max_segments = 2 if backend == "jsonl" else 1
    # Snapshots + live WAL segments + the session.json manifest.
    file_bound = keep_snapshots + 2 + 1

    process = start_server("--durable-root", str(root))
    try:
        address = server_address(process)
        print(f"[{backend}] server up at {address}")
        client = ServiceClient(address, timeout=60.0)

        dataset = load_celebrity(seed=7, num_rows=24)
        schema = dataset.schema
        spec = (
            SessionSpec.builder()
            .model(max_iterations=4, m_step_iterations=8)
            .policy(refit_every=1)
            .durable(
                None,
                snapshot_every_answers=snapshot_every,
                wal_fsync=False,
                backend=backend,
                rotate_every_records=rotate_every,
                keep_snapshots=keep_snapshots,
            )
            .build()
        )
        session = client.create_session(
            {"schema": schema_to_dict(schema), "durable": True, **spec.to_dict()}
        )
        session_id = session["session_id"]
        assert session["durability_backend"] == backend, session
        print(f"[{backend}] durable session {session_id} created")

        trace = drive_scripted_session(
            client, session_id, dataset, extra=int(round(0.4 * schema.num_cells))
        )
        assert trace, "durable session served no assignments"
        answers_posted = schema.num_rows * schema.num_columns + sum(
            len(cells) for _, cells, _ in trace
        )
        assert answers_posted >= 10 * rotate_every, answers_posted

        before = client.get_estimates(session_id)
        status, stats = client.request("GET", f"/sessions/{session_id}")
        assert status == 200, (status, stats)
        assert stats["wal_records"] >= 3 * rotate_every, stats
        assert stats["wal_segments"] <= max_segments, stats
        assert stats["snapshots_retained"] <= keep_snapshots, stats
        files = [p for p in (root / session_id).rglob("*") if p.is_file()]
        assert len(files) <= file_bound, sorted(p.name for p in files)
        print(
            f"[{backend}] disk bounded after {answers_posted} answers / "
            f"{stats['wal_records']} WAL records: {len(files)} files <= "
            f"{file_bound}, {stats['wal_segments']} segment(s), "
            f"{stats['snapshots_retained']} snapshot(s)"
        )

        stop_server(process)
        print(f"[{backend}] clean shutdown OK")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)

    # A fresh server process over the same root must recover the session
    # from the rotated, GC'd log and keep serving.
    process = start_server("--durable-root", str(root))
    try:
        address, recovered = server_address_after_recovery(process)
        assert session_id in recovered, (session_id, recovered)
        print(f"[{backend}] restarted server recovered {session_id}")
        client = ServiceClient(address, timeout=60.0)

        after = client.get_estimates(session_id)
        assert after["estimates"] == before["estimates"], (
            "estimates diverged across the restart"
        )
        print(
            f"[{backend}] recovery bit-identical: "
            f"{len(after['estimates'])} estimates match pre-restart"
        )

        pool = dataset.worker_pool
        worker_ids, activities = pool.worker_ids(), pool.activities()
        rng = np.random.default_rng(11)
        served = False
        for _ in range(50):
            worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
            status, body = client.get_tasks(session_id, worker, k=3)
            if status == 409:
                continue
            assert status == 200, (status, body)
            client.post_answers(
                session_id,
                worker,
                [
                    (row, col, dataset.oracle.answer(worker, row, col, rng))
                    for row, col in body["cells"]
                ],
            )
            served = True
            break
        assert served, "recovered session served no assignment"
        status, stats = client.request("GET", f"/sessions/{session_id}")
        assert status == 200 and stats["wal_segments"] <= max_segments, stats
        print(f"[{backend}] recovered session still serving")

        stop_server(process)
        print(f"[{backend}] clean shutdown OK")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


# The hash-covered core of a decision record, restated here on purpose:
# the audit smoke recomputes the chain as an *external* client would — raw
# hashlib + json over the served payloads, no repro.engine imports.
AUDIT_CORE_FIELDS = (
    "decision_id", "worker", "k", "cells", "gains", "epoch",
    "answers_seen", "answers_total", "staleness", "candidates",
    "model_hash", "prev_hash",
)
AUDIT_GENESIS = "0" * 64


def recompute_chain_client_side(records: list) -> str:
    """Re-derive every ``record_hash`` and the chain head from raw JSON."""
    prev = AUDIT_GENESIS
    for n, record in enumerate(records):
        assert record["decision_id"] == n, (n, record)
        assert record["prev_hash"] == prev, (n, record["prev_hash"], prev)
        core = {name: record[name] for name in AUDIT_CORE_FIELDS}
        digest = hashlib.sha256(
            json.dumps(core, sort_keys=True, separators=(",", ":")).encode("utf-8")
        ).hexdigest()
        assert digest == record["record_hash"], (
            f"client-side recompute of decision {n} disagrees with the "
            f"served record_hash: {digest} != {record['record_hash']}"
        )
        prev = digest
    return prev


def fetch_full_ledger(client, session_id: str) -> list:
    """Every decision record, via the paginated listing *and* one by one."""
    records, since = [], 0
    while True:
        page = client._expect(
            "GET", f"/sessions/{session_id}/decisions?since={since}&limit=2"
        )
        records.extend(page["decisions"])
        if page["next_since"] is None:
            assert len(records) == page["total"], (len(records), page["total"])
            break
        since = page["next_since"]
    for record in records:
        single = client._expect(
            "GET", f"/sessions/{session_id}/decisions/{record['decision_id']}"
        )
        assert single.pop("session_id") == session_id, single
        assert single == record, (
            f"decision {record['decision_id']} differs between the listing "
            "and the single-record endpoint"
        )
    return records


def audit_main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-audit-smoke-") as tmp:
        root = pathlib.Path(tmp)
        process = start_server(
            "--durable-root", str(root), "--log-json", "--log-level", "INFO"
        )
        try:
            address, _ = server_address_after_recovery(process)
            print(f"server up at {address}")
            client = ServiceClient(address, timeout=60.0)

            dataset = load_celebrity(seed=7, num_rows=8)
            schema = dataset.schema
            spec = (
                SessionSpec.builder()
                .model(max_iterations=4, m_step_iterations=8)
                .policy(refit_every=1)
                .sharded(2)
                .durable(None, snapshot_every_answers=20, wal_fsync=False)
                .build()
            )
            session = client.create_session(
                {"schema": schema_to_dict(schema), "durable": True,
                 **spec.to_dict()}
            )
            session_id = session["session_id"]
            print(f"audited durable session {session_id} created")

            trace = drive_scripted_session(
                client, session_id, dataset,
                extra=int(round(0.4 * schema.num_cells)),
            )
            assert trace, "audited session served no assignments"

            records = fetch_full_ledger(client, session_id)
            assert len(records) == len(trace), (len(records), len(trace))
            head = recompute_chain_client_side(records)
            status, stats = client.request("GET", f"/sessions/{session_id}")
            assert status == 200, (status, stats)
            assert stats["decisions_recorded"] == len(records), stats
            assert stats["decision_chain_hash"] == head, (
                "client-side chain head disagrees with the served stats"
            )
            for record in records:
                assert record["shards"], record  # sharded mode: lineage present
            print(
                f"client-side chain recompute OK: {len(records)} records, "
                f"head {head[:12]}…"
            )

            metrics = client.get_metrics()
            assert f"repro_decisions_total {len(records)}" in metrics, (
                "repro_decisions_total missing from /metrics"
            )
            assert f'chain_head="{head}"' in metrics, (
                "repro_decision_chain_hash missing from /metrics"
            )
            print("audit metrics scrape OK")

            stop_server(process)
            print("clean shutdown OK")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

        # A fresh server over the same root must recover the session and
        # serve the identical ledger — the WAL replay re-derived every
        # record and verified it against the logged hash on the way up.
        process = start_server(
            "--durable-root", str(root), "--log-json", "--log-level", "INFO"
        )
        try:
            address, recovered = server_address_after_recovery(process)
            assert session_id in recovered, (session_id, recovered)
            client = ServiceClient(address, timeout=60.0)

            after = fetch_full_ledger(client, session_id)
            assert after == records, (
                "decision ledger differs across the restart"
            )
            status, stats = client.request("GET", f"/sessions/{session_id}")
            assert status == 200, (status, stats)
            assert stats["decision_chain_hash"] == head, stats
            # A clean shutdown cut a final snapshot, so recovery restores
            # the ledger from the snapshot's embedded audit state; records
            # past the newest snapshot (a crash) would be replay-verified.
            assert stats["audit_replay_mismatches"] == 0, stats
            print(
                f"recovery ledger identical: {len(after)} records, "
                f"{stats['audit_replay_verified']} replay-verified, "
                "0 mismatches"
            )

            # The recovered session keeps appending to the same chain.
            pool = dataset.worker_pool
            worker_ids, activities = pool.worker_ids(), pool.activities()
            rng = np.random.default_rng(11)
            for _ in range(50):
                worker = worker_ids[
                    int(rng.choice(len(worker_ids), p=activities))
                ]
                status, body = client.get_tasks(session_id, worker, k=2)
                if status == 409:
                    continue
                assert status == 200, (status, body)
                break
            else:
                raise AssertionError("recovered session served no assignment")
            grown = fetch_full_ledger(client, session_id)
            assert len(grown) == len(records) + 1, (len(grown), len(records))
            assert grown[: len(records)] == records
            recompute_chain_client_side(grown)
            print("post-recovery decision extends the same chain")

            stop_server(process)
            print("clean shutdown OK")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
    print("decision-audit smoke OK")
    return 0


def rotate_main() -> int:
    for backend in ("jsonl", "sqlite"):
        with tempfile.TemporaryDirectory(
            prefix=f"repro-rotate-{backend}-"
        ) as tmp:
            rotate_backend_pass(backend, pathlib.Path(tmp))
    print("rotation + GC smoke OK (jsonl + sqlite)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--processes",
        type=int,
        default=0,
        help="run the multi-process equivalence smoke instead: a "
        "serving.processes=N session vs an in-process oracle session, "
        "identical scripted RNG, assignment sequences asserted "
        "bit-identical (default 0 = the standard smoke)",
    )
    parser.add_argument(
        "--rotate",
        action="store_true",
        help="run the bounded-durability smoke instead: durable sessions "
        "with tiny rotate_every_records/keep_snapshots on both storage "
        "backends, a server restart, bit-identical recovery and a bounded "
        "on-disk file count",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="run the decision-provenance smoke instead: an audited durable "
        "session, every decision fetched over HTTP, the reproducibility "
        "chain recomputed client-side, and a server restart serving the "
        "identical ledger",
    )
    args = parser.parse_args()
    if args.audit:
        return audit_main()
    if args.rotate:
        return rotate_main()
    if args.processes >= 1:
        return multiprocess_main(args.processes)
    process = start_server()
    try:
        address = server_address(process)
        print(f"server up at {address}")
        client = ServiceClient(address, timeout=30.0)

        health = client.healthz()
        assert health["status"] == "ok", health

        dataset = load_celebrity(seed=7, num_rows=8)
        schema = dataset.schema
        pool = dataset.worker_pool
        worker_ids, activities = pool.worker_ids(), pool.activities()
        rng = np.random.default_rng(7)
        spec = (
            SessionSpec.builder()
            .model(max_iterations=4, m_step_iterations=8)
            .policy(refit_every=1)
            .sharded(2)
            .async_refit(max_stale=0)
            .build()
        )
        session = client.create_session(
            {"schema": schema_to_dict(schema), **spec.to_dict()}
        )
        session_id = session["session_id"]
        print(f"session {session_id} created ({session['policy']})")

        # The canonical spec must be served back verbatim.
        status, config = client.request("GET", f"/sessions/{session_id}/config")
        assert status == 200, (status, config)
        assert SessionSpec.from_dict(
            {k: v for k, v in config.items() if k not in ("schema", "session_id")}
        ) == spec, config
        print("config round-trip OK")

        for row in range(schema.num_rows):
            worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
            client.post_answers(
                session_id,
                worker,
                [
                    (row, col, dataset.oracle.answer(worker, row, col, rng))
                    for col in range(schema.num_columns)
                ],
            )
        extra = int(round(0.4 * schema.num_cells))
        collected = failures = 0
        while collected < extra and failures < 50:
            worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
            status, body = client.get_tasks(
                session_id, worker, k=min(schema.num_columns, extra - collected)
            )
            if status == 409:
                failures += 1
                continue
            assert status == 200, (status, body)
            failures = 0
            client.post_answers(
                session_id,
                worker,
                [
                    (row, col, dataset.oracle.answer(worker, row, col, rng))
                    for row, col in body["cells"]
                ],
            )
            collected += len(body["cells"])
        print(f"collected {collected} answers over HTTP")

        estimates = client.get_estimates(session_id)
        assert len(estimates["estimates"]) == schema.num_cells, estimates

        # One legacy PR-4-dialect body pins the upgrade shim: the same
        # session expressed the old way must create fine and serve back a
        # canonical v1 spec.
        legacy = client.create_session(
            {
                "schema": schema_to_dict(schema),
                "policy": {
                    "refit_every": 1,
                    "model": {"max_iterations": 4, "m_step_iterations": 8},
                },
                "serving": {"shards": 2, "async_refit": True,
                            "max_stale_answers": 0},
            }
        )
        status, legacy_config = client.request(
            "GET", f"/sessions/{legacy['session_id']}/config"
        )
        assert status == 200 and legacy_config["version"] == 1, legacy_config
        assert legacy_config["serving"]["shards"] == 2, legacy_config
        client.delete_session(legacy["session_id"])
        print("legacy-config upgrade shim OK")

        metrics = client.get_metrics()
        for needle in (
            "repro_service_sessions_active 1",
            "repro_service_selects_served_total",
            "repro_service_answers_ingested_total",
        ):
            assert needle in metrics, f"{needle!r} missing from /metrics"
        print("metrics scrape OK")

        process.send_signal(signal.SIGINT)
        remaining, _ = process.communicate(timeout=30)
        if "shut down cleanly" not in remaining:
            raise RuntimeError(f"no clean shutdown message in: {remaining!r}")
        print("clean shutdown OK")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
