"""CLI entry point: ``python -m repro.service --port 8080``.

Starts the stdlib WSGI server over a fresh :class:`SessionRegistry`.
``POST /sessions`` takes a version-1 :class:`~repro.config.SessionSpec`
body (validate one offline with ``python -m repro.config.validate``; the
PR-4 legacy dialect still upgrades transparently).  With
``--durable-root DIR``, sessions created with ``{"durable": true}`` persist
their write-ahead log under ``DIR/<session_id>/`` and every durable session
already found there is recovered before the server starts accepting
requests.  The bound address is printed as ``listening on http://...`` —
``--port 0`` picks an ephemeral port (used by the CI smoke job).
"""

from __future__ import annotations

import argparse
import sys

from repro.config.spec import DURABILITY_BACKENDS
from repro.service.app import DEFAULT_MAX_BODY_BYTES, ServiceServer
from repro.service.registry import SessionRegistry
from repro.utils.logging import configure_logging


def build_server(argv=None) -> ServiceServer:
    """Parse CLI options and bind the server (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 binds an ephemeral port)",
    )
    parser.add_argument(
        "--durable-root", default=None,
        help="directory for durable sessions ({'durable': true} configs); "
        "existing sessions under it are recovered at startup",
    )
    parser.add_argument(
        "--durable-backend", default=None, choices=DURABILITY_BACKENDS,
        help="default storage backend for durable sessions whose spec "
        "does not set durability.backend (recovered sessions keep the "
        "backend pinned in their manifest)",
    )
    parser.add_argument(
        "--max-body-bytes", type=int, default=DEFAULT_MAX_BODY_BYTES,
        help="request-body size cap; larger uploads are rejected with 413",
    )
    parser.add_argument(
        "--log-level", default="INFO",
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        help="stdlib logging level for the repro logger tree",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit one JSON object per log line (with session_id / "
        "worker_id / decision_id correlation fields when available)",
    )
    args = parser.parse_args(argv)
    configure_logging(level=args.log_level, json_lines=args.log_json)
    registry = SessionRegistry(
        durable_root=args.durable_root, durable_backend=args.durable_backend
    )
    recovered = registry.recover_all()
    server = ServiceServer(
        registry,
        host=args.host,
        port=args.port,
        max_body_bytes=args.max_body_bytes,
    )
    for session_id in recovered:
        print(f"recovered session {session_id}", flush=True)
    return server


def main(argv=None) -> int:
    server = build_server(argv)
    print(f"listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        print("shut down cleanly", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
