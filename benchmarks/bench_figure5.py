"""Benchmark: Figure 5 — assignment heuristics on Restaurant."""

from conftest import FAST_MODEL, run_once

from repro.experiments import run_figure5


def test_figure5_assignment_heuristics(benchmark, report_writer):
    """Regenerate Figure 5 (Random / Looping / Entropy / Inherent IG / Structure IG)."""
    report = run_once(
        benchmark,
        run_figure5,
        seed=11,
        num_rows=25,
        target_answers_per_task=4.0,
        eval_every=1.0,
        model_kwargs=FAST_MODEL,
    )
    report_writer(report)
    heuristics = [row[0] for row in report.rows]
    assert heuristics == [
        "Random",
        "Looping",
        "Entropy",
        "Inherent Information Gain",
        "Structure-Aware Information Gain",
    ]
    # All heuristics are evaluated with T-Crowd inference and report both metrics.
    assert all(row[2] is not None and row[3] is not None for row in report.rows)
