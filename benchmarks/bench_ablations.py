"""Ablation benchmarks for the design choices called out in DESIGN.md §7.

These go beyond the paper's own tables: they isolate the contribution of
(1) the unified worker quality across datatypes, (2) the row/column
difficulty model, and (3) the closed-form continuous information gain versus
the paper's sampling estimator.
"""

import numpy as np
from conftest import FAST_MODEL, run_once

from repro.core.inference import TCrowdModel
from repro.core.information_gain import InformationGainCalculator
from repro.core.restricted import TCrowdCategoricalOnly, TCrowdContinuousOnly
from repro.datasets import load_restaurant
from repro.metrics import error_rate, mnad


def _dataset():
    return load_restaurant(seed=11, num_rows=60)


def test_ablation_unified_vs_per_datatype(benchmark):
    """Unified quality (full T-Crowd) vs per-datatype restricted variants."""
    dataset = _dataset()

    def run():
        full = TCrowdModel(**FAST_MODEL).fit(dataset.schema, dataset.answers)
        cat_only = TCrowdCategoricalOnly(**FAST_MODEL).fit(dataset.schema, dataset.answers)
        cont_only = TCrowdContinuousOnly(**FAST_MODEL).fit(dataset.schema, dataset.answers)
        return {
            "full_error": error_rate(full, dataset),
            "cat_only_error": error_rate(cat_only, dataset),
            "full_mnad": mnad(full, dataset),
            "cont_only_mnad": mnad(cont_only, dataset),
        }

    metrics = run_once(benchmark, run)
    # Sharing quality across datatypes should not hurt either datatype.
    assert metrics["full_error"] <= metrics["cat_only_error"] + 0.02
    assert metrics["full_mnad"] <= metrics["cont_only_mnad"] + 0.02


def test_ablation_difficulty_model(benchmark):
    """Row/column difficulty model on vs off (alpha_i = beta_j = 1)."""
    dataset = _dataset()

    def run():
        with_difficulty = TCrowdModel(**FAST_MODEL).fit(dataset.schema, dataset.answers)
        without_difficulty = TCrowdModel(use_difficulty=False, **FAST_MODEL).fit(
            dataset.schema, dataset.answers
        )
        return {
            "with": error_rate(with_difficulty, dataset),
            "without": error_rate(without_difficulty, dataset),
        }

    metrics = run_once(benchmark, run)
    assert metrics["with"] <= metrics["without"] + 0.03


def test_ablation_closed_form_vs_sampled_gain(benchmark):
    """Closed-form continuous information gain vs the sampling estimator."""
    dataset = _dataset()
    result = TCrowdModel(**FAST_MODEL).fit(dataset.schema, dataset.answers)
    worker = result.worker_ids[0]
    cont_col = dataset.schema.continuous_indices[0]
    cells = [(row, cont_col) for row in range(min(dataset.schema.num_rows, 20))]

    def run():
        closed = InformationGainCalculator(result)
        sampled = InformationGainCalculator(result, continuous_samples=50, seed=0)
        closed_gains = [closed.gain(worker, *cell) for cell in cells]
        sampled_gains = [sampled.gain(worker, *cell) for cell in cells]
        return closed_gains, sampled_gains

    closed_gains, sampled_gains = run_once(benchmark, run)
    # The two estimators agree closely; the closed form is what T-Crowd uses.
    difference = np.mean(np.abs(np.array(closed_gains) - np.array(sampled_gains)))
    assert difference < 0.1
