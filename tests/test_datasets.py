"""Tests for the dataset substrate (repro.datasets.*)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schema import Column, TableSchema
from repro.datasets import (
    CrowdDataset,
    SimulatedWorker,
    WorkerPool,
    add_noise,
    generate_synthetic,
    load_celebrity,
    load_emotion,
    load_restaurant,
)
from repro.datasets.synthetic import draw_difficulties
from repro.datasets.workers import AnswerOracle
from repro.utils.exceptions import ConfigurationError, DataError


class TestSimulatedWorkerAndPool:
    def test_worker_validation(self):
        with pytest.raises(ConfigurationError):
            SimulatedWorker("w", variance=-1.0)
        with pytest.raises(ConfigurationError):
            SimulatedWorker("w", variance=1.0, contamination=1.5)

    def test_worker_quality_decreases_with_variance(self):
        good = SimulatedWorker("g", variance=0.2)
        bad = SimulatedWorker("b", variance=5.0)
        assert good.quality() > bad.quality()

    def test_pool_generate_shapes(self):
        pool = WorkerPool.generate(25, seed=0)
        assert len(pool) == 25
        assert len(set(pool.worker_ids())) == 25
        assert np.isclose(pool.activities().sum(), 1.0)

    def test_pool_generate_reproducible(self):
        a = WorkerPool.generate(10, seed=3).variances()
        b = WorkerPool.generate(10, seed=3).variances()
        assert a == b

    def test_pool_long_tail_quality(self):
        pool = WorkerPool.generate(200, seed=1, variance_spread=1.0)
        variances = np.array(list(pool.variances().values()))
        assert np.mean(variances) > np.median(variances)  # right-skewed

    def test_pool_lookup(self):
        pool = WorkerPool.generate(5, seed=0)
        worker_id = pool.worker_ids()[0]
        assert pool.worker(worker_id).worker_id == worker_id
        with pytest.raises(DataError):
            pool.worker("missing")

    def test_pool_requires_unique_ids(self):
        worker = SimulatedWorker("dup", variance=1.0)
        with pytest.raises(ConfigurationError):
            WorkerPool([worker, worker])

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool([])


class TestAnswerOracle:
    @pytest.fixture()
    def oracle(self):
        schema = TableSchema.build(
            "e",
            [Column.categorical("c", ["a", "b", "c"]), Column.continuous("x", (0, 100))],
            4,
        )
        truth = {}
        rng = np.random.default_rng(0)
        for i in range(4):
            truth[(i, 0)] = "a"
            truth[(i, 1)] = float(rng.uniform(0, 100))
        pool = WorkerPool(
            [
                SimulatedWorker("good", variance=0.1),
                SimulatedWorker("bad", variance=9.0),
            ]
        )
        return AnswerOracle(
            schema=schema,
            ground_truth=truth,
            pool=pool,
            row_difficulty=np.ones(4),
            column_difficulty=np.ones(2),
            column_noise_scale=np.array([1.0, 10.0]),
            row_shift_sigma=0.0,
            seed=1,
        ), truth

    def test_answers_valid_for_schema(self, oracle):
        oracle_obj, _truth = oracle
        rng = np.random.default_rng(2)
        for worker in ("good", "bad"):
            label = oracle_obj.answer(worker, 0, 0, rng)
            assert label in ("a", "b", "c")
            value = oracle_obj.answer(worker, 0, 1, rng)
            assert 0.0 <= value <= 100.0

    def test_good_worker_more_accurate(self, oracle):
        oracle_obj, truth = oracle
        rng = np.random.default_rng(3)
        good_hits = sum(
            oracle_obj.answer("good", i % 4, 0, rng) == "a" for i in range(200)
        )
        bad_hits = sum(
            oracle_obj.answer("bad", i % 4, 0, rng) == "a" for i in range(200)
        )
        assert good_hits > bad_hits

    def test_effective_variance_scales_with_difficulty(self, oracle):
        oracle_obj, _truth = oracle
        base = oracle_obj.effective_variance("good", 0, 0)
        oracle_obj.row_difficulty[0] = 4.0
        assert oracle_obj.effective_variance("good", 0, 0) == pytest.approx(4.0 * base)

    def test_familiarity_cached_per_worker_row(self):
        schema = TableSchema.build("e", [Column.continuous("x", (0, 1))], 2)
        pool = WorkerPool([SimulatedWorker("w", variance=1.0)])
        oracle = AnswerOracle(
            schema=schema,
            ground_truth={(0, 0): 0.5, (1, 0): 0.5},
            pool=pool,
            row_difficulty=np.ones(2),
            column_difficulty=np.ones(1),
            column_noise_scale=np.ones(1),
            row_familiarity_sigma=0.5,
            seed=0,
        )
        assert oracle.familiarity("w", 0) == oracle.familiarity("w", 0)

    def test_row_shift_and_bias_cached(self):
        schema = TableSchema.build("e", [Column.continuous("x", (0, 1))], 2)
        pool = WorkerPool([SimulatedWorker("w", variance=1.0)])
        oracle = AnswerOracle(
            schema=schema,
            ground_truth={(0, 0): 0.5, (1, 0): 0.5},
            pool=pool,
            row_difficulty=np.ones(2),
            column_difficulty=np.ones(1),
            column_noise_scale=np.ones(1),
            row_shift_sigma=0.5,
            bias_fraction=0.3,
            seed=0,
        )
        assert oracle.row_shift("w", 1) == oracle.row_shift("w", 1)
        assert oracle.worker_bias("w", 0) == oracle.worker_bias("w", 0)


class TestSyntheticGenerator:
    def test_draw_difficulties_geometric_mean_one(self):
        values = draw_difficulties(50, np.random.default_rng(0), sigma=0.5)
        assert np.exp(np.mean(np.log(values))) == pytest.approx(1.0)

    def test_generate_synthetic_shapes(self, small_dataset):
        assert small_dataset.schema.num_rows == 15
        assert small_dataset.schema.num_columns == 6
        assert len(small_dataset.schema.categorical_indices) == 3
        assert small_dataset.answers_per_task == pytest.approx(3.0)
        assert small_dataset.oracle is not None
        assert small_dataset.worker_pool is not None

    def test_generate_synthetic_ratio_extremes(self):
        all_cat = generate_synthetic(num_rows=5, num_columns=4, categorical_ratio=1.0,
                                     answers_per_task=2, num_workers=6, seed=0)
        assert len(all_cat.schema.continuous_indices) == 0
        all_cont = generate_synthetic(num_rows=5, num_columns=4, categorical_ratio=0.0,
                                      answers_per_task=2, num_workers=6, seed=0)
        assert len(all_cont.schema.categorical_indices) == 0

    def test_generate_synthetic_label_counts_in_range(self, small_dataset):
        for col in small_dataset.schema.categorical_indices:
            assert 2 <= small_dataset.schema.columns[col].num_labels <= 10

    def test_ground_truth_within_domain(self, small_dataset):
        for (i, j), value in small_dataset.ground_truth.items():
            column = small_dataset.schema.columns[j]
            if column.is_categorical:
                assert column.contains_label(value)
            else:
                low, high = column.domain
                assert low <= value <= high

    def test_each_row_answered_by_full_hits(self, small_dataset):
        # Every worker who answered any cell of a row answered the whole row.
        by_worker_row = {}
        for answer in small_dataset.answers:
            by_worker_row.setdefault((answer.worker, answer.row), set()).add(answer.col)
        num_cols = small_dataset.schema.num_columns
        assert all(len(cols) == num_cols for cols in by_worker_row.values())

    def test_answers_per_task_exceeding_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_synthetic(num_rows=3, num_columns=2, answers_per_task=10,
                               num_workers=4, seed=0)

    def test_reproducible_generation(self):
        a = generate_synthetic(num_rows=5, num_columns=4, answers_per_task=2,
                               num_workers=8, seed=11)
        b = generate_synthetic(num_rows=5, num_columns=4, answers_per_task=2,
                               num_workers=8, seed=11)
        assert a.ground_truth == b.ground_truth
        assert [x.value for x in a.answers] == [x.value for x in b.answers]

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=10, deadline=None)
    def test_categorical_ratio_respected(self, ratio):
        dataset = generate_synthetic(
            num_rows=3, num_columns=6, categorical_ratio=ratio,
            answers_per_task=2, num_workers=5, seed=1,
        )
        expected = int(round(ratio * 6))
        assert len(dataset.schema.categorical_indices) == expected


class TestRealDatasetSimulations:
    @pytest.mark.parametrize(
        "loader, rows, cols, apt",
        [
            (load_celebrity, 174, 7, 5),
            (load_restaurant, 203, 5, 4),
            (load_emotion, 100, 7, 10),
        ],
    )
    def test_table6_statistics(self, loader, rows, cols, apt):
        dataset = loader(seed=1, num_rows=20)
        assert dataset.schema.num_columns == cols
        assert dataset.answers_per_task == pytest.approx(apt)
        # Full-size shape check without rebuilding the whole dataset.
        full_schema_rows = loader.__module__
        assert rows > 0  # table constant documented in the module
        assert dataset.schema.num_rows == 20

    def test_celebrity_column_mix(self):
        dataset = load_celebrity(seed=1, num_rows=10)
        assert len(dataset.schema.categorical_indices) == 3
        assert len(dataset.schema.continuous_indices) == 4

    def test_restaurant_column_mix(self):
        dataset = load_restaurant(seed=1, num_rows=10)
        assert len(dataset.schema.categorical_indices) == 3
        assert len(dataset.schema.continuous_indices) == 2

    def test_emotion_all_continuous(self):
        dataset = load_emotion(seed=1, num_rows=10)
        assert len(dataset.schema.categorical_indices) == 0
        assert len(dataset.schema.continuous_indices) == 7

    def test_restaurant_span_truths_ordered(self):
        dataset = load_restaurant(seed=2, num_rows=15)
        start = dataset.schema.column_index("start_target")
        end = dataset.schema.column_index("end_target")
        for i in range(15):
            assert dataset.truth(i, end) > dataset.truth(i, start)


class TestCrowdDataset:
    def test_summary_fields(self, small_dataset):
        summary = small_dataset.summary()
        assert summary["cells"] == small_dataset.schema.num_cells
        assert summary["workers"] == small_dataset.num_workers

    def test_truth_lookup(self, small_dataset):
        assert small_dataset.truth(0, 0) == small_dataset.ground_truth[(0, 0)]
        with pytest.raises(DataError):
            small_dataset.truth(10**6, 0)

    def test_cell_partitions(self, small_dataset):
        cat = small_dataset.categorical_cells()
        cont = small_dataset.continuous_cells()
        assert len(cat) + len(cont) == small_dataset.schema.num_cells

    def test_column_truth_std(self, small_dataset):
        col = small_dataset.schema.continuous_indices[0]
        assert small_dataset.column_truth_std(col) > 0
        with pytest.raises(DataError):
            small_dataset.column_truth_std(small_dataset.schema.categorical_indices[0])

    def test_ground_truth_must_cover_all_cells(self, small_dataset):
        with pytest.raises(DataError):
            CrowdDataset(
                name="broken",
                schema=small_dataset.schema,
                ground_truth={(0, 0): 1.0},
                answers=small_dataset.answers,
            )

    def test_with_answers_copy(self, small_dataset):
        from repro.core.answers import AnswerSet

        clone = small_dataset.with_answers(AnswerSet(small_dataset.schema), "+empty")
        assert clone.num_answers == 0
        assert clone.name.endswith("+empty")
        assert small_dataset.num_answers > 0


class TestNoiseInjection:
    def test_gamma_zero_changes_nothing(self, small_dataset):
        noisy = add_noise(small_dataset, 0.0, seed=0)
        assert [a.value for a in noisy.answers] == [a.value for a in small_dataset.answers]

    def test_noise_perturbs_some_answers(self, small_dataset):
        noisy = add_noise(small_dataset, 0.4, seed=0)
        changed = sum(
            1 for a, b in zip(small_dataset.answers, noisy.answers) if a.value != b.value
        )
        assert changed > 0
        assert len(noisy.answers) == len(small_dataset.answers)

    def test_noise_preserves_cell_structure(self, small_dataset):
        noisy = add_noise(small_dataset, 0.3, seed=1)
        for original, perturbed in zip(small_dataset.answers, noisy.answers):
            assert original.cell() == perturbed.cell()
            assert original.worker == perturbed.worker

    def test_noise_respects_domains_and_labels(self, small_dataset):
        noisy = add_noise(small_dataset, 0.5, seed=2)
        for answer in noisy.answers:
            column = small_dataset.schema.columns[answer.col]
            if column.is_categorical:
                assert column.contains_label(answer.value)
            elif column.domain:
                low, high = column.domain
                assert low <= answer.value <= high

    def test_gamma_out_of_range_rejected(self, small_dataset):
        with pytest.raises(ConfigurationError):
            add_noise(small_dataset, 1.5)

    def test_metadata_records_gamma(self, small_dataset):
        noisy = add_noise(small_dataset, 0.2, seed=0)
        assert noisy.metadata["noise_gamma"] == 0.2

    @given(st.floats(0.05, 0.95))
    @settings(max_examples=8, deadline=None)
    def test_changed_fraction_bounded_by_gamma(self, gamma):
        dataset = generate_synthetic(num_rows=6, num_columns=4, answers_per_task=3,
                                     num_workers=8, seed=4)
        noisy = add_noise(dataset, gamma, seed=0)
        changed = sum(
            1 for a, b in zip(dataset.answers, noisy.answers) if a.value != b.value
        )
        # At most gamma * num_cells positions are redrawn (with replacement).
        assert changed <= int(round(gamma * dataset.schema.num_cells))
