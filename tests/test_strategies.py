"""Tests for the pluggable assignment-strategy zoo (repro.strategies)."""

import numpy as np
import pytest

from repro.config import SessionSpec, SpecValidationError, StrategySpec
from repro.engine.provenance import (
    GENESIS_HASH,
    DecisionRecorder,
    strategy_genesis,
)
from repro.service.bench import run_scripted_session, verify_audit_replay
from repro.strategies import (
    RETIRED_GAIN,
    BudgetVoIStrategy,
    EpsilonGreedyStrategy,
    RandomStrategy,
    RoundRobinStrategy,
    StrategyCalculator,
    UncertaintyStrategy,
    build_strategy,
    hash_unit,
    posterior_confidence,
)
from repro.strategies.zoo import _RandomCalculator, _VoICalculator

FAST_MODEL = {"max_iterations": 3, "m_step_iterations": 6}


class TestStrategySpec:
    def test_defaults_to_paper(self):
        spec = StrategySpec()
        assert spec.name == "paper"
        assert spec.base == "paper"

    def test_round_trip_exact(self):
        spec = StrategySpec(
            name="epsilon_greedy",
            epsilon=0.25,
            base="budget_voi",
            confidence=0.85,
            min_answers=3,
            seed=11,
        )
        assert StrategySpec.from_dict(spec.to_dict()) == spec

    def test_string_shorthand(self):
        assert StrategySpec.from_dict("uncertainty") == StrategySpec(
            name="uncertainty"
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(SpecValidationError, match="policy.strategy.name"):
            StrategySpec(name="greedy")

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecValidationError, match="temperature"):
            StrategySpec.from_dict({"name": "random", "temperature": 2.0})

    def test_epsilon_bounded(self):
        with pytest.raises(SpecValidationError, match="policy.strategy.epsilon"):
            StrategySpec(name="epsilon_greedy", epsilon=1.5)

    def test_composite_base_rejected(self):
        with pytest.raises(SpecValidationError, match="policy.strategy.base"):
            StrategySpec(name="epsilon_greedy", base="epsilon_greedy")

    def test_session_spec_round_trips_strategy(self):
        spec = (
            SessionSpec.builder()
            .strategy("epsilon_greedy", epsilon=0.2, base="uncertainty", seed=3)
            .build()
        )
        rebuilt = SessionSpec.from_dict(spec.to_dict())
        assert rebuilt.policy.strategy == spec.policy.strategy
        assert rebuilt.policy.strategy.base == "uncertainty"


class TestRegistry:
    def test_paper_builds_to_none(self):
        assert build_strategy(None) is None
        assert build_strategy(StrategySpec(name="paper")) is None

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("random", RandomStrategy),
            ("round_robin", RoundRobinStrategy),
            ("uncertainty", UncertaintyStrategy),
            ("budget_voi", BudgetVoIStrategy),
        ],
    )
    def test_simple_strategies(self, name, cls):
        strategy = build_strategy(StrategySpec(name=name))
        assert isinstance(strategy, cls)
        assert strategy.name == name

    def test_epsilon_greedy_over_paper_has_no_base(self):
        strategy = build_strategy(StrategySpec(name="epsilon_greedy"))
        assert isinstance(strategy, EpsilonGreedyStrategy)
        assert strategy.base is None

    def test_epsilon_greedy_composition_propagates_knobs(self):
        spec = StrategySpec(
            name="epsilon_greedy",
            base="budget_voi",
            confidence=0.7,
            min_answers=5,
            seed=13,
        )
        strategy = build_strategy(spec)
        assert isinstance(strategy.base, BudgetVoIStrategy)
        assert strategy.base.spec.confidence == 0.7
        assert strategy.base.spec.min_answers == 5
        assert strategy.base.spec.seed == 13


class TestHashUnit:
    def test_deterministic_and_in_unit_interval(self):
        draws = [hash_unit(7, "explore", step) for step in range(64)]
        assert draws == [hash_unit(7, "explore", step) for step in range(64)]
        assert all(0.0 <= draw < 1.0 for draw in draws)
        # The stream actually varies with the context.
        assert len(set(draws)) == len(draws)

    def test_context_separates_streams(self):
        assert hash_unit(7, "explore", 0) != hash_unit(7, "score", 0)
        assert hash_unit(7, "explore", 0) != hash_unit(8, "explore", 0)

    def test_none_seed_is_its_own_stream(self):
        assert hash_unit(None, "score", 0) != hash_unit(0, "score", 0)
        assert hash_unit(None, "score", 0) == hash_unit(None, "score", 0)


class _ConstantCalculator(StrategyCalculator):
    def __init__(self, value: float) -> None:
        self.value = value

    def gain(self, worker, row, col):
        return self.value


class _StubPosterior:
    def __init__(self, probs=None, variance=None):
        self.is_categorical = probs is not None
        self.probs = None if probs is None else np.asarray(probs, dtype=float)
        self.variance = variance


class _StubResult:
    """posterior() keyed on the column: col 0 settled, col 1 contested."""

    def posterior(self, row, col):
        if col == 0:
            return _StubPosterior(probs=[0.98, 0.02])
        return _StubPosterior(probs=[0.55, 0.45])


class TestPosteriorConfidence:
    def test_categorical_is_max_prob(self):
        assert posterior_confidence(
            _StubPosterior(probs=[0.2, 0.7, 0.1])
        ) == pytest.approx(0.7)

    def test_continuous_shrinks_with_variance(self):
        assert posterior_confidence(
            _StubPosterior(variance=0.0)
        ) == pytest.approx(1.0)
        assert posterior_confidence(
            _StubPosterior(variance=3.0)
        ) == pytest.approx(0.25)


class TestVoIRetirement:
    def _calculator(self, counts):
        return _VoICalculator(
            _ConstantCalculator(1.0),
            _StubResult(),
            np.asarray(counts),
            confidence=0.9,
            min_answers=2,
        )

    def test_confident_cell_retires(self):
        calc = self._calculator([[2, 2]])
        assert calc.gain("w", 0, 0) == RETIRED_GAIN
        assert calc.gain("w", 0, 1) == 1.0

    def test_min_answers_gates_retirement(self):
        calc = self._calculator([[1, 1]])
        assert calc.gain("w", 0, 0) == 1.0

    def test_batch_substitutes_retired_cells(self):
        calc = self._calculator([[2, 2]])
        gains = calc.gains_batch("w", [(0, 0), (0, 1)])
        assert gains.tolist() == [RETIRED_GAIN, 1.0]

    def test_retired_gain_is_json_safe(self):
        import json

        assert json.loads(json.dumps(RETIRED_GAIN)) == RETIRED_GAIN
        assert np.isfinite(RETIRED_GAIN)


class _StubAnswers:
    def __init__(self, total, counts):
        self._total = total
        self._counts = np.asarray(counts)

    def __len__(self):
        return self._total

    def answer_counts(self):
        return self._counts


class TestEpsilonGreedy:
    def test_always_explore_scores_randomly(self):
        strategy = build_strategy(
            StrategySpec(name="epsilon_greedy", epsilon=1.0, seed=5)
        )
        calc = strategy.build_calculator(None, None, _StubAnswers(9, [[0]]))
        assert isinstance(calc, _RandomCalculator)
        assert calc.gain("w", 0, 0) == hash_unit(5, "score", "w", 9, 0, 0)

    def test_never_explore_delegates_to_base(self):
        strategy = build_strategy(
            StrategySpec(name="epsilon_greedy", epsilon=0.0, base="round_robin")
        )
        calc = strategy.build_calculator(
            None, None, _StubAnswers(9, [[4, 1]])
        )
        assert calc.gain("w", 0, 0) == -4.0
        assert calc.gain("w", 0, 1) == -1.0

    def test_explore_branch_is_worker_free_and_replayable(self):
        spec = StrategySpec(
            name="epsilon_greedy", epsilon=0.4, base="round_robin", seed=2
        )
        first = build_strategy(spec)
        second = build_strategy(spec)
        for total in range(12):
            answers = _StubAnswers(total, [[0]])
            a = first.build_calculator(None, None, answers)
            b = second.build_calculator(None, None, answers)
            # The explore decision depends only on (seed, answers_total):
            # every serving mode takes the same branch at the same state.
            assert type(a) is type(b)


class TestStrategyBinding:
    def test_paper_keeps_historic_genesis(self):
        assert strategy_genesis(None) == GENESIS_HASH
        assert strategy_genesis("paper") == GENESIS_HASH

    def test_non_paper_genesis_is_strategy_specific(self):
        heads = {
            strategy_genesis(name)
            for name in ("random", "uncertainty", "budget_voi")
        }
        assert len(heads) == 3
        assert GENESIS_HASH not in heads
        assert strategy_genesis("uncertainty") == strategy_genesis("uncertainty")

    def test_recorder_normalises_paper_to_none(self):
        recorder = DecisionRecorder(strategy="paper")
        assert recorder.strategy is None
        assert recorder.chain_head == GENESIS_HASH
        assert recorder.state()["strategy"] is None

    def test_recorder_binds_strategy_under_the_chain(self):
        recorder = DecisionRecorder(strategy="uncertainty")
        genesis = strategy_genesis("uncertainty")
        assert recorder.chain_head == genesis
        state = recorder.state()
        assert state["strategy"] == "uncertainty"
        assert state["chain_head"] == genesis

    def test_restore_defaults_head_to_own_genesis(self):
        recorder = DecisionRecorder(strategy="uncertainty")
        recorder.restore({"records": []})
        assert recorder.chain_head == strategy_genesis("uncertainty")


class TestStrategySessions:
    """Live scripted sessions: the default stays identical, others diverge."""

    SCENARIO = {"model_kwargs": FAST_MODEL}

    @pytest.fixture(scope="class")
    def default_outcome(self):
        return run_scripted_session("plain", scenario=dict(self.SCENARIO))

    def test_default_identical_to_pinned_paper(self, default_outcome):
        pinned = run_scripted_session(
            "plain", scenario={**self.SCENARIO, "strategy": "paper"}
        )
        assert pinned["decisions"] == default_outcome["decisions"]
        assert pinned["estimates"] == default_outcome["estimates"]
        assert (
            pinned["session"].recorder.chain_head
            == default_outcome["session"].recorder.chain_head
        )

    @pytest.mark.parametrize("name", ["random", "round_robin", "uncertainty"])
    def test_non_default_strategies_diverge(self, name, default_outcome):
        outcome = run_scripted_session(
            "plain", scenario={**self.SCENARIO, "strategy": name}
        )
        assert outcome["decisions"]
        assert outcome["decisions"] != default_outcome["decisions"]
        assert (
            outcome["session"].recorder.chain_head
            != default_outcome["session"].recorder.chain_head
        )

    def test_wal_recovery_replays_a_non_paper_chain(self, tmp_path):
        summary = verify_audit_replay(
            directory=tmp_path, scenario={**self.SCENARIO, "strategy": "uncertainty"}
        )
        assert summary["audit_replay_identical"], summary
        assert summary["audit_replay_mismatches"] == 0, summary


class TestCrossModeStrategyIdentity:
    """A non-paper strategy is bit-identical across the serving matrix."""

    IN_PROCESS_MODES = ("plain", "sharded", "async", "sharded_async")

    @pytest.fixture(scope="class")
    def outcomes(self):
        scenario = {"model_kwargs": FAST_MODEL, "strategy": "uncertainty"}
        return {
            mode: run_scripted_session(mode, scenario=dict(scenario))
            for mode in self.IN_PROCESS_MODES
        }

    def test_decisions_identical_across_modes(self, outcomes):
        reference = outcomes["plain"]["decisions"]
        assert reference
        for mode, outcome in outcomes.items():
            assert outcome["decisions"] == reference, mode

    def test_chain_heads_identical_across_modes(self, outcomes):
        heads = {
            mode: outcome["session"].recorder.chain_head
            for mode, outcome in outcomes.items()
        }
        assert len(set(heads.values())) == 1, heads
        assert GENESIS_HASH not in heads.values()

    def test_recorders_pin_the_strategy(self, outcomes):
        for outcome in outcomes.values():
            assert outcome["session"].recorder.state()["strategy"] == "uncertainty"

    @pytest.mark.slow
    def test_multiprocess_serves_the_same_chain(self, outcomes):
        outcome = run_scripted_session(
            "multiprocess",
            scenario={"model_kwargs": FAST_MODEL, "strategy": "uncertainty"},
        )
        assert outcome["decisions"] == outcomes["plain"]["decisions"]
        assert (
            outcome["session"].recorder.chain_head
            == outcomes["plain"]["session"].recorder.chain_head
        )
