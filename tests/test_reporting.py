"""Tests for the experiment reporting helpers."""


from repro.experiments.reporting import ExperimentReport, format_table


class TestFormatTable:
    def test_alignment_and_rendering(self):
        text = format_table(
            ["Method", "Error"],
            [["T-Crowd", 0.0441], ["Majority Voting", None]],
        )
        lines = text.splitlines()
        assert lines[0].startswith("Method")
        assert "0.0441" in text
        assert "/" in text  # None rendered as '/'
        # Header, separator and two data rows.
        assert len(lines) == 4

    def test_precision(self):
        text = format_table(["x"], [[0.123456]], precision=2)
        assert "0.12" in text
        assert "0.1235" not in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestExperimentReport:
    def test_add_row_and_series_and_notes(self):
        report = ExperimentReport("table7", "Truth inference", headers=["Method", "Err"])
        report.add_row("T-Crowd", 0.04)
        report.add_series("curve", [(1, 0.3), (2, 0.2)])
        report.add_note("configuration X")
        text = report.to_text()
        assert "table7" in text
        assert "T-Crowd" in text
        assert "curve" in text
        assert "configuration X" in text

    def test_best_by_minimise(self):
        report = ExperimentReport("x", "t", headers=["Method", "Err"])
        report.add_row("A", 0.5)
        report.add_row("B", 0.2)
        report.add_row("C", None)
        assert report.best_by("Err")[0] == "B"
        assert report.best_by("Err", minimize=False)[0] == "A"

    def test_best_by_unknown_column(self):
        report = ExperimentReport("x", "t", headers=["Method"])
        assert report.best_by("missing") is None

    def test_best_by_no_numeric_rows(self):
        report = ExperimentReport("x", "t", headers=["Method", "Err"])
        report.add_row("A", None)
        assert report.best_by("Err") is None
