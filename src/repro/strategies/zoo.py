"""The built-in assignment strategies (baselines + adaptive controllers).

====================  =========================================================
name                  what scores a candidate cell
====================  =========================================================
``paper``             the gain-based selector of Sections 5.1/5.2 (handled by
                      the assigner itself — :func:`build_strategy` returns
                      ``None`` so the default path stays byte-for-byte intact)
``random``            a hash-derived uniform draw per ``(worker, cell,
                      answers_total)`` — the unmodelled-crowd baseline
``round_robin``       ``-answer_count(cell)`` — spread answers evenly; ties
                      resolve row-major through the shared stable top-K
``uncertainty``       the posterior entropy ``H(T_ij)`` — classic uncertainty
                      sampling over :mod:`repro.core.entropy`'s uniform
                      entropy, ignoring who is asking
``budget_voi``        the paper gain, except cells whose posterior confidence
                      cleared ``confidence`` (after ``min_answers`` answers)
                      are *retired* to :data:`~repro.strategies.base.RETIRED_GAIN`
                      — a value-of-information stopping rule that redirects
                      the remaining budget to contested cells (the
                      POMDP-style controller)
``epsilon_greedy``    with probability ``epsilon`` (one hash-derived draw per
                      calculator build), score like ``random``; otherwise
                      score with the ``base`` strategy — composable over any
                      non-composite base
====================  =========================================================

Posterior confidence (``budget_voi``) is the max posterior probability for
categorical cells and ``1 / (1 + variance)`` for continuous ones — both
monotone "how settled is this cell" measures in ``(0, 1]``, so one
threshold covers heterogeneous rows.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.inference import InferenceResult
from repro.strategies.base import (
    RETIRED_GAIN,
    AssignmentStrategy,
    Cell,
    StrategyCalculator,
    hash_unit,
)


# -- random --------------------------------------------------------------------


class _RandomCalculator(StrategyCalculator):
    """Hash-derived uniform score per ``(worker, cell)`` at one answer count."""

    def __init__(self, seed, answers_total: int) -> None:
        self._seed = seed
        self._answers_total = int(answers_total)

    def gain(self, worker: str, row: int, col: int) -> float:
        return hash_unit(
            self._seed, "score", worker, self._answers_total, row, col
        )


class RandomStrategy(AssignmentStrategy):
    """Uniform-random assignment (the paper's "Random" baseline)."""

    def build_calculator(self, assigner, result, answers):
        return _RandomCalculator(self.spec.seed, len(answers))


# -- round robin ---------------------------------------------------------------


class _RoundRobinCalculator(StrategyCalculator):
    """``-answer_count``: the least-answered cells win, ties row-major."""

    def __init__(self, counts: np.ndarray) -> None:
        self._counts = counts

    def gain(self, worker: str, row: int, col: int) -> float:
        return float(-self._counts[row, col])

    def gains_batch(self, worker: str, cells: Iterable[Cell]) -> np.ndarray:
        cells = list(cells)
        if not cells:
            return np.zeros(0, dtype=float)
        index = np.asarray(cells, dtype=np.int64)
        return -self._counts[index[:, 0], index[:, 1]].astype(float)


class RoundRobinStrategy(AssignmentStrategy):
    """Spread answers evenly across cells (the "Looping" baseline)."""

    def build_calculator(self, assigner, result, answers):
        return _RoundRobinCalculator(answers.answer_counts())


# -- uncertainty sampling ------------------------------------------------------


class _UncertaintyCalculator(StrategyCalculator):
    """Posterior entropy of the cell — worker-agnostic uncertainty sampling."""

    def __init__(self, result: InferenceResult) -> None:
        self._result = result

    def gain(self, worker: str, row: int, col: int) -> float:
        return float(self._result.posterior(row, col).entropy())


class UncertaintyStrategy(AssignmentStrategy):
    """Assign the cells whose truth posterior is most uncertain."""

    def build_calculator(self, assigner, result, answers):
        return _UncertaintyCalculator(result)


# -- value-of-information stopping ---------------------------------------------


def posterior_confidence(posterior) -> float:
    """A ``(0, 1]`` "how settled" measure across both posterior families."""
    if posterior.is_categorical:
        return float(np.max(posterior.probs))
    return 1.0 / (1.0 + float(posterior.variance))


class _VoICalculator(StrategyCalculator):
    """The paper gain, with confident cells retired to ``RETIRED_GAIN``."""

    def __init__(
        self,
        inner,
        result: InferenceResult,
        counts: np.ndarray,
        confidence: float,
        min_answers: int,
    ) -> None:
        self._inner = inner
        self._result = result
        self._counts = counts
        self._confidence = float(confidence)
        self._min_answers = int(min_answers)

    def _retired(self, row: int, col: int) -> bool:
        if self._counts[row, col] < self._min_answers:
            return False
        posterior = self._result.posterior(row, col)
        return posterior_confidence(posterior) >= self._confidence

    def gain(self, worker: str, row: int, col: int) -> float:
        if self._retired(row, col):
            return RETIRED_GAIN
        return self._inner.gain(worker, row, col)

    def gains_batch(self, worker: str, cells: Iterable[Cell]) -> np.ndarray:
        cells = list(cells)
        gains = np.asarray(
            self._inner.gains_batch(worker, cells), dtype=float
        ).copy()
        for index, (row, col) in enumerate(cells):
            if self._retired(row, col):
                gains[index] = RETIRED_GAIN
        return gains

    def prewarm(self) -> None:
        self._inner.prewarm()


class BudgetVoIStrategy(AssignmentStrategy):
    """Value-of-information stopping over the paper's gain.

    A cell that has collected at least ``min_answers`` answers and whose
    posterior confidence reached ``confidence`` is *retired*: it scores
    :data:`~repro.strategies.base.RETIRED_GAIN`, so the stable top-K only
    returns it once every contested cell is exhausted.  The freed budget
    flows to the rows the model is still unsure about — the adaptive
    stop/continue controller of the POMDP-style serving literature.
    """

    def build_calculator(self, assigner, result, answers):
        return _VoICalculator(
            assigner.paper_calculator(result, answers),
            result,
            answers.answer_counts(),
            confidence=self.spec.confidence,
            min_answers=self.spec.min_answers,
        )


# -- epsilon-greedy ------------------------------------------------------------


class EpsilonGreedyStrategy(AssignmentStrategy):
    """Explore/exploit wrapper: ``epsilon``-random, else the base strategy.

    The explore decision is one hash-derived draw per calculator build,
    keyed on ``(seed, answers_total)`` — every serving mode (and every
    WAL replay) takes the same branch at the same session state, which is
    what keeps the wrapper bit-identical across the serving matrix (the
    worker cannot enter the key: the calculator seam is per-state, and
    the composed mode legitimately reuses one calculator across workers).
    """

    def __init__(self, spec, base: Optional[AssignmentStrategy]) -> None:
        super().__init__(spec)
        #: ``None`` means the base is the paper calculator itself.
        self.base = base

    def build_calculator(self, assigner, result, answers):
        explore = (
            hash_unit(self.spec.seed, "explore", len(answers))
            < self.spec.epsilon
        )
        if explore:
            return _RandomCalculator(self.spec.seed, len(answers))
        if self.base is None:
            return assigner.paper_calculator(result, answers)
        return self.base.build_calculator(assigner, result, answers)
