"""CSV import/export of answers, ground truth and estimates.

The answer format mirrors what a requester downloads from a crowdsourcing
platform: one row per answer with the worker id, the entity (row) index, the
attribute (column) name and the raw value.  Columns are referenced by *name*
so the files stay readable and robust to column reordering.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Mapping, Tuple, Union

from repro.core.answers import Answer, AnswerSet
from repro.core.schema import TableSchema
from repro.utils.exceptions import DataError

PathLike = Union[str, Path]

ANSWER_FIELDS = ("worker", "row", "column", "value")
CELL_FIELDS = ("row", "column", "value")


def _parse_value(schema: TableSchema, column_name: str, raw: str):
    column = schema.column(column_name)
    if column.is_continuous:
        try:
            return float(raw)
        except ValueError as exc:
            raise DataError(
                f"Value {raw!r} in column {column_name!r} is not numeric"
            ) from exc
    return raw


def write_answers_csv(answers: AnswerSet, path: PathLike) -> None:
    """Write an answer set as ``worker,row,column,value`` lines."""
    schema = answers.schema
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(ANSWER_FIELDS)
        for answer in answers:
            writer.writerow([
                answer.worker,
                answer.row,
                schema.columns[answer.col].name,
                answer.value,
            ])


def read_answers_csv(schema: TableSchema, path: PathLike) -> AnswerSet:
    """Read an answer set written by :func:`write_answers_csv`.

    Values are validated against the schema: labels must belong to the
    column's label set and continuous values must parse as numbers.
    """
    answers = AnswerSet(schema)
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = set(ANSWER_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise DataError(f"Answer CSV is missing columns: {sorted(missing)}")
        for record in reader:
            column_name = record["column"]
            value = _parse_value(schema, column_name, record["value"])
            answers.add(
                Answer(
                    worker=record["worker"],
                    row=int(record["row"]),
                    col=schema.column_index(column_name),
                    value=value,
                )
            )
    return answers


def write_ground_truth_csv(
    truth: Mapping[Tuple[int, int], object], schema: TableSchema, path: PathLike
) -> None:
    """Write a ``row,column,value`` file of ground-truth (or estimated) cells."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(CELL_FIELDS)
        for (row, col), value in sorted(truth.items()):
            writer.writerow([row, schema.columns[col].name, value])


def read_ground_truth_csv(
    schema: TableSchema, path: PathLike
) -> Dict[Tuple[int, int], object]:
    """Read a ``row,column,value`` cell file into a ``{(row, col): value}`` map."""
    truth: Dict[Tuple[int, int], object] = {}
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = set(CELL_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise DataError(f"Cell CSV is missing columns: {sorted(missing)}")
        for record in reader:
            column_name = record["column"]
            col = schema.column_index(column_name)
            row = int(record["row"])
            schema.validate_cell(row, col)
            value = _parse_value(schema, column_name, record["value"])
            schema.validate_value(col, value)
            truth[(row, col)] = value
    return truth


def write_estimates_csv(source, schema: TableSchema, path: PathLike) -> None:
    """Write estimated truths (a mapping or an object with ``estimates()``)."""
    estimates = source if isinstance(source, Mapping) else source.estimates()
    write_ground_truth_csv(estimates, schema, path)
