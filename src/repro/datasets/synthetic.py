"""Synthetic tabular crowdsourcing data (Section 6.5.1) and the shared builder.

:func:`generate_synthetic` reproduces the paper's generator: a table with a
configurable number of columns, categorical-to-continuous ratio and average
cell difficulty; categorical label-set sizes drawn from U(2, 10); continuous
domains of [0, 1000]; ground truths drawn uniformly from the domain; and
answers produced by a worker pool through the paper's worker model.

:func:`build_dataset` is the lower-level builder also used by the simulated
Celebrity / Restaurant / Emotion datasets: given a schema, ground truth and a
worker pool it draws row/column difficulties, allocates HITs (one HIT = all
cells of one row, matching the paper's AMT setup) and collects the initial
answers.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.schema import Column, TableSchema
from repro.datasets.base import CrowdDataset
from repro.datasets.workers import AnswerOracle, WorkerPool
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_generator
from repro.utils.validation import require_in_range, require_positive


def draw_difficulties(
    count: int,
    rng: np.random.Generator,
    sigma: float = 0.25,
) -> np.ndarray:
    """Draw log-normal difficulty factors with geometric mean one."""
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count}")
    values = np.exp(rng.normal(0.0, sigma, count))
    return values / np.exp(np.mean(np.log(values)))


def build_dataset(
    name: str,
    schema: TableSchema,
    ground_truth: Dict[Tuple[int, int], object],
    pool: WorkerPool,
    answers_per_task: int,
    seed=None,
    average_difficulty: float = 1.0,
    difficulty_sigma: float = 0.25,
    row_familiarity_sigma: float = 0.35,
    row_confusion_probability: float = 0.1,
    row_confusion_multiplier: float = 8.0,
    row_shift_sigma: float = 0.4,
    noise_fraction: float = 1.2,
    bias_fraction: float = 0.25,
    epsilon: float = 1.0,
    metadata: Optional[Dict[str, object]] = None,
) -> CrowdDataset:
    """Build a :class:`CrowdDataset` by simulating the initial answer collection.

    ``answers_per_task`` workers are sampled (by activity) for every row and
    each answers every cell of that row — one HIT per row, exactly the HIT
    structure used for the paper's AMT collection.  ``noise_fraction``
    expresses the continuous-answer noise scale as a multiple of each
    column's ground-truth standard deviation.
    """
    require_positive(answers_per_task, "answers_per_task")
    require_positive(average_difficulty, "average_difficulty")
    if answers_per_task > len(pool):
        raise ConfigurationError(
            f"answers_per_task ({answers_per_task}) cannot exceed the pool size "
            f"({len(pool)})"
        )
    rng = as_generator(seed)
    row_difficulty = draw_difficulties(schema.num_rows, rng, difficulty_sigma)
    column_difficulty = draw_difficulties(schema.num_columns, rng, difficulty_sigma)
    # Spread the requested average difficulty over the row/column factors.
    scale = np.sqrt(average_difficulty)
    row_difficulty = row_difficulty * scale
    column_difficulty = column_difficulty * scale

    column_noise_scale = np.ones(schema.num_columns)
    for j in schema.continuous_indices:
        truths = np.array(
            [float(ground_truth[(i, j)]) for i in range(schema.num_rows)]
        )
        spread = float(np.std(truths))
        if spread <= 1e-9:
            column = schema.columns[j]
            spread = (column.domain[1] - column.domain[0]) / 4.0 if column.domain else 1.0
        column_noise_scale[j] = noise_fraction * spread

    oracle = AnswerOracle(
        schema=schema,
        ground_truth=dict(ground_truth),
        pool=pool,
        row_difficulty=row_difficulty,
        column_difficulty=column_difficulty,
        column_noise_scale=column_noise_scale,
        epsilon=epsilon,
        row_familiarity_sigma=row_familiarity_sigma,
        row_confusion_probability=row_confusion_probability,
        row_confusion_multiplier=row_confusion_multiplier,
        row_shift_sigma=row_shift_sigma,
        bias_fraction=bias_fraction,
        seed=int(rng.integers(0, 2**31 - 1)),
    )

    answers = AnswerSet(schema)
    worker_ids = np.array(pool.worker_ids())
    activities = pool.activities()
    for row in range(schema.num_rows):
        assigned = rng.choice(
            worker_ids, size=answers_per_task, replace=False, p=activities
        )
        for worker_id in assigned:
            for col in range(schema.num_columns):
                value = oracle.answer(str(worker_id), row, col, rng)
                answers.add_answer(str(worker_id), row, col, value)

    info = {
        "answers_per_task": answers_per_task,
        "average_difficulty": average_difficulty,
        "noise_fraction": noise_fraction,
        "row_familiarity_sigma": row_familiarity_sigma,
    }
    if metadata:
        info.update(metadata)
    return CrowdDataset(
        name=name,
        schema=schema,
        ground_truth=dict(ground_truth),
        answers=answers,
        oracle=oracle,
        worker_pool=pool,
        metadata=info,
    )


def generate_synthetic(
    num_rows: int = 50,
    num_columns: int = 10,
    categorical_ratio: float = 0.5,
    average_difficulty: float = 1.0,
    answers_per_task: int = 5,
    num_workers: int = 60,
    continuous_domain: Tuple[float, float] = (0.0, 1000.0),
    label_count_range: Tuple[int, int] = (2, 10),
    seed=None,
    pool: Optional[WorkerPool] = None,
    **build_kwargs,
) -> CrowdDataset:
    """Generate a synthetic dataset following Section 6.5.1.

    ``categorical_ratio`` is the fraction of categorical columns (the paper's
    ``R``); categorical label-set sizes are drawn uniformly from
    ``label_count_range``; continuous columns span ``continuous_domain``;
    ground truths are drawn uniformly at random from the column domain.
    """
    require_positive(num_rows, "num_rows")
    require_positive(num_columns, "num_columns")
    require_in_range(categorical_ratio, 0.0, 1.0, "categorical_ratio")
    rng = as_generator(seed)

    num_categorical = int(round(categorical_ratio * num_columns))
    columns = []
    for j in range(num_columns):
        if j < num_categorical:
            label_count = int(rng.integers(label_count_range[0], label_count_range[1] + 1))
            labels = tuple(f"label_{j}_{z}" for z in range(label_count))
            columns.append(Column.categorical(f"cat_{j}", labels))
        else:
            columns.append(Column.continuous(f"num_{j}", continuous_domain))
    schema = TableSchema.build("entity", columns, num_rows)

    ground_truth: Dict[Tuple[int, int], object] = {}
    for i in range(num_rows):
        for j, column in enumerate(schema.columns):
            if column.is_categorical:
                ground_truth[(i, j)] = column.labels[int(rng.integers(column.num_labels))]
            else:
                low, high = column.domain
                ground_truth[(i, j)] = float(rng.uniform(low, high))

    if pool is None:
        pool = WorkerPool.generate(num_workers, seed=rng)
    return build_dataset(
        name=(
            f"synthetic(M={num_columns}, R={categorical_ratio:.2f}, "
            f"difficulty={average_difficulty:.2f})"
        ),
        schema=schema,
        ground_truth=ground_truth,
        pool=pool,
        answers_per_task=answers_per_task,
        seed=rng,
        average_difficulty=average_difficulty,
        metadata={"kind": "synthetic", "categorical_ratio": categorical_ratio},
        **build_kwargs,
    )
