"""Simulated Celebrity dataset (Table 6 of the paper).

The original Celebrity dataset asks AMT workers, given a celebrity's picture,
for the name, nationality, ethnicity (categorical) and age, height,
notability, facial expression (continuous) of the person; 174 entities, 7
attributes, 5 answers per task.  We cannot redistribute or re-collect the AMT
answers, so :func:`load_celebrity` synthesises a dataset with the same shape,
datatype mix and answer redundancy, a relatively *easy* worker pool (the
paper reports error rates around 5%), and row-wise familiarity effects (a
worker who does not recognise a celebrity is unreliable on the whole row —
the paper's motivating example for structure-aware assignment).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.schema import Column, TableSchema
from repro.datasets.base import CrowdDataset
from repro.datasets.synthetic import build_dataset
from repro.datasets.workers import WorkerPool
from repro.utils.rng import as_generator

#: Table 6 statistics.
NUM_ROWS = 174
ANSWERS_PER_TASK = 5
NUM_WORKERS = 60

_NATIONALITIES = (
    "United States", "China", "Great Britain", "Canada", "France",
    "Germany", "India", "Japan", "Australia", "Brazil", "Italy", "Spain",
)
_ETHNICITIES = (
    "Asian", "Black", "Hispanic", "Middle Eastern", "South Asian", "White",
)
_NUM_NAMES = 60


def celebrity_schema(num_rows: int = NUM_ROWS) -> TableSchema:
    """Schema of the Celebrity table (3 categorical + 4 continuous columns)."""
    names = tuple(f"Celebrity {index:02d}" for index in range(_NUM_NAMES))
    columns = (
        Column.categorical("name", names),
        Column.categorical("nationality", _NATIONALITIES),
        Column.categorical("ethnicity", _ETHNICITIES),
        Column.continuous("age", (18.0, 80.0)),
        Column.continuous("height", (150.0, 200.0)),
        Column.continuous("notability", (0.0, 100.0)),
        Column.continuous("facial", (0.0, 100.0)),
    )
    return TableSchema.build("picture", columns, num_rows)


def load_celebrity(
    seed=7,
    answers_per_task: int = ANSWERS_PER_TASK,
    num_workers: int = NUM_WORKERS,
    num_rows: int = NUM_ROWS,
) -> CrowdDataset:
    """Build the simulated Celebrity dataset (174 x 7 cells, 5 answers/task).

    ``num_rows`` can be reduced for quick experiment / test runs.
    """
    rng = as_generator(seed)
    schema = celebrity_schema(num_rows)
    ground_truth: Dict[Tuple[int, int], object] = {}
    for i in range(schema.num_rows):
        for j, column in enumerate(schema.columns):
            if column.is_categorical:
                ground_truth[(i, j)] = column.labels[int(rng.integers(column.num_labels))]
            else:
                low, high = column.domain
                ground_truth[(i, j)] = float(rng.uniform(low, high))
    # Relatively competent crowd: the paper reports ~4-6% error rates here.
    pool = WorkerPool.generate(
        num_workers,
        seed=rng,
        median_variance=0.6,
        variance_spread=1.1,
        spammer_fraction=0.08,
        spammer_contamination=0.55,
        base_contamination=0.02,
    )
    return build_dataset(
        name="Celebrity",
        schema=schema,
        ground_truth=ground_truth,
        pool=pool,
        answers_per_task=answers_per_task,
        seed=rng,
        average_difficulty=1.0,
        difficulty_sigma=0.3,
        row_familiarity_sigma=0.3,
        row_confusion_probability=0.08,
        row_confusion_multiplier=6.0,
        row_shift_sigma=0.4,
        noise_fraction=1.1,
        metadata={"kind": "simulated-real", "paper_table": "Table 6"},
    )
