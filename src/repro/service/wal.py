"""Durable crowd sessions: write-ahead answer log + engine-state snapshots.

A live serving session must survive its process.  The durability model is
the classic pair:

* **Write-ahead log** — one record per session *event*, appended (and
  flushed) before the event is applied to the in-memory engine.  Four
  event types exist: ``answers`` (a batch of collected answers,
  optionally followed by a model ``observe``), ``select`` (a task
  request — logged because selects can trigger refits, which are part of
  the warm-start EM chain), ``estimates`` (a full catch-up fit — same
  reason) and ``decision`` (the select's audit record, written *after*
  the select by the attached
  :class:`~repro.engine.provenance.DecisionRecorder` and replayed with
  hash verification on recovery).  Storage is pluggable (:mod:`repro.service.storage`): the
  JSONL backend keeps rotated ``wal-<first_record>.jsonl`` segments, the
  SQLite backend one ``durable.sqlite3`` database.  A torn final write
  (process killed mid-append) is detected and dropped on recovery.

* **Snapshots** — periodic engine-state records keyed by
  ``(epoch, answers_seen)``: the serialized
  :class:`~repro.core.inference.InferenceResult` of the latest refit, the
  answer prefix it was fitted on, and the WAL position they cover.
  Snapshots are written atomically.  Because a format-2 snapshot carries
  its whole answer prefix, it is *standalone* — the WAL records it covers
  are no longer needed for recovery, which is what makes segment GC safe
  (format-1 snapshots carried only the model and pin the full log).

**Bounded disk.**  With ``keep_snapshots`` set, every snapshot cut prunes
the store down to the newest ``keep_snapshots`` snapshots and then asks
the backend to drop WAL storage below the *oldest retained* snapshot's
cover (only if every retained snapshot is standalone).  Record indexes
stay global across pruning, so ``discard_lost_timeline`` still composes:
a crash that loses the log tail discards exactly the snapshots past the
surviving global count, and a pruned timeline can never be resurrected.

**Replay is bit-identical.**  Everything the engine does is a
deterministic function of the event sequence: answers are append-only,
refits are deterministic EM (warm-started from the previous result), and
selection is a deterministic ranking.  Recovery therefore rebuilds the
exact session: the :class:`~repro.engine.SessionState` /
:class:`~repro.engine.ShardedSessionState` indexes (re-synced from the
recovered answers), the answer set, and the model's warm-start chain —
either by re-seating a snapshot's serialized result
(:func:`serialize_result` round-trips every float exactly) and replaying
the WAL tail with full side effects, or by replaying the whole log.  The
continued assignment sequence matches an uninterrupted run bit for bit —
the property ``benchmarks/run_bench.py --serve`` records as
``recovery_identical`` and CI gates on.  (The guarantee assumes a
deterministic serving mode: the synchronous/sharded policies, or the
async ones at ``max_stale_answers=0``.  With a positive staleness bound,
background refit *timing* is nondeterministic, so replay reproduces a
valid execution of the same session rather than the exact one observed.)

Snapshot-epoch protocol: epochs increase by one per snapshot and never
reuse a number, so ``snapshot-<epoch>-<answers_seen>.json`` names are
totally ordered and immutable once written — the same property that lets
:class:`~repro.engine.ModelSnapshot` cross thread boundaries lets these
files cross *process* boundaries, which is the staging ground for
process-level sharding (one recovered engine per shard group).
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.answers import AnswerSet
from repro.core.codec import (  # noqa: F401  (re-exported compat surface)
    deserialize_result,
    serialize_result,
)
from repro.core.inference import InferenceResult
from repro.core.schema import TableSchema
from repro.service.storage import (  # noqa: F401  (re-exported compat surface)
    Snapshot,
    SnapshotStore,
    SqliteBackend,
    StorageBackend,
    WriteAheadLog,
    create_backend,
    read_wal,
)
from repro.utils.exceptions import (
    AssignmentError,
    ConfigurationError,
    DurabilityError,
)

Cell = Tuple[int, int]

#: Bump when the WAL / snapshot record layout changes incompatibly.
#: Format 2 adds the answer prefix to snapshot payloads (making them
#: standalone, the precondition for WAL segment GC); format-1 snapshots
#: are still recovered, but only while the full log prefix survives.
FORMAT_VERSION = 2


# The model-state codec (serialize_result / deserialize_result) lives in
# :mod:`repro.core.codec` now, re-exported above unchanged.


# -- durable session ----------------------------------------------------------


class DurableSession:
    """An answer set + serving policy behind a write-ahead log.

    All session mutations go through this wrapper: events are logged
    *before* they are applied (WAL discipline), and a snapshot of the
    engine state is cut every ``snapshot_every`` answers.  Constructing a
    session over a directory that already holds a log **recovers** it:
    the newest usable snapshot is re-seated into the (freshly built,
    identically configured) ``policy`` and the WAL tail is replayed with
    full side effects; without a usable snapshot the whole log replays.

    Parameters
    ----------
    schema:
        Table schema of the session.
    policy:
        The serving policy.  Bit-identical recovery requires a
        deterministic policy (see the module docs); snapshot acceleration
        additionally requires the ``snapshot_state`` / ``restore_state``
        protocol (all T-Crowd serving modes implement it).
    directory:
        Where the log and snapshots live.  ``None`` runs fully in memory —
        the same code path with durability disabled, which is how the
        non-durable HTTP sessions are served.
    snapshot_every:
        Cut a snapshot after this many newly collected answers.
    fsync:
        Force every append (and snapshot) to disk — power-loss
        durability; the default flush-only mode survives process crashes.
    fresh:
        Refuse to attach to a directory that already holds a log (used by
        the platform simulator, where silently resuming a previous run
        would corrupt the experiment).
    backend:
        Storage backend name (``"jsonl"`` or ``"sqlite"``, see
        :mod:`repro.service.storage`).
    rotate_every_records:
        JSONL backend: seal the active WAL segment after this many
        records and open a new one.  ``None`` keeps the historical single
        ``wal.jsonl``.  Ignored by the SQLite backend.
    keep_snapshots:
        Retain only the newest N snapshots; after each prune, WAL storage
        fully covered by the oldest *retained* snapshot is dropped.
        ``None`` (the default) retains everything, exactly as before.
    """

    def __init__(
        self,
        schema: TableSchema,
        policy,
        directory=None,
        snapshot_every: int = 200,
        fsync: bool = False,
        fresh: bool = False,
        backend: str = "jsonl",
        rotate_every_records: Optional[int] = None,
        keep_snapshots: Optional[int] = None,
    ) -> None:
        if snapshot_every < 1:
            raise ConfigurationError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        if keep_snapshots is not None and keep_snapshots < 1:
            raise ConfigurationError(
                f"keep_snapshots must be >= 1, got {keep_snapshots}"
            )
        self.schema = schema
        self.policy = policy
        self.snapshot_every = int(snapshot_every)
        self.keep_snapshots = keep_snapshots
        self.answers = AnswerSet(schema)
        #: The policy's :class:`~repro.engine.provenance.DecisionRecorder`
        #: (None when auditing is off).  Live records are persisted through
        #: :meth:`_log_decision`; recovery replays them with verification.
        self.recorder = getattr(policy, "recorder", None)
        if self.recorder is not None:
            self.recorder.sink = self._log_decision
        self.replayed_records = 0
        self.recovered_epoch: Optional[int] = None
        self.snapshots_written = 0
        self._snapshot_epoch = 0
        self._answers_at_last_snapshot = 0
        self._storage: Optional[StorageBackend] = None
        if directory is not None:
            directory = pathlib.Path(directory)
            self._storage = create_backend(
                directory,
                backend=backend,
                fsync=fsync,
                rotate_every_records=rotate_every_records,
            )
            if self._storage.record_count:
                if fresh:
                    self._storage.close()
                    raise ConfigurationError(
                        f"durable directory {directory} already holds a "
                        f"write-ahead log with {self._storage.record_count} "
                        "records; recover it with DurableSession(...) on a "
                        "fresh policy instead of starting a new run over it"
                    )
                self._recover()

    # -- properties ----------------------------------------------------------

    @property
    def durable(self) -> bool:
        """True when events are being logged to disk."""
        return self._storage is not None

    @property
    def wal_records(self) -> int:
        """Global record count of the log, pruned prefix included."""
        return self._storage.record_count if self._storage is not None else 0

    @property
    def wal_segments(self) -> int:
        """On-disk log pieces (0 when in-memory; always 1 for SQLite)."""
        return self._storage.segment_count if self._storage is not None else 0

    @property
    def snapshots_retained(self) -> int:
        """Snapshots currently on disk (after any GC)."""
        return self._storage.snapshot_count if self._storage is not None else 0

    @property
    def backend_name(self) -> Optional[str]:
        """Name of the storage backend (``None`` when in-memory)."""
        return self._storage.name if self._storage is not None else None

    @property
    def events(self) -> List[dict]:
        """Copy of the *surviving* logged events, oldest first.

        Empty when in-memory; with GC enabled the pruned prefix is gone,
        so this starts at the backend's ``first_record_index``.
        """
        return self._storage.records() if self._storage is not None else []

    def loop_decisions(self) -> List[Tuple[str, Tuple[Cell, ...]]]:
        """The logged assignment outcomes ``(worker, cells)``, oldest first.

        Reconstructed from the surviving ``answers`` events with
        ``observe=True`` (each one is the collected batch of exactly one
        assignment), so a recovery driver can compare the prefix a crashed
        process completed against an uninterrupted run.
        """
        if self._storage is None:
            return []
        decisions = []
        for record in self._storage.records():
            if record.get("t") == "answers" and record.get("o", True):
                cells = tuple(
                    (int(row), int(col)) for row, col, _value in record["a"]
                )
                decisions.append((record["w"], cells))
        return decisions

    def dangling_select(self) -> Optional[Tuple[str, int]]:
        """``(worker, k)`` if the log ends in a select whose batch was lost.

        A crash between logging a select and logging its collected answers
        leaves this marker; the recovery driver re-issues the select (the
        replayed refit made it deterministic) instead of drawing a new
        worker.
        """
        if self._storage is None:
            return None
        last = self._storage.last_record
        if last is not None and last.get("t") in ("select", "decision"):
            # A trailing ``decision`` record dangles the same way: its
            # select's answer batch never made it to the log.
            return last["w"], int(last["k"])
        return None

    # -- recovery -------------------------------------------------------------

    def _recover(self) -> None:
        storage = self._storage
        total = storage.record_count
        first = storage.first_record_index
        # Epochs are never reused, even when the files carrying the
        # highest ones came from a timeline the crash lost; only after
        # fixing the counter are those stranded snapshots deleted (they
        # could otherwise be picked by a *later* recovery once the
        # regrown log passes their record count).
        self._snapshot_epoch = storage.next_epoch()
        storage.discard_lost_timeline(total)
        records = storage.records()
        latest = storage.latest_snapshot(max_wal_records=total)
        if latest is not None:
            self._answers_at_last_snapshot = latest.answers_seen
        snapshot = self._usable_snapshot(total, first)
        start = first
        if self.recorder is not None:
            self.recorder.begin_replay()
        try:
            if snapshot is not None:
                self._restore_snapshot(snapshot, records, first)
                start = snapshot.wal_records
            elif first > 0:
                raise DurabilityError(
                    f"the WAL prefix below record {first} was pruned but no "
                    "retained snapshot is standalone (model + answer prefix); "
                    "the durable directory cannot be recovered"
                )
            for record in records[start - first:]:
                self._apply(record)
        finally:
            if self.recorder is not None:
                self.recorder.end_replay()
        self.replayed_records = total - start

    def _usable_snapshot(self, total: int, first: int) -> Optional[Snapshot]:
        """Newest snapshot the recovery fast path can actually start from.

        Needs the serialized model (and a policy that can re-seat it) plus
        a way to rebuild the answer prefix: either the payload carries the
        answers (format 2) or the full log prefix survives on disk.
        """
        if not hasattr(self.policy, "restore_state"):
            return None
        for epoch in reversed(self._storage.snapshot_epochs()):
            snapshot = self._storage.load_snapshot(epoch)
            if snapshot is None:
                continue
            if snapshot.wal_records > total:
                continue
            if snapshot.payload.get("model") is None:
                continue
            if snapshot.payload.get("answers") is None and first > 0:
                continue  # prefix-scan fallback impossible: records pruned
            return snapshot
        return None

    def _restore_snapshot(
        self, snapshot: Snapshot, records: List[dict], first: int
    ) -> None:
        """Re-seat one snapshot: answer prefix without side effects + model."""
        answers = snapshot.payload.get("answers")
        if answers is not None:
            for worker, row, col, value in answers:
                self.answers.add_answer(worker, int(row), int(col), value)
        else:
            for record in records[: snapshot.wal_records - first]:
                if record.get("t") == "answers":
                    self._add_answers(record)
        if len(self.answers) != snapshot.answers_seen:
            raise DurabilityError(
                f"snapshot epoch {snapshot.epoch} covers "
                f"{snapshot.answers_seen} answers but its recovered prefix "
                f"({snapshot.wal_records} records) holds "
                f"{len(self.answers)}; the durable directory is inconsistent"
            )
        model = snapshot.payload["model"]
        result = deserialize_result(model["result"], self.schema)
        self.policy.restore_state(result, int(model["answers_seen"]))
        audit = snapshot.payload.get("audit")
        if self.recorder is not None and audit:
            self.recorder.restore(audit)
        self.recovered_epoch = snapshot.epoch
        self._answers_at_last_snapshot = snapshot.answers_seen

    def _add_answers(self, record: dict) -> None:
        for row, col, value in record["a"]:
            self.answers.add_answer(record["w"], int(row), int(col), value)

    def _apply(self, record: dict) -> None:
        """Re-execute one logged event with full side effects."""
        kind = record.get("t")
        if kind == "answers":
            self._add_answers(record)
            if record.get("o", True):
                self.policy.observe(self.answers)
        elif kind == "select":
            try:
                self.policy.select(record["w"], self.answers, int(record["k"]))
            except AssignmentError:
                pass  # the live call failed too; the refit side effect stands
        elif kind == "estimates":
            if len(self.answers):
                self.policy.final_result(self.answers)
        elif kind == "decision":
            # Audit record: restore it verbatim, verifying it against the
            # record the preceding replayed select just recomputed.
            if self.recorder is not None:
                self.recorder.apply_logged(record["d"])
        # Unknown record types are skipped (forward compatibility).

    # -- session events -------------------------------------------------------

    def _log_decision(self, record) -> None:
        """Persist one live audit record (the recorder's ``sink``).

        Rides the WAL as ``{"t": "decision", "w": ..., "k": ..., "d":
        <record dict>}`` — ``w``/``k`` duplicated at the top level so
        :meth:`dangling_select` can re-issue a select whose answers were
        lost even when the trailing record is the decision, not the
        select.  In-memory sessions keep the recorder but skip the log.
        """
        if self._storage is not None:
            self._storage.append({
                "t": "decision",
                "w": record.worker,
                "k": int(record.k),
                "d": record.to_dict(),
            })

    def select(self, worker: str, k: int = 1):
        """Log and run one assignment request."""
        if self._storage is not None:
            self._storage.append({"t": "select", "w": worker, "k": int(k)})
        return self.policy.select(worker, self.answers, k)

    def append_answers(
        self, worker: str, items: Sequence[Tuple[int, int, object]],
        observe: bool = True,
    ) -> int:
        """Log and ingest one batch of collected answers.

        ``items`` is a sequence of ``(row, col, value)``.  The batch is
        validated against the schema *before* it is logged, so a malformed
        request can never poison the log.  Returns the new answer count.
        """
        items = [(int(row), int(col), value) for row, col, value in items]
        for row, col, value in items:
            self.schema.validate_cell(row, col)
            self.schema.validate_value(col, value)
        if self._storage is not None:
            record = {"t": "answers", "w": worker, "a": [list(i) for i in items]}
            if not observe:
                record["o"] = False
            self._storage.append(record)
        for row, col, value in items:
            self.answers.add_answer(worker, row, col, value)
        if observe:
            self.policy.observe(self.answers)
        self.maybe_snapshot()
        return len(self.answers)

    def estimates(self) -> InferenceResult:
        """Log and run a full catch-up fit; return its result."""
        if len(self.answers) == 0:
            raise ConfigurationError(
                "Cannot estimate truths before any answer was collected"
            )
        if not hasattr(self.policy, "final_result"):
            raise ConfigurationError(
                f"policy {type(self.policy).__name__} does not support "
                "estimate requests (no final_result method)"
            )
        if self._storage is not None:
            self._storage.append({"t": "estimates"})
        return self.policy.final_result(self.answers)

    # -- snapshots ------------------------------------------------------------

    def maybe_snapshot(self) -> Optional[bool]:
        """Cut a snapshot if ``snapshot_every`` answers arrived since the last."""
        if self._storage is None:
            return None
        if len(self.answers) - self._answers_at_last_snapshot < self.snapshot_every:
            return None
        return self.snapshot()

    def snapshot(self) -> Optional[bool]:
        """Cut one engine-state snapshot now (no-op when in-memory).

        The payload carries the serialized model *and* the full answer
        prefix (format 2), so the snapshot recovers standalone; with
        ``keep_snapshots`` set, older snapshots are pruned afterwards and
        WAL storage below the oldest retained snapshot's cover is dropped.
        """
        if self._storage is None:
            return None
        state = None
        if hasattr(self.policy, "snapshot_state"):
            state = self.policy.snapshot_state()
        model = None
        if state is not None:
            result, answers_seen = state
            model = {
                "answers_seen": int(answers_seen),
                "result": serialize_result(result),
            }
        payload = {
            "format": FORMAT_VERSION,
            "epoch": self._snapshot_epoch,
            "answers_seen": len(self.answers),
            "wal_records": self._storage.record_count,
            "answers": [
                [answer.worker, int(answer.row), int(answer.col), answer.value]
                for answer in self.answers
            ],
            "model": model,
            # Full audit history rides every snapshot, so the decision
            # chain survives WAL segment GC exactly like the answer prefix
            # (a retained snapshot is standalone, audit included).
            "audit": None if self.recorder is None else self.recorder.state(),
        }
        self._storage.save_snapshot(payload)
        self._snapshot_epoch += 1
        self._answers_at_last_snapshot = len(self.answers)
        self.snapshots_written += 1
        self._collect_garbage()
        return True

    def _collect_garbage(self) -> None:
        """Prune snapshots past ``keep_snapshots``, then covered WAL storage."""
        if self.keep_snapshots is None:
            return
        self._storage.prune_snapshots(self.keep_snapshots)
        cover = self._storage.gc_cover()
        if cover:
            self._storage.truncate_before(cover)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Cut a final snapshot, close the log, release policy threads."""
        if self._storage is not None and not self._storage.closed:
            if len(self.answers) > self._answers_at_last_snapshot:
                self.snapshot()
            self._storage.close()
        close = getattr(self.policy, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "DurableSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- introspection ------------------------------------------------------------


def durable_summary(directory) -> Dict[str, object]:
    """Cheap, read-only summary of a durable directory (tests/inspection).

    Works for both backends without mutating anything: JSONL segments are
    scanned with :func:`read_wal` (no truncation), a SQLite database is
    opened in place (opening never writes records).
    """
    directory = pathlib.Path(directory)
    database = directory / SqliteBackend.FILENAME
    if database.exists():
        backend = SqliteBackend(directory)
        try:
            records = backend.records()
            wal_records = backend.record_count
            wal_segments = 1
            wal_bytes = database.stat().st_size
            snapshot = backend.latest_snapshot(max_wal_records=wal_records)
            snapshots = backend.snapshot_count
        finally:
            backend.close()
    else:
        segments = []
        legacy = directory / "wal.jsonl"
        if legacy.exists():
            segments.append((0, legacy))
        if directory.exists():
            for path in directory.iterdir():
                if path.name.startswith("wal-") and path.suffix == ".jsonl":
                    try:
                        segments.append((int(path.name[4:-6]), path))
                    except ValueError:
                        continue
        segments.sort(key=lambda item: item[0])
        records = []
        wal_bytes = 0
        for _first, path in segments:
            part, valid_bytes = read_wal(path)
            records.extend(part)
            wal_bytes += valid_bytes
        wal_records = (segments[-1][0] + len(part)) if segments else 0
        wal_segments = len(segments)
        store = SnapshotStore(directory / "snapshots")
        snapshot = store.latest(max_wal_records=wal_records)
        snapshots = len(store.paths())
    answers = sum(len(r["a"]) for r in records if r.get("t") == "answers")
    return {
        "wal_records": wal_records,
        "wal_bytes": wal_bytes,
        "wal_segments": wal_segments,
        "answers_logged": answers,
        "snapshots": snapshots,
        "latest_snapshot_epoch": None if snapshot is None else snapshot.epoch,
        "latest_snapshot_answers_seen": (
            None if snapshot is None else snapshot.answers_seen
        ),
    }
