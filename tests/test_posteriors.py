"""Unit and property tests for the truth posteriors (repro.core.posteriors)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.posteriors import CategoricalPosterior, GaussianPosterior
from repro.utils.exceptions import ConfigurationError


class TestGaussianPosterior:
    def test_point_estimate_is_mean(self):
        posterior = GaussianPosterior(3.0, 2.0)
        assert posterior.point_estimate() == 3.0
        assert not posterior.is_categorical

    def test_entropy_formula(self):
        posterior = GaussianPosterior(0.0, 1.0)
        assert posterior.entropy() == pytest.approx(0.5 * np.log(2 * np.pi * np.e))

    def test_entropy_increases_with_variance(self):
        assert GaussianPosterior(0, 4.0).entropy() > GaussianPosterior(0, 1.0).entropy()

    def test_nonpositive_variance_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussianPosterior(0.0, 0.0)

    def test_update_reduces_variance(self):
        posterior = GaussianPosterior(0.0, 4.0)
        updated = posterior.updated_with_answer(2.0, 1.0)
        assert updated.variance < posterior.variance
        assert 0.0 < updated.mean < 2.0

    def test_update_matches_precision_weighting(self):
        posterior = GaussianPosterior(0.0, 1.0)
        updated = posterior.updated_with_answer(10.0, 1.0)
        assert updated.mean == pytest.approx(5.0)
        assert updated.variance == pytest.approx(0.5)

    def test_updated_variance_is_value_independent(self):
        posterior = GaussianPosterior(0.0, 4.0)
        expected = posterior.updated_variance(1.0)
        for value in (-5.0, 0.0, 7.0):
            assert posterior.updated_with_answer(value, 1.0).variance == pytest.approx(expected)

    def test_update_requires_positive_answer_variance(self):
        with pytest.raises(ConfigurationError):
            GaussianPosterior(0.0, 1.0).updated_with_answer(1.0, 0.0)

    def test_predictive_variance(self):
        posterior = GaussianPosterior(0.0, 2.0)
        assert posterior.predictive_variance(3.0) == pytest.approx(5.0)

    def test_scaled(self):
        posterior = GaussianPosterior(1.0, 2.0)
        scaled = posterior.scaled(10.0, 5.0)
        assert scaled.mean == pytest.approx(15.0)
        assert scaled.variance == pytest.approx(200.0)

    @given(
        st.floats(-100, 100), st.floats(0.01, 100),
        st.floats(-100, 100), st.floats(0.01, 100),
    )
    @settings(max_examples=50)
    def test_update_never_increases_variance(self, mean, var, value, answer_var):
        posterior = GaussianPosterior(mean, var)
        updated = posterior.updated_with_answer(value, answer_var)
        assert updated.variance <= posterior.variance + 1e-12

    @given(st.floats(0.01, 50), st.floats(0.01, 50))
    @settings(max_examples=50)
    def test_information_gain_is_positive(self, var, answer_var):
        posterior = GaussianPosterior(0.0, var)
        updated_var = posterior.updated_variance(answer_var)
        assert 0.5 * np.log(var / updated_var) > 0


class TestCategoricalPosterior:
    def test_uniform(self):
        posterior = CategoricalPosterior.uniform(("a", "b", "c", "d"))
        assert posterior.is_categorical
        assert posterior.num_labels == 4
        assert np.allclose(posterior.probs, 0.25)
        assert posterior.entropy() == pytest.approx(np.log(4))

    def test_probs_normalised(self):
        posterior = CategoricalPosterior(("a", "b"), np.array([2.0, 6.0]))
        assert posterior.probs.sum() == pytest.approx(1.0)
        assert posterior.prob_of("b") == pytest.approx(0.75)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            CategoricalPosterior(("a", "b"), np.array([1.0, 2.0, 3.0]))

    def test_zero_mass_rejected(self):
        with pytest.raises(ConfigurationError):
            CategoricalPosterior(("a", "b"), np.array([0.0, 0.0]))

    def test_point_estimate_is_argmax(self):
        posterior = CategoricalPosterior(("a", "b", "c"), np.array([0.1, 0.7, 0.2]))
        assert posterior.point_estimate() == "b"

    def test_update_moves_mass_toward_answer(self):
        posterior = CategoricalPosterior.uniform(("a", "b", "c"))
        updated = posterior.updated_with_answer(1, quality=0.9)
        assert updated.point_estimate() == "b"
        assert updated.prob_of("b") > posterior.prob_of("b")

    def test_update_with_poor_quality_barely_moves(self):
        posterior = CategoricalPosterior.uniform(("a", "b", "c"))
        # quality equal to chance level (1/3) carries no information.
        updated = posterior.updated_with_answer(0, quality=1.0 / 3.0)
        assert np.allclose(updated.probs, posterior.probs, atol=1e-9)

    def test_update_out_of_range_label(self):
        posterior = CategoricalPosterior.uniform(("a", "b"))
        with pytest.raises(ConfigurationError):
            posterior.updated_with_answer(5, quality=0.8)

    def test_predictive_answer_probs_sum_to_one(self):
        posterior = CategoricalPosterior(("a", "b", "c"), np.array([0.5, 0.3, 0.2]))
        probs = posterior.predictive_answer_probs(0.8)
        assert probs.sum() == pytest.approx(1.0)
        assert probs[0] > probs[2]

    def test_entropy_zero_for_certain_posterior(self):
        posterior = CategoricalPosterior(("a", "b"), np.array([1.0, 1e-15]))
        assert posterior.entropy() == pytest.approx(0.0, abs=1e-6)

    @given(
        st.integers(min_value=2, max_value=8),
        st.floats(0.05, 0.95),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=60)
    def test_update_keeps_valid_distribution(self, num_labels, quality, label):
        label = label % num_labels
        labels = tuple(f"l{i}" for i in range(num_labels))
        posterior = CategoricalPosterior.uniform(labels)
        updated = posterior.updated_with_answer(label, quality)
        assert updated.probs.shape == (num_labels,)
        assert updated.probs.sum() == pytest.approx(1.0)
        assert np.all(updated.probs >= 0)

    @given(st.integers(min_value=2, max_value=8), st.floats(0.5, 0.99))
    @settings(max_examples=40)
    def test_confident_answer_reduces_entropy(self, num_labels, quality):
        labels = tuple(f"l{i}" for i in range(num_labels))
        posterior = CategoricalPosterior.uniform(labels)
        updated = posterior.updated_with_answer(0, quality)
        if quality > 1.0 / num_labels + 0.01:
            assert updated.entropy() < posterior.entropy() + 1e-9
