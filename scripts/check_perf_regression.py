"""CI perf-regression gate over the engine benchmark.

Compares a fresh ``benchmarks/run_bench.py --smoke`` result against the
committed smoke-tier baseline (``BENCH_engine.json``, recorded with
``--profile --scale``) and fails the build when either

* an equivalence bit flipped — ``identical_assignments`` (exact engine path
  vs seed path), ``identical_assignments_sharded`` (partitioned top-K vs
  seed path), ``identical_assignments_async`` (async serving path at
  ``max_stale_answers=0`` vs seed path),
  ``identical_assignments_sharded_async`` (the composed sharded+async
  policy), ``identical_assignments_multiprocess`` (the process-level
  shard-worker coordinator vs seed path),
  ``identical_estimates_sharded_async`` (the composed equivalence
  run's *final truth estimates* match the seed path's exactly — the check
  that would catch a stale scoring-cache hit), ``recovery_identical``
  (WAL+snapshot crash recovery replays the session bit for bit) or
  ``audit_replay_identical`` (replaying the WAL re-derives the recorded
  decision ledger hash for hash) or ``strategy_default_identical``
  (pinning ``policy.strategy = "paper"`` reproduces the default spec's
  assignment sequence and decision-chain head across every serving mode)
  is false, which is a correctness regression, never noise; or
* the strategy zoo's quality ordering flipped —
  ``strategy_paper_dominates_clean`` must stay true: the paper's
  gain-based selector beats the ``random`` and ``round_robin`` baselines
  on the clean scenario of the answers-to-quality benchmark
  (``benchmarks/strategy_bench.py``; every session seeded, so this is
  deterministic, never runner noise); or
* decision recording became too expensive — ``audit_overhead_ratio``
  (relative wall-clock cost of the audit recorder on the scripted
  scenario) must stay below 10 %; or
* baseline and candidate disagree on the best-of-N repeat count
  (``repeats``) — the speedup floors only compare like with like when both
  runs used the same wall-clock estimator; or
* the HTTP serving throughput (``serve_requests_per_sec``) of the smoke
  run dropped below ``baseline * serve-headroom`` — the smoke server
  serves a *smaller* table than the baseline run, so a smoke run slower
  than a generous fraction of the committed baseline means the service
  layer itself regressed; or
* the engine-path speedup of the smoke run dropped below a floor derived
  from the committed baseline: ``floor = baseline_speedup * headroom``.
  The headroom (default 0.35) absorbs shared-runner jitter — the committed
  baseline is itself a smoke-tier run (best-of-N wall clock, see
  ``run_bench.py --repeats``), so baseline and candidate measure the same
  scenario; on a noisy single-core runner even best-of-N ratios can swing.
  An engine path that regressed to the seed path's speed (speedup ~1.0)
  still trips the floor, and the composed serving mode additionally
  carries an absolute 1.5x floor.

The baseline itself is validated too: it must be the smoke-tier reference
with the ``--scale`` tier entry (>= 10k rows) and the ``--profile``
per-stage breakdown recorded, and its ``speedup_sharded_async`` must meet
the same absolute 1.5x floor the candidate is held to.

Usage::

    python scripts/check_perf_regression.py \
        --baseline BENCH_engine.json --candidate /tmp/BENCH_engine_smoke.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load(path: pathlib.Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read benchmark JSON {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_engine.json"),
        help="committed smoke-tier baseline with --profile and --scale "
        "recorded (provides the speedup floors)",
    )
    parser.add_argument(
        "--candidate",
        type=pathlib.Path,
        required=True,
        help="freshly produced smoke JSON to check",
    )
    parser.add_argument(
        "--headroom",
        type=float,
        default=0.35,
        help="fraction of the baseline speedup the candidate must reach "
        "(absorbs runner noise; baseline and candidate are both smoke-tier)",
    )
    parser.add_argument(
        "--serve-headroom",
        type=float,
        default=0.15,
        help="fraction of the baseline serve_requests_per_sec the smoke "
        "run must reach (the smoke table is smaller, so this floor only "
        "catches outright service regressions)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    failures = []

    # The committed baseline is the smoke-tier reference (same scenario the
    # CI candidate measures, so floors compare like with like), and it must
    # carry the scaled tier and the profile breakdown: losing either in a
    # baseline refresh would silently drop the coverage they provide.
    if int(baseline.get("scale_num_rows") or 0) < 10_000:
        failures.append(
            f"baseline {args.baseline} has no --scale tier entry of >= 10k "
            "rows; regenerate it with `run_bench.py --smoke --shards 4 "
            "--async-refit --processes 2 --serve --profile --scale`"
        )
    if "profile_stages" not in baseline:
        failures.append(
            f"baseline {args.baseline} has no profile_stages breakdown; "
            "regenerate it with --profile"
        )
    if "repeats" not in baseline:
        failures.append(
            f"baseline {args.baseline} does not record its best-of-N repeat "
            "count; regenerate it with the current run_bench.py (the "
            "'repeats' key)"
        )
    if float(baseline.get("speedup_sharded_async") or 0.0) < 1.5:
        failures.append(
            "baseline speedup_sharded_async "
            f"{baseline.get('speedup_sharded_async')} is below the 1.5x "
            "floor the composed serving mode is held to"
        )

    if not candidate.get("identical_assignments", False):
        failures.append(
            "identical_assignments is false: the exact engine path no longer "
            "replays the seed path's assignment sequence"
        )
    if "identical_assignments_sharded" not in candidate:
        failures.append(
            "candidate has no identical_assignments_sharded field: the smoke "
            "run must include the sharded path (run_bench.py --shards >= 2)"
        )
    elif not candidate["identical_assignments_sharded"]:
        failures.append(
            "identical_assignments_sharded is false: the partitioned top-K "
            "merge no longer replays the seed path's assignment sequence"
        )
    if "identical_assignments_async" not in candidate:
        failures.append(
            "candidate has no identical_assignments_async field: the smoke "
            "run must include the async path (run_bench.py --async-refit)"
        )
    elif not candidate["identical_assignments_async"]:
        failures.append(
            "identical_assignments_async is false: the async serving path "
            "at max_stale_answers=0 no longer replays the seed path's "
            "assignment sequence"
        )
    if "identical_assignments_sharded_async" not in candidate:
        failures.append(
            "candidate has no identical_assignments_sharded_async field: "
            "the smoke run must include the composed path (run_bench.py "
            "--shards >= 2 --async-refit)"
        )
    elif not candidate["identical_assignments_sharded_async"]:
        failures.append(
            "identical_assignments_sharded_async is false: the composed "
            "sharded+async policy at max_stale_answers=0 no longer replays "
            "the seed path's assignment sequence"
        )
    if "identical_estimates_sharded_async" not in candidate:
        failures.append(
            "candidate has no identical_estimates_sharded_async field: the "
            "smoke run must include the composed path (run_bench.py "
            "--shards >= 2 --async-refit)"
        )
    elif not candidate["identical_estimates_sharded_async"]:
        failures.append(
            "identical_estimates_sharded_async is false: the composed "
            "sharded+async equivalence run's final truth estimates differ "
            "from the seed path's (stale snapshot or scoring-cache hit?)"
        )
    if "identical_assignments_multiprocess" not in candidate:
        failures.append(
            "candidate has no identical_assignments_multiprocess field: the "
            "smoke run must include the process-level serving path "
            "(run_bench.py --processes >= 1)"
        )
    elif not candidate["identical_assignments_multiprocess"]:
        failures.append(
            "identical_assignments_multiprocess is false: the process-level "
            "shard-worker coordinator no longer replays the seed path's "
            "assignment sequence"
        )
    if "recovery_identical" not in candidate:
        failures.append(
            "candidate has no recovery_identical field: the smoke run must "
            "include the durability check (run_bench.py --serve)"
        )
    elif not candidate["recovery_identical"]:
        failures.append(
            "recovery_identical is false: WAL+snapshot recovery no longer "
            "reproduces the uninterrupted session bit for bit"
        )
    if "audit_replay_identical" not in candidate:
        failures.append(
            "candidate has no audit_replay_identical field: the smoke run "
            "must include the decision-audit check (run_bench.py --serve)"
        )
    elif not candidate["audit_replay_identical"]:
        failures.append(
            "audit_replay_identical is false: replaying the WAL no longer "
            "re-derives the recorded decision ledger hash for hash (see "
            "audit_replay_mismatches_* in the candidate JSON)"
        )
    if "strategy_default_identical" not in candidate:
        failures.append(
            "candidate has no strategy_default_identical field: the smoke "
            "run must include the strategy-zoo gate (run_bench.py "
            "--strategies)"
        )
    elif not candidate["strategy_default_identical"]:
        failures.append(
            "strategy_default_identical is false: pinning strategy='paper' "
            "no longer reproduces the default assignment sequence / "
            "decision-chain head (see strategy_default_identical_* per "
            "serving mode)"
        )
    if "strategy_paper_dominates_clean" not in candidate:
        failures.append(
            "candidate has no strategy_paper_dominates_clean field: the "
            "smoke run must include the answers-to-quality curves "
            "(run_bench.py --strategies)"
        )
    elif not candidate["strategy_paper_dominates_clean"]:
        failures.append(
            "strategy_paper_dominates_clean is false: the paper's "
            "gain-based strategy no longer beats the random / round_robin "
            "baselines on the clean scenario (see strategy_curves)"
        )
    audit_overhead = candidate.get("audit_overhead_ratio")
    if audit_overhead is None:
        failures.append(
            "candidate has no audit_overhead_ratio field: the smoke run "
            "must measure decision-recording overhead (run_bench.py --serve)"
        )
    elif float(audit_overhead) >= 0.10:
        failures.append(
            f"audit_overhead_ratio {float(audit_overhead):.3f} is at or "
            "above the 10% ceiling: decision recording has become too "
            "expensive for the serving hot path"
        )

    base_repeats = baseline.get("repeats")
    cand_repeats = candidate.get("repeats")
    if base_repeats is not None and cand_repeats is not None:
        if int(base_repeats) != int(cand_repeats):
            failures.append(
                f"repeat-count mismatch: baseline used --repeats "
                f"{base_repeats} but candidate used --repeats "
                f"{cand_repeats}; the speedup floors assume both runs used "
                "the same best-of-N estimator"
            )
    elif base_repeats is not None:
        failures.append(
            "candidate has no repeats field: rerun it with the current "
            "run_bench.py so the gate can verify both runs used the same "
            "best-of-N repeat count"
        )

    serve_baseline = float(baseline.get("serve_requests_per_sec", 0.0))
    serve_candidate = float(candidate.get("serve_requests_per_sec", 0.0))
    if serve_baseline > 0.0:
        serve_floor = serve_baseline * args.serve_headroom
        if "serve_requests_per_sec" not in candidate:
            failures.append(
                "candidate has no serve_requests_per_sec field: the smoke "
                "run must include the serving benchmark (run_bench.py "
                "--serve)"
            )
        elif serve_candidate < serve_floor:
            failures.append(
                f"serve_requests_per_sec {serve_candidate:.1f} fell below "
                f"the floor {serve_floor:.1f} (baseline "
                f"{serve_baseline:.1f} * serve-headroom "
                f"{args.serve_headroom})"
            )
        print(
            f"serve_requests_per_sec: baseline {serve_baseline:.1f} -> "
            f"floor {serve_floor:.1f}, candidate {serve_candidate:.1f}"
        )

    floors = {}
    for field in (
        "speedup", "speedup_sharded", "speedup_async",
        "speedup_sharded_async", "speedup_multiprocess",
    ):
        if field not in baseline and field != "speedup":
            continue  # older baselines predate the sharded/async paths
        baseline_speedup = float(baseline.get(field, 0.0))
        candidate_speedup = float(candidate.get(field, 0.0))
        # Seed-relative speedups are clamped at 1.0: an engine path that is
        # no faster than the seed path is a regression outright.  The async
        # ratio is engine-relative and sits near 1.77x, so a 1.0 clamp would
        # leave it no headroom at all on a jittery smoke runner — it keeps
        # the plain baseline*headroom floor (the full-size run_bench.py
        # enforces the absolute >= 1.2x target).  The composed path is this
        # codebase's production serving mode: after the stacked-scoring +
        # scoring-cache speed pass it clears 1.5x even at smoke size, and
        # that absolute floor is the contract run_bench.py enforces at full
        # size, so the gate pins it here too.
        # ...  The multiprocess path pays IPC and WAL-replay overhead per
        # request, so at smoke size it can legitimately land below 1.0x;
        # its value is the equivalence bit plus the baseline-relative floor.
        if field == "speedup_sharded_async":
            minimum = 1.5
        elif field in ("speedup_async", "speedup_multiprocess"):
            minimum = 0.0
        else:
            minimum = 1.0
        floor = max(baseline_speedup * args.headroom, minimum)
        floors[field] = (baseline_speedup, candidate_speedup, floor)
        if candidate_speedup < floor:
            failures.append(
                f"{field} {candidate_speedup:.2f}x fell below the floor "
                f"{floor:.2f}x (baseline {baseline_speedup:.2f}x * "
                f"headroom {args.headroom})"
            )

    for field, (base, cand, floor) in floors.items():
        print(
            f"{field}: baseline {base:.2f}x -> floor {floor:.2f}x, "
            f"candidate {cand:.2f}x"
        )
    print(
        f"identical={candidate.get('identical_assignments')}, "
        f"identical_sharded={candidate.get('identical_assignments_sharded')}, "
        f"identical_async={candidate.get('identical_assignments_async')}, "
        f"identical_sharded_async="
        f"{candidate.get('identical_assignments_sharded_async')}, "
        f"identical_multiprocess="
        f"{candidate.get('identical_assignments_multiprocess')}, "
        f"identical_estimates_sharded_async="
        f"{candidate.get('identical_estimates_sharded_async')}, "
        f"recovery_identical={candidate.get('recovery_identical')}, "
        f"audit_replay_identical={candidate.get('audit_replay_identical')}, "
        f"audit_overhead_ratio={candidate.get('audit_overhead_ratio')}"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
