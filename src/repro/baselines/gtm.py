"""GTM baseline — Gaussian Truth Model (Zhao & Han, QDB 2012).

Continuous data only.  Each worker has a variance ``sigma_u^2``; the truth of
each cell has a Gaussian prior.  Truths and worker variances are estimated by
EM.  Each column is z-scored before inference so that one variance per worker
is meaningful across columns of different scales (the original model assumes
a single homogeneous attribute).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.baselines.base import BaselineResult, TruthInferenceMethod
from repro.core.answers import AnswerSet
from repro.core.schema import TableSchema


class GTM(TruthInferenceMethod):
    """Gaussian Truth Model with per-worker variances, estimated by EM."""

    name = "GTM"

    def __init__(self, max_iterations: int = 50, tolerance: float = 1e-5,
                 prior_variance: float = 10.0, variance_floor: float = 1e-4) -> None:
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.prior_variance = float(prior_variance)
        self.variance_floor = float(variance_floor)

    def supports_categorical(self) -> bool:
        return False

    def fit(self, schema: TableSchema, answers: AnswerSet) -> BaselineResult:
        cont_cols = set(schema.continuous_indices)
        observations = [a for a in answers if a.col in cont_cols]
        if not observations:
            return BaselineResult(schema, self.name, {})
        workers = sorted({a.worker for a in observations})
        worker_index = {worker: u for u, worker in enumerate(workers)}
        cells = sorted({(a.row, a.col) for a in observations})
        cell_index = {cell: t for t, cell in enumerate(cells)}

        # Column standardisation.
        offsets = np.zeros(schema.num_columns)
        scales = np.ones(schema.num_columns)
        for col in cont_cols:
            values = np.array([float(a.value) for a in observations if a.col == col])
            if len(values):
                offsets[col] = float(np.mean(values))
                std = float(np.std(values))
                if std > 1e-9:
                    scales[col] = std

        obs_worker = np.array([worker_index[a.worker] for a in observations])
        obs_cell = np.array([cell_index[(a.row, a.col)] for a in observations])
        obs_col = np.array([a.col for a in observations])
        obs_value = (
            np.array([float(a.value) for a in observations]) - offsets[obs_col]
        ) / scales[obs_col]

        num_workers = len(workers)
        num_cells = len(cells)
        worker_variance = np.ones(num_workers)

        truth_mean = np.zeros(num_cells)
        truth_var = np.ones(num_cells)
        for _iteration in range(self.max_iterations):
            previous = worker_variance.copy()
            # E-step: Gaussian truth posteriors.
            weights = 1.0 / worker_variance[obs_worker]
            sum_w = np.zeros(num_cells)
            sum_wa = np.zeros(num_cells)
            np.add.at(sum_w, obs_cell, weights)
            np.add.at(sum_wa, obs_cell, weights * obs_value)
            truth_var = 1.0 / (sum_w + 1.0 / self.prior_variance)
            truth_mean = sum_wa * truth_var
            # M-step: worker variances.
            residual_sq = (obs_value - truth_mean[obs_cell]) ** 2 + truth_var[obs_cell]
            sums = np.zeros(num_workers)
            counts = np.zeros(num_workers)
            np.add.at(sums, obs_worker, residual_sq)
            np.add.at(counts, obs_worker, 1.0)
            worker_variance = np.maximum(sums / np.maximum(counts, 1.0), self.variance_floor)
            if np.max(np.abs(worker_variance - previous)) < self.tolerance:
                break

        estimates: Dict[Tuple[int, int], object] = {}
        for cell, index in cell_index.items():
            col = cell[1]
            estimates[cell] = float(truth_mean[index] * scales[col] + offsets[col])
        weights = {
            worker: float(1.0 / worker_variance[worker_index[worker]])
            for worker in workers
        }
        return BaselineResult(schema, self.name, estimates, worker_weights=weights)
