"""CI smoke test of the crowd-serving HTTP service.

Starts ``python -m repro.service --port 0`` as a real subprocess, drives a
scripted session over HTTP (create session from a **v1 SessionSpec body**
→ seed answers → select/ingest loop → estimates → ``GET .../config``),
scrapes ``/metrics``, pins the legacy-config **upgrade shim** with one
PR-4-dialect request, and shuts the server down cleanly (SIGINT, asserting
the clean-shutdown message).  Exercises the same code path an operator
would run, end to end, in a few seconds.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.config import SessionSpec  # noqa: E402
from repro.datasets import load_celebrity  # noqa: E402
from repro.service.bench import ServiceClient  # noqa: E402
from repro.service.registry import schema_to_dict  # noqa: E402


def main() -> int:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={
            **os.environ,
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PYTHONUNBUFFERED": "1",
        },
    )
    try:
        line = process.stdout.readline().strip()
        if not line.startswith("listening on "):
            raise RuntimeError(f"unexpected server banner: {line!r}")
        address = line.removeprefix("listening on ")
        print(f"server up at {address}")
        client = ServiceClient(address, timeout=30.0)

        health = client.healthz()
        assert health["status"] == "ok", health

        dataset = load_celebrity(seed=7, num_rows=8)
        schema = dataset.schema
        pool = dataset.worker_pool
        worker_ids, activities = pool.worker_ids(), pool.activities()
        rng = np.random.default_rng(7)
        spec = (
            SessionSpec.builder()
            .model(max_iterations=4, m_step_iterations=8)
            .policy(refit_every=1)
            .sharded(2)
            .async_refit(max_stale=0)
            .build()
        )
        session = client.create_session(
            {"schema": schema_to_dict(schema), **spec.to_dict()}
        )
        session_id = session["session_id"]
        print(f"session {session_id} created ({session['policy']})")

        # The canonical spec must be served back verbatim.
        status, config = client.request("GET", f"/sessions/{session_id}/config")
        assert status == 200, (status, config)
        assert SessionSpec.from_dict(
            {k: v for k, v in config.items() if k not in ("schema", "session_id")}
        ) == spec, config
        print("config round-trip OK")

        for row in range(schema.num_rows):
            worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
            client.post_answers(
                session_id,
                worker,
                [
                    (row, col, dataset.oracle.answer(worker, row, col, rng))
                    for col in range(schema.num_columns)
                ],
            )
        extra = int(round(0.4 * schema.num_cells))
        collected = failures = 0
        while collected < extra and failures < 50:
            worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
            status, body = client.get_tasks(
                session_id, worker, k=min(schema.num_columns, extra - collected)
            )
            if status == 409:
                failures += 1
                continue
            assert status == 200, (status, body)
            failures = 0
            client.post_answers(
                session_id,
                worker,
                [
                    (row, col, dataset.oracle.answer(worker, row, col, rng))
                    for row, col in body["cells"]
                ],
            )
            collected += len(body["cells"])
        print(f"collected {collected} answers over HTTP")

        estimates = client.get_estimates(session_id)
        assert len(estimates["estimates"]) == schema.num_cells, estimates

        # One legacy PR-4-dialect body pins the upgrade shim: the same
        # session expressed the old way must create fine and serve back a
        # canonical v1 spec.
        legacy = client.create_session(
            {
                "schema": schema_to_dict(schema),
                "policy": {
                    "refit_every": 1,
                    "model": {"max_iterations": 4, "m_step_iterations": 8},
                },
                "serving": {"shards": 2, "async_refit": True,
                            "max_stale_answers": 0},
            }
        )
        status, legacy_config = client.request(
            "GET", f"/sessions/{legacy['session_id']}/config"
        )
        assert status == 200 and legacy_config["version"] == 1, legacy_config
        assert legacy_config["serving"]["shards"] == 2, legacy_config
        client.delete_session(legacy["session_id"])
        print("legacy-config upgrade shim OK")

        metrics = client.get_metrics()
        for needle in (
            "repro_service_sessions_active 1",
            "repro_service_selects_served_total",
            "repro_service_answers_ingested_total",
        ):
            assert needle in metrics, f"{needle!r} missing from /metrics"
        print("metrics scrape OK")

        process.send_signal(signal.SIGINT)
        remaining, _ = process.communicate(timeout=30)
        if "shut down cleanly" not in remaining:
            raise RuntimeError(f"no clean shutdown message in: {remaining!r}")
        print("clean shutdown OK")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
