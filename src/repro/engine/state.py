"""Incremental per-session state for the online assignment loop.

:class:`SessionState` mirrors the information the assignment policies used to
recompute from scratch on every :meth:`~repro.core.assignment.AssignmentPolicy.select`
call:

* per-cell answer counts (the budget check ``counts[i, j] >= cap``),
* per-worker answered-cell masks (a worker is never assigned a cell twice),
* the open-candidate pool (cells still below the per-cell answer cap).

All three are updated O(1) per newly ingested answer; listing a worker's
candidate cells is one vectorised boolean-mask pass instead of a Python scan
that rebuilt the count matrix and queried ``has_answered`` per cell.

The state attaches to an append-only :class:`~repro.core.answers.AnswerSet`
via :meth:`sync`: only the answers appended since the last sync are ingested.
If a *different* answer set is presented (the experiments sometimes copy
answer sets), the state transparently rebuilds from scratch.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.answers import Answer, AnswerSet
from repro.core.schema import TableSchema

Cell = Tuple[int, int]


class SessionState:
    """Mutable indexes over the answers collected so far in one session.

    Parameters
    ----------
    schema:
        Table schema the answers refer to.
    max_answers_per_cell:
        Optional budget cap per cell; cells that reach it leave the
        open-candidate pool (and re-enter it never — answers are append-only).
    """

    def __init__(
        self,
        schema: TableSchema,
        max_answers_per_cell: Optional[int] = None,
    ) -> None:
        self.schema = schema
        self.max_answers_per_cell = (
            None if max_answers_per_cell is None else int(max_answers_per_cell)
        )
        self._source: Optional[weakref.ref] = None
        self._reset()

    def _reset(self) -> None:
        shape = (self.schema.num_rows, self.schema.num_columns)
        self._counts = np.zeros(shape, dtype=np.int64)
        self._col_counts = np.zeros(self.schema.num_columns, dtype=np.int64)
        self._open = np.ones(shape, dtype=bool)
        self._open_count = shape[0] * shape[1]
        self._answered: Dict[str, np.ndarray] = {}
        self._num_ingested = 0

    # -- ingestion ---------------------------------------------------------

    def ingest(self, answer: Answer) -> None:
        """Fold one new answer into every index (O(1))."""
        row, col = answer.row, answer.col
        self._counts[row, col] += 1
        self._col_counts[col] += 1
        cap = self.max_answers_per_cell
        if (
            cap is not None
            and self._open[row, col]
            and self._counts[row, col] >= cap
        ):
            self._open[row, col] = False
            self._open_count -= 1
        mask = self._answered.get(answer.worker)
        if mask is None:
            mask = np.zeros(self._counts.shape, dtype=bool)
            self._answered[answer.worker] = mask
        mask[row, col] = True

    def sync(self, answers: AnswerSet) -> "SessionState":
        """Bring the state up to date with ``answers``.

        Ingests only the answers appended since the previous sync; rebuilds
        from scratch when a different (or shrunken) answer set shows up.
        """
        source = self._source() if self._source is not None else None
        if source is not answers or len(answers) < self._num_ingested:
            self._reset()
            self._source = weakref.ref(answers)
        for index in range(self._num_ingested, len(answers)):
            self.ingest(answers[index])
        self._num_ingested = len(answers)
        return self

    # -- queries -----------------------------------------------------------

    @property
    def num_answers(self) -> int:
        """Number of answers ingested so far."""
        return self._num_ingested

    @property
    def counts(self) -> np.ndarray:
        """Per-cell answer counts (read-only view; do not mutate)."""
        return self._counts

    def answer_count(self, row: int, col: int) -> int:
        """Number of answers collected for cell ``(row, col)``."""
        return int(self._counts[row, col])

    def column_answer_count(self, col: int) -> int:
        """Number of answers collected for column ``col``."""
        return int(self._col_counts[col])

    def has_answered(self, worker: str, row: int, col: int) -> bool:
        """True if ``worker`` already answered cell ``(row, col)``."""
        mask = self._answered.get(worker)
        return bool(mask[row, col]) if mask is not None else False

    def open_cell_count(self) -> int:
        """Number of cells still below the per-cell answer cap."""
        return self._open_count

    def has_open_cells(self) -> bool:
        """True while at least one cell can accept further answers."""
        return self._open_count > 0

    def candidate_mask(self, worker: str) -> np.ndarray:
        """Boolean (rows, cols) mask of cells assignable to ``worker``."""
        answered = self._answered.get(worker)
        if answered is None:
            return self._open.copy()
        return self._open & ~answered

    def candidate_cells(self, worker: str) -> List[Cell]:
        """Cells assignable to ``worker``, in row-major order.

        Matches the ordering of the legacy full scan so rankings (and their
        tie-breaks) are identical between the engine and seed paths.
        """
        answered = self._answered.get(worker)
        mask = self._open if answered is None else self._open & ~answered
        flat = np.flatnonzero(mask.ravel())
        rows, cols = np.divmod(flat, self.schema.num_columns)
        return list(zip(rows.tolist(), cols.tolist()))
