"""Random-number-generator helpers.

Every stochastic component of the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Normalising the
three through :func:`as_generator` keeps experiments reproducible: the paper
averages every synthetic experiment over 100 regenerated datasets, which we
reproduce by spawning child generators with :func:`spawn_generators`.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (nondeterministic), an ``int``, a
    ``SeedSequence``, or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from ``seed``.

    Used to run repeated trials (e.g. the 100 synthetic regenerations of
    Section 6.5) that are reproducible yet mutually independent.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
