"""Figures 11 and 12 — efficiency of assignment and truth inference.

* Figure 11 — time to compute the structure-aware information gain for all
  candidate cells when a new worker arrives, as a function of the average
  number of answers collected per task (Celebrity).
* Figure 12(a) — EM objective value per iteration (convergence, Celebrity).
* Figure 12(b) — truth-inference runtime as a function of the number of
  answers (synthetic datasets of growing size).

Absolute times differ from the paper's 2012-era Python 2.7 testbed; the
relevant reproduction target is the *linear* scaling in the number of
answers (the complexity analyses at the end of Sections 4.3 and 5.1).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.config import ServingSpec, SessionSpec
from repro.config.factory import wrap_policy
from repro.core.answers import AnswerSet
from repro.core.assignment import TCrowdAssigner, refit_model
from repro.core.inference import TCrowdModel
from repro.core.structure_gain import StructureAwareGainCalculator
from repro.datasets import generate_synthetic, load_celebrity
from repro.experiments.reporting import ExperimentReport
from repro.strategies import build_strategy
from repro.utils.exceptions import AssignmentError


def run_figure11_assignment_time(
    answers_per_task_levels: Iterable[int] = (2, 3, 4, 5),
    seed: int = 7,
    num_rows: Optional[int] = 60,
    model_kwargs: Optional[dict] = None,
) -> ExperimentReport:
    """Figure 11: time to score all candidate cells for one incoming worker."""
    report = ExperimentReport(
        experiment_id="figure11",
        title="Efficiency of task assignment (Celebrity)",
        headers=["answers per task", "candidate cells", "seconds"],
    )
    points = []
    for level in answers_per_task_levels:
        kwargs = {"seed": seed, "answers_per_task": int(level)}
        if num_rows:
            kwargs["num_rows"] = num_rows
        dataset = load_celebrity(**kwargs)
        model = TCrowdModel(**(model_kwargs or {"max_iterations": 15}))
        result = model.fit(dataset.schema, dataset.answers)
        worker = dataset.answers.workers[0]
        calculator = StructureAwareGainCalculator(result, dataset.answers)
        candidates = list(dataset.schema.cells())
        start = time.perf_counter()
        for row, col in candidates:
            calculator.gain(worker, row, col)
        elapsed = time.perf_counter() - start
        report.add_row(int(level), len(candidates), elapsed)
        points.append((int(level), elapsed))
    report.add_series("assignment seconds", points)
    report.add_note(
        f"num_rows={num_rows or 'paper size'}; one full scoring pass of the "
        "structure-aware information gain over every cell for one worker"
    )
    return report


def run_figure12_convergence(
    seed: int = 7,
    num_rows: Optional[int] = None,
    max_iterations: int = 20,
    model_kwargs: Optional[dict] = None,
) -> ExperimentReport:
    """Figure 12(a): EM objective value per iteration on Celebrity."""
    kwargs = {"seed": seed}
    if num_rows:
        kwargs["num_rows"] = num_rows
    dataset = load_celebrity(**kwargs)
    options = dict(model_kwargs or {})
    options.setdefault("max_iterations", max_iterations)
    model = TCrowdModel(**options)
    result = model.fit(dataset.schema, dataset.answers)
    report = ExperimentReport(
        experiment_id="figure12a",
        title="Truth inference convergence (objective value per EM iteration)",
        headers=["iteration", "objective value"],
    )
    points = [
        (iteration + 1, value)
        for iteration, value in enumerate(result.objective_trace)
    ]
    for iteration, value in points:
        report.add_row(iteration, value)
    report.add_series("objective", points)
    report.add_note(
        f"converged={result.converged} after {result.n_iterations} iterations "
        f"on {dataset.name} ({len(dataset.answers)} answers)"
    )
    return report


def run_figure12_runtime(
    answer_counts: Iterable[int] = (1_000, 3_000, 10_000, 30_000),
    seed: int = 7,
    answers_per_task: int = 5,
    num_columns: int = 10,
    model_kwargs: Optional[dict] = None,
) -> ExperimentReport:
    """Figure 12(b): truth-inference runtime vs number of answers (synthetic)."""
    report = ExperimentReport(
        experiment_id="figure12b",
        title="Truth inference running time vs number of answers",
        headers=["answers", "rows", "seconds", "answers per second"],
    )
    points = []
    for target in answer_counts:
        num_rows = max(int(target) // (answers_per_task * num_columns), 2)
        dataset = generate_synthetic(
            num_rows=num_rows,
            num_columns=num_columns,
            categorical_ratio=0.5,
            answers_per_task=answers_per_task,
            seed=seed,
        )
        model = TCrowdModel(**(model_kwargs or {"max_iterations": 15}))
        start = time.perf_counter()
        model.fit(dataset.schema, dataset.answers)
        elapsed = time.perf_counter() - start
        report.add_row(
            len(dataset.answers), num_rows, elapsed, len(dataset.answers) / elapsed
        )
        points.append((len(dataset.answers), elapsed))
    report.add_series("seconds", points)
    report.add_note(
        "The paper reports ~100 answers/second on a 2012-era machine; the "
        "reproduction target is the linear scaling, not the absolute rate."
    )
    return report


def default_max_stale(schema) -> int:
    """The historical production staleness default: two HITs' worth.

    Single definition — the legacy ``max_stale_answers=None`` keyword of
    :func:`measure_engine_speedup` and ``benchmarks/run_bench.py`` (when
    ``--max-stale`` is omitted) both resolve through here.
    """
    return 2 * schema.num_columns


def _truth_agreement(result_a, result_b, schema) -> float:
    """Fraction of cells whose point estimates agree between two fits.

    Categorical cells must produce the same label; continuous cells agree
    when the point estimates are within 5% of each other (or 0.1 absolute),
    mirroring the warm-vs-cold tolerances asserted in
    ``tests/test_engine.py``.
    """
    matches = 0
    total = schema.num_cells
    for row in range(schema.num_rows):
        for col in range(schema.num_columns):
            a = result_a.estimate(row, col)
            b = result_b.estimate(row, col)
            if schema.columns[col].is_categorical:
                matches += a == b
            else:
                matches += abs(float(a) - float(b)) <= max(
                    0.05 * abs(float(b)), 0.1
                )
    return matches / max(total, 1)


def measure_engine_speedup(
    seed: int = 7,
    num_rows: int = 60,
    target_answers_per_task: float = 2.0,
    refit_every: int = 1,
    model_kwargs: Optional[dict] = None,
    max_steps: Optional[int] = None,
    shards: Optional[int] = None,
    shard_workers: Optional[int] = None,
    async_refit: bool = False,
    max_stale_answers: Optional[int] = None,
    async_refit_tol: Optional[float] = 1e-3,
    spec: Optional[SessionSpec] = None,
    timing_repeats: int = 1,
    processes: Optional[int] = None,
) -> Dict[str, object]:
    """Time the online assignment loop on the seed path vs the engine paths.

    Every path replays the exact same simulated session (same dataset, same
    worker arrivals, same answer oracle draws) through
    :class:`TCrowdAssigner` at the Algorithm 2 cadence (``refit_every=1`` by
    default).  Up to four configurations are timed:

    * **seed** — ``warm_start/vectorized/incremental`` all off: the
      from-scratch behaviour of the seed implementation (cold EM, scalar
      per-cell gains, full candidate rescans);
    * **engine (exact)** — incremental candidate indexing + vectorised batch
      gains.  These are pure refactors of the same arithmetic, so the
      assignment sequence must be *identical* to the seed path (returned as
      ``identical_assignments`` and asserted by the benchmark);
    * **engine (warm)** — additionally warm-starts each EM refit from the
      previous result.  Warm starts change the optimiser trajectory, so this
      path is equivalent only up to the EM tolerance (see
      ``tests/test_engine.py``); its step-level agreement with the seed
      sequence is reported as ``warm_vs_cold_agreement``, and because near-ties make
      that number look alarming on its own, the *posterior-truth* agreement
      between the warm path's final fit and a cold EM fit on the same
      answers is reported alongside as ``warm_truth_agreement`` (see
      :func:`_truth_agreement`);
    * **engine (sharded)** — only when ``shards`` is set: the exact engine
      path served through a
      :class:`~repro.engine.ShardedAssignmentPolicy` with ``shards``
      contiguous row-range shards (and ``shard_workers`` scoring threads,
      when given).  The partitioned top-K merge is a pure refactor, so its
      sequence must also be identical (``identical_assignments_sharded``);
    * **engine (async)** — only when ``async_refit`` is set.  Two runs:
      the staleness-equivalence run serves the exact engine configuration
      through an :class:`~repro.engine.AsyncRefitPolicy` at
      ``max_stale_answers=0`` (every select blocks until the model has
      seen all answers), whose sequence must replay the seed path bit for
      bit (``identical_assignments_async``); and the production run, which
      lets selects score against snapshots up to ``max_stale_answers``
      answers behind (default: two HITs' worth) while a background worker
      refits warm-started with objective-based early stopping
      (``async_refit_tol``).  Its wall-clock is compared against the
      *synchronous engine path*: ``speedup_async = seconds_engine_path /
      seconds_engine_async_path``;
    * **engine (multiprocess)** — only when ``processes`` is set: the
      engine path served through a
      :class:`~repro.engine.ProcessShardCoordinator` with ``processes``
      shard-group worker processes (effective shards =
      ``max(shards, processes)``).  The compressed per-worker top-K merge
      is bit-identical to the single-process stable top-K, so the
      equivalence run's sequence must replay the seed path exactly
      (``identical_assignments_multiprocess``); the timed production run
      records ``seconds_engine_multiprocess_path`` /
      ``speedup_multiprocess`` (seed-relative, like ``speedup_sharded``)
      and the raw ``multiprocess_answers_per_sec`` throughput.

    ``spec`` is the canonical way to configure the benchmark: a
    :class:`~repro.config.SessionSpec` supplies the policy options (every
    :class:`~repro.config.PolicySpec` field plus the model options; the
    ``warm_start`` / ``vectorized`` / ``incremental`` switches are the
    benchmark's own matrix axes and are overridden per timed path), the
    serving matrix (``serving.shards`` > 1 enables the sharded paths,
    ``serving.async_refit`` the async ones, ``serving.refit_tol`` the
    production refit tolerance) and the simulation budget
    (``simulation.target_answers_per_task`` / ``seed`` / ``max_steps``);
    only the dataset size (``num_rows``) stays a benchmark argument.  The
    individual keyword arguments remain as a convenience and are folded
    into a spec internally — the resolved spec is recorded in the returned
    stats as ``spec``.  Staleness semantics are defined once, on
    :class:`~repro.config.ServingSpec`, and the *timed production run*
    honours ``serving.max_stale_answers`` exactly (``0`` times the
    blocking mode, ``null`` the unbounded one); only the legacy
    ``max_stale_answers=None`` keyword keeps its historical meaning of
    "two HITs' worth", resolved against the dataset and recorded as the
    actual bound in the returned spec.

    ``timing_repeats`` re-runs every *timed* path that many times and
    reports the best (minimum) wall clock — the noise-robust estimator for
    the sub-second smoke tier, where a single sample can swing 2× on a
    shared machine.  The equivalence replays run once (their decisions are
    deterministic), and the recorded value is echoed back as
    ``timing_repeats``.
    """
    if spec is None:
        dataset = load_celebrity(seed=seed, num_rows=num_rows)
        builder = (
            SessionSpec.builder()
            .model(**dict(model_kwargs or {"max_iterations": 10, "m_step_iterations": 15}))
            .policy(refit_every=refit_every)
            .simulation(
                target_answers_per_task=target_answers_per_task,
                seed=seed,
                max_steps=max_steps,
            )
        )
        if shards is not None and shards > 1:
            builder.sharded(shards, shard_workers)
        if async_refit:
            builder.async_refit(
                max_stale=(
                    default_max_stale(dataset.schema)
                    if max_stale_answers is None
                    else max_stale_answers
                ),
                refit_tol=async_refit_tol,
            )
        spec = builder.build()
    else:
        seed = spec.simulation.seed if spec.simulation.seed is not None else seed
        target_answers_per_task = spec.simulation.target_answers_per_task
        max_steps = spec.simulation.max_steps
        refit_every = spec.policy.refit_every
        model_kwargs = spec.policy.model.to_kwargs()
        shards = spec.serving.shards if spec.serving.shards > 1 else None
        shard_workers = spec.serving.shard_workers
        async_refit = spec.serving.async_refit
        # The spec is honoured exactly: refit_tol=None means no objective
        # early stopping in the timed runs, exactly as it would through
        # from_spec or the HTTP service.
        async_refit_tol = spec.serving.refit_tol
        if processes is None and spec.serving.processes:
            processes = spec.serving.processes
        dataset = load_celebrity(seed=seed, num_rows=num_rows)
    schema = dataset.schema
    pool = dataset.worker_pool
    worker_ids = pool.worker_ids()
    activities = pool.activities()
    extra_answers = int(
        round((target_answers_per_task - 1.0) * schema.num_cells)
    )
    options = dict(model_kwargs or {"max_iterations": 10, "m_step_iterations": 15})

    def run_path(
        warm_start: bool,
        fast: bool,
        num_shards: Optional[int] = None,
        async_stale: object = "off",
        refit_tol: Optional[float] = None,
        capture_estimates: bool = False,
        num_processes: Optional[int] = None,
    ) -> Tuple[List[tuple], float, int, object, AnswerSet, Optional[dict]]:
        rng = np.random.default_rng(seed)
        answers = AnswerSet(schema)
        for row in range(schema.num_rows):
            chosen = int(rng.choice(len(worker_ids), p=activities))
            worker = worker_ids[chosen]
            for col in range(schema.num_columns):
                value = dataset.oracle.answer(worker, row, col, rng)
                answers.add_answer(worker, row, col, value)
        # Every PolicySpec field flows into the assigner except the
        # warm_start/vectorized/incremental switches, which are the
        # benchmark's matrix axes (each timed path overrides them), and
        # refit_tol, which only the production async runs enable.
        assigner = TCrowdAssigner(
            schema,
            model=TCrowdModel(**options),
            use_structure=spec.policy.use_structure,
            refit_every=refit_every,
            continuous_samples=spec.policy.continuous_samples,
            max_answers_per_cell=spec.policy.max_answers_per_cell,
            min_pairs=spec.policy.min_pairs,
            seed=spec.policy.seed,
            warm_start=warm_start,
            vectorized=fast,
            incremental=fast,
            refit_tol=refit_tol,
            strategy=build_strategy(spec.policy.strategy),
        )
        # The serving wrapper comes from the same factory table every other
        # entry point (platform session, HTTP service) uses.
        policy = wrap_policy(
            assigner,
            ServingSpec(
                shards=num_shards if num_shards is not None else 1,
                shard_workers=shard_workers,
                async_refit=async_stale != "off",
                max_stale_answers=0 if async_stale == "off" else async_stale,
                processes=num_processes or 0,
            ),
        )
        decisions: List[tuple] = []
        collected = 0
        steps = 0
        failures = 0
        try:
            start = time.perf_counter()
            while collected < extra_answers and failures < 10 * len(worker_ids):
                if max_steps is not None and steps >= max_steps:
                    break
                worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
                batch = min(schema.num_columns, extra_answers - collected)
                try:
                    assignment = policy.select(worker, answers, k=batch)
                except AssignmentError:
                    failures += 1
                    continue
                failures = 0
                decisions.append((worker, assignment.cells))
                for row, col in assignment.cells:
                    value = dataset.oracle.answer(worker, row, col, rng)
                    answers.add_answer(worker, row, col, value)
                collected += len(assignment.cells)
                policy.observe(answers)
                steps += 1
            elapsed = time.perf_counter() - start
            estimates = None
            if capture_estimates:
                # Final truth estimates over the complete answer set, via the
                # policy's own final_result (a cold fit on the warm_start=False
                # paths) — the equivalence evidence for
                # identical_estimates_sharded_async.
                estimates = policy.final_result(answers).estimates()
        finally:
            if policy is not assigner:
                policy.close()
        return decisions, elapsed, collected, assigner, answers, estimates

    def timed_path(**kwargs):
        # Best-of-N wall clock: every repeat replays the identical session
        # (same rng seed), so the minimum is the run least perturbed by the
        # machine — the standard noise-robust estimator for tiny timings.
        # Decisions/estimates come from the first repeat (they are
        # deterministic across repeats anyway).
        first = run_path(**kwargs)
        best = first[1]
        for _ in range(timing_repeats - 1):
            best = min(best, run_path(**kwargs)[1])
        return (first[0], best) + first[2:]

    capture_seed_estimates = async_refit and shards is not None and shards > 1
    seed_decisions, seed_seconds, seed_collected, _, _, seed_estimates = timed_path(
        warm_start=False, fast=False, capture_estimates=capture_seed_estimates
    )
    exact_decisions, exact_seconds, _, _, _, _ = timed_path(
        warm_start=False, fast=True
    )
    warm_decisions, warm_seconds, _, warm_assigner, warm_answers, _ = timed_path(
        warm_start=True, fast=True
    )
    agreement_steps = sum(
        1 for a, b in zip(seed_decisions, warm_decisions) if a == b
    )
    # Context for the (near-tie-dominated) step agreement: do the warm path's
    # final posteriors decode to the same truths a cold EM would infer from
    # the very same answers?  At refit_every > 1 the loop's last fit may
    # predate the last few answers — bring it up to date (one more warm
    # refit) so both fits see the identical answer set.
    cold_final = TCrowdModel(**options).fit(schema, warm_answers)
    warm_final = warm_assigner.last_result
    if warm_final is not None and (
        warm_assigner.answers_at_last_fit != len(warm_answers)
    ):
        warm_final = refit_model(
            warm_assigner.model, schema, warm_answers,
            previous=warm_final, warm_start=True,
        )
    warm_truth_agreement = (
        _truth_agreement(warm_final, cold_final, schema)
        if warm_final is not None
        else 0.0
    )
    stats: Dict[str, object] = {
        "spec": spec.to_dict(),
        "seed": seed,
        "num_rows": num_rows,
        "num_columns": schema.num_columns,
        "refit_every": refit_every,
        "target_answers_per_task": target_answers_per_task,
        "steps": len(seed_decisions),
        "answers_collected": seed_collected,
        "seconds_seed_path": seed_seconds,
        "seconds_engine_path": exact_seconds,
        "seconds_engine_warm_path": warm_seconds,
        "speedup": seed_seconds / max(exact_seconds, 1e-12),
        "speedup_warm": seed_seconds / max(warm_seconds, 1e-12),
        "identical_assignments": seed_decisions == exact_decisions,
        # warm_vs_cold_agreement counts steps where the warm path took the
        # exact same decision as the cold seed path — dominated by near-ties,
        # hence the honest name.
        "warm_vs_cold_agreement": agreement_steps / max(len(seed_decisions), 1),
        "warm_truth_agreement": warm_truth_agreement,
        "model_kwargs": options,
        "timing_repeats": int(timing_repeats),
    }
    if shards is not None and shards > 1:
        sharded_decisions, sharded_seconds, _, _, _, _ = timed_path(
            warm_start=False, fast=True, num_shards=shards
        )
        stats["shards"] = int(shards)
        stats["shard_workers"] = shard_workers
        stats["seconds_engine_sharded_path"] = sharded_seconds
        stats["speedup_sharded"] = seed_seconds / max(sharded_seconds, 1e-12)
        stats["identical_assignments_sharded"] = (
            seed_decisions == sharded_decisions
        )
    if async_refit:
        # Staleness-equivalence run: max_stale_answers=0 disables background
        # refits and blocks every select until the model has seen all
        # answers, so the async serving path must replay the seed sequence
        # bit for bit.
        async_exact_decisions, _, _, _, _, _ = run_path(
            warm_start=False, fast=True, async_stale=0
        )
        stats["identical_assignments_async"] = (
            seed_decisions == async_exact_decisions
        )
        # Production run: the spec's staleness bound, honoured exactly
        # (0 times the blocking mode, None the unbounded one), with
        # background warm-started refits and objective-based early
        # stopping.  Compared against the *synchronous engine path*, not
        # the seed path: the async win is on top of the engine's.
        stale = spec.serving.max_stale_answers
        _, async_seconds, _, _, _, _ = timed_path(
            warm_start=True, fast=True, async_stale=stale,
            refit_tol=async_refit_tol,
        )
        stats["async_max_stale_answers"] = stale
        stats["async_refit_tol"] = async_refit_tol
        stats["seconds_engine_async_path"] = async_seconds
        stats["speedup_async"] = exact_seconds / max(async_seconds, 1e-12)
    if async_refit and shards is not None and shards > 1:
        # Composed serving mode (ShardedAsyncPolicy).  Equivalence run at
        # max_stale_answers=0: the sharded scorer reading blocking-refit
        # snapshots must still replay the seed sequence bit for bit.
        composed_exact, _, _, _, _, composed_estimates = run_path(
            warm_start=False, fast=True, num_shards=shards, async_stale=0,
            capture_estimates=True,
        )
        stats["identical_assignments_sharded_async"] = (
            seed_decisions == composed_exact
        )
        # The estimate-equality bit: both runs end with a cold fit over the
        # same final answer set (the composed path's snapshot chain replays
        # the synchronous one at stale=0), so the decoded truths must match
        # exactly — a strictly stronger check than the assignment sequences,
        # and the one that would catch a stale scoring-cache hit.
        stats["identical_estimates_sharded_async"] = (
            seed_estimates == composed_estimates
        )
        # Production composed run: the spec's staleness bound + warm
        # early-stopped refits, scored shard by shard.  Compared against
        # the synchronous engine path, like speedup_async.
        stale = spec.serving.max_stale_answers
        _, composed_seconds, _, _, _, _ = timed_path(
            warm_start=True, fast=True, num_shards=shards, async_stale=stale,
            refit_tol=async_refit_tol,
        )
        stats["seconds_engine_sharded_async_path"] = composed_seconds
        stats["speedup_sharded_async"] = exact_seconds / max(
            composed_seconds, 1e-12
        )
    if processes is not None and processes >= 1:
        # Process-level serving (ProcessShardCoordinator).  Equivalence
        # run: every worker replays the full answer stream through a
        # deterministic twin of the assigner, so the merged per-worker
        # top-Ks must replay the seed sequence bit for bit across the
        # process boundary (floats round-trip the JSON pipe exactly).
        mp_decisions, _, _, _, _, _ = run_path(
            warm_start=False, fast=True, num_shards=shards,
            num_processes=processes,
        )
        stats["processes"] = int(processes)
        stats["identical_assignments_multiprocess"] = (
            seed_decisions == mp_decisions
        )
        # Timed production run: warm-started workers at the same cadence.
        # Seed-relative like speedup_sharded; at smoke size the JSON IPC
        # and per-worker refits price in, so the gate holds this to a
        # relative floor only (see scripts/check_perf_regression.py).
        _, mp_seconds, mp_collected, _, _, _ = timed_path(
            warm_start=True, fast=True, num_shards=shards,
            num_processes=processes,
        )
        stats["seconds_engine_multiprocess_path"] = mp_seconds
        stats["speedup_multiprocess"] = seed_seconds / max(mp_seconds, 1e-12)
        stats["multiprocess_answers_per_sec"] = mp_collected / max(
            mp_seconds, 1e-12
        )
    return stats


def _nearest_rank(sorted_values: List[float], quantile: float) -> float:
    """Nearest-rank percentile over an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(int(np.ceil(quantile * len(sorted_values))) - 1, 0)
    return float(sorted_values[min(rank, len(sorted_values) - 1)])


def profile_hot_path(
    seed: int = 7,
    num_rows: int = 60,
    target_answers_per_task: float = 2.0,
    shards: int = 4,
    shard_workers: Optional[int] = None,
    max_stale_answers: Optional[int] = None,
    refit_tol: Optional[float] = 1e-3,
    model_kwargs: Optional[dict] = None,
    max_steps: Optional[int] = None,
) -> Dict[str, object]:
    """Run the composed production path once with per-stage timers attached.

    Replays the same scripted session as :func:`measure_engine_speedup`'s
    composed production run, but with a
    :class:`~repro.engine.HotPathProfile` wired into the policy stack, and
    returns the per-stage breakdown (``profile_stages``) plus the scoring
    cache hit counters.  Kept separate from the timed benchmark runs so the
    (small) profiling overhead never contaminates the recorded speedups.
    """
    from repro.engine import HotPathProfile

    dataset = load_celebrity(seed=seed, num_rows=num_rows)
    schema = dataset.schema
    pool = dataset.worker_pool
    worker_ids, activities = pool.worker_ids(), pool.activities()
    if max_stale_answers is None:
        max_stale_answers = default_max_stale(schema)
    options = dict(
        model_kwargs or {"max_iterations": 10, "m_step_iterations": 15}
    )
    rng = np.random.default_rng(seed)
    answers = AnswerSet(schema)
    for row in range(schema.num_rows):
        worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
        for col in range(schema.num_columns):
            answers.add_answer(
                worker, row, col, dataset.oracle.answer(worker, row, col, rng)
            )
    assigner = TCrowdAssigner(
        schema,
        model=TCrowdModel(**options),
        refit_every=1,
        warm_start=True,
        refit_tol=refit_tol,
    )
    policy = wrap_policy(
        assigner,
        ServingSpec(
            shards=shards,
            shard_workers=shard_workers,
            async_refit=True,
            max_stale_answers=max_stale_answers,
        ),
    )
    profile = HotPathProfile()
    policy.set_profile(profile)
    extra = int(round((target_answers_per_task - 1.0) * schema.num_cells))
    collected = steps = failures = 0
    try:
        start = time.perf_counter()
        while collected < extra and failures < 10 * len(worker_ids):
            if max_steps is not None and steps >= max_steps:
                break
            worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
            batch = min(schema.num_columns, extra - collected)
            try:
                assignment = policy.select(worker, answers, k=batch)
            except AssignmentError:
                failures += 1
                continue
            failures = 0
            for row, col in assignment.cells:
                answers.add_answer(
                    worker, row, col,
                    dataset.oracle.answer(worker, row, col, rng),
                )
            collected += len(assignment.cells)
            policy.observe(answers)
            steps += 1
        elapsed = time.perf_counter() - start
    finally:
        policy.close()
    return {
        "profile_stages": profile.to_dict(),
        "profile_steps": steps,
        "profile_seconds": elapsed,
        "profile_num_rows": num_rows,
        "profile_shards": shards,
        "profile_max_stale_answers": max_stale_answers,
        "profile_scoring_cache_hits": policy.scoring_cache_hits,
        "profile_scoring_cache_misses": policy.scoring_cache_misses,
    }


def measure_scale_benchmark(
    seed: int = 7,
    num_rows: int = 10_000,
    num_columns: int = 10,
    num_workers: int = 300,
    max_steps: int = 15,
    selects_per_step: int = 3,
    shards: int = 8,
    max_stale_answers: Optional[int] = None,
    refit_tol: Optional[float] = 1e-3,
    model_kwargs: Optional[dict] = None,
) -> Dict[str, object]:
    """The ``--scale`` benchmark tier: the serving paths at production size.

    Everything recorded by the default tier comes from a toy Celebrity
    slice; this tier drives a synthetic table of ``num_rows`` rows (>= 10k
    by default, one seed answer per cell) and a crowd of ``num_workers``
    workers through a bounded number of assignment steps on each serving
    path that stays feasible at this size:

    * **engine (sync)** — the warm-started synchronous engine, paying one
      EM refit per select (Algorithm 2 cadence);
    * **async** — bounded-staleness async refit serving;
    * **sharded + async** — the composed mode (stacked scoring + scoring
      cache over async snapshots).

    Each step has ``selects_per_step`` distinct workers poll for tasks
    before their answers are ingested in one batch — the serving pattern
    of a real crowd, where many workers request work between answer
    arrivals.  That access pattern is exactly what the composed mode's
    scoring cache targets (repeat selects against an unchanged snapshot
    and answer prefix), so the recorded cache hit counts are meaningful
    rather than structurally zero.

    The from-scratch seed path is omitted — a cold EM per select over
    ~``num_rows * num_columns`` answers is minutes *per step* and measures
    nothing the small tier doesn't already pin.  Speedups are therefore
    relative to the synchronous engine path (``speedup_async_scale``,
    ``speedup_sharded_async_scale``), matching the small tier's
    ``speedup_async`` convention, with nearest-rank select p50/p99s
    alongside.  A cold-fit ``lbfgs``-vs-``newton`` M-step comparison over
    the full seeded answer set rides along (``scale_m_step``), recording
    ``iterations_run`` / ``stopped_by`` / wall-clock for both.
    """
    spec = (
        SessionSpec.builder()
        .model(**dict(model_kwargs or {"max_iterations": 8, "m_step_iterations": 15}))
        .policy(refit_every=1, warm_start=True)
        .simulation(seed=seed, max_steps=max_steps)
        .build()
    )
    options = spec.policy.model.to_kwargs()
    dataset = generate_synthetic(
        num_rows=num_rows,
        num_columns=num_columns,
        categorical_ratio=0.5,
        answers_per_task=1,
        num_workers=num_workers,
        seed=seed,
    )
    schema = dataset.schema
    pool = dataset.worker_pool
    worker_ids, activities = pool.worker_ids(), pool.activities()
    if max_stale_answers is None:
        max_stale_answers = default_max_stale(schema)

    def run_serving(serving: Optional[ServingSpec]):
        rng = np.random.default_rng(seed)
        answers = dataset.answers.copy()
        assigner = TCrowdAssigner(
            schema,
            model=TCrowdModel(**options),
            refit_every=spec.policy.refit_every,
            warm_start=True,
            refit_tol=refit_tol,
        )
        policy = (
            assigner if serving is None else wrap_policy(assigner, serving)
        )
        latencies: List[float] = []
        steps = failures = 0
        cache_stats = (0, 0)
        try:
            start = time.perf_counter()
            while steps < max_steps and failures < 10:
                # All of the step's selects run before any of its answers
                # are ingested (workers poll concurrently in production;
                # the driver serialises them for determinism).
                assignments = []
                for _poll in range(selects_per_step):
                    worker = worker_ids[
                        int(rng.choice(len(worker_ids), p=activities))
                    ]
                    before = time.perf_counter()
                    try:
                        assignment = policy.select(
                            worker, answers, k=num_columns
                        )
                    except AssignmentError:
                        failures += 1
                        continue
                    latencies.append(time.perf_counter() - before)
                    failures = 0
                    assignments.append(assignment)
                for assignment in assignments:
                    for row, col in assignment.cells:
                        answers.add_answer(
                            assignment.worker, row, col,
                            dataset.oracle.answer(
                                assignment.worker, row, col, rng
                            ),
                        )
                if assignments:
                    policy.observe(answers)
                    steps += 1
            elapsed = time.perf_counter() - start
            cache_stats = (
                getattr(policy, "scoring_cache_hits", 0),
                getattr(policy, "scoring_cache_misses", 0),
            )
        finally:
            if policy is not assigner:
                policy.close()
        latencies.sort()
        return {
            "seconds": elapsed,
            "steps": steps,
            "select_p50_ms": _nearest_rank(latencies, 0.50) * 1000.0,
            "select_p99_ms": _nearest_rank(latencies, 0.99) * 1000.0,
            "cache": cache_stats,
        }

    sync_run = run_serving(None)
    async_run = run_serving(
        ServingSpec(
            async_refit=True,
            max_stale_answers=max_stale_answers,
            refit_tol=refit_tol,
        )
    )
    composed_run = run_serving(
        ServingSpec(
            shards=shards,
            async_refit=True,
            max_stale_answers=max_stale_answers,
            refit_tol=refit_tol,
        )
    )

    # Cold-fit M-step comparison at scale: same answers, same budget, the
    # only difference is the optimiser behind Eq. 5.
    m_step_stats: Dict[str, object] = {}
    for variant in ("lbfgs", "newton"):
        model = TCrowdModel(**{**options, "m_step": variant})
        fit_start = time.perf_counter()
        result = model.fit(schema, dataset.answers, tol=refit_tol)
        fit_seconds = time.perf_counter() - fit_start
        m_step_stats[variant] = {
            "seconds": fit_seconds,
            "iterations_run": result.iterations_run,
            "stopped_by": result.stopped_by,
            "objective": result.objective_trace[-1],
        }
    m_step_stats["newton_speedup"] = (
        m_step_stats["lbfgs"]["seconds"]
        / max(m_step_stats["newton"]["seconds"], 1e-12)
    )

    return {
        "scale_spec": spec.to_dict(),
        "scale_num_rows": num_rows,
        "scale_num_columns": num_columns,
        "scale_num_workers": len(worker_ids),
        "scale_num_answers_seeded": len(dataset.answers),
        "scale_steps": max_steps,
        "scale_selects_per_step": selects_per_step,
        "scale_shards": shards,
        "scale_max_stale_answers": max_stale_answers,
        "seconds_engine_scale": sync_run["seconds"],
        "seconds_async_scale": async_run["seconds"],
        "seconds_sharded_async_scale": composed_run["seconds"],
        "speedup_async_scale": (
            sync_run["seconds"] / max(async_run["seconds"], 1e-12)
        ),
        "speedup_sharded_async_scale": (
            sync_run["seconds"] / max(composed_run["seconds"], 1e-12)
        ),
        "scale_select_p50_ms": composed_run["select_p50_ms"],
        "scale_select_p99_ms": composed_run["select_p99_ms"],
        "scale_select_p50_ms_engine": sync_run["select_p50_ms"],
        "scale_select_p99_ms_engine": sync_run["select_p99_ms"],
        "scale_select_p50_ms_async": async_run["select_p50_ms"],
        "scale_select_p99_ms_async": async_run["select_p99_ms"],
        "scale_scoring_cache_hits": composed_run["cache"][0],
        "scale_scoring_cache_misses": composed_run["cache"][1],
        "scale_m_step": m_step_stats,
    }


def run_engine_speedup(
    seed: int = 7,
    num_rows: int = 60,
    target_answers_per_task: float = 2.0,
    refit_every: int = 1,
    model_kwargs: Optional[dict] = None,
    max_steps: Optional[int] = None,
    shards: Optional[int] = None,
    shard_workers: Optional[int] = None,
    async_refit: bool = False,
    max_stale_answers: Optional[int] = None,
    spec: Optional[SessionSpec] = None,
) -> ExperimentReport:
    """Engine-vs-seed wall-clock of the online loop (Algorithm 2 cadence).

    The companion of Figures 11/12 for the incremental engine: how much
    faster the warm-started, vectorised, incrementally-indexed loop runs at
    ``refit_every=1`` while taking identical assignment decisions.
    """
    stats = measure_engine_speedup(
        seed=seed,
        num_rows=num_rows,
        target_answers_per_task=target_answers_per_task,
        refit_every=refit_every,
        model_kwargs=model_kwargs,
        max_steps=max_steps,
        shards=shards,
        shard_workers=shard_workers,
        async_refit=async_refit,
        max_stale_answers=max_stale_answers,
        spec=spec,
    )
    return engine_speedup_report(stats)


def engine_speedup_report(stats: Dict[str, object]) -> ExperimentReport:
    """Format the output of :func:`measure_engine_speedup` as a report."""
    report = ExperimentReport(
        experiment_id="engine_speedup",
        title="Incremental engine speedup of the online assignment loop",
        headers=["path", "seconds", "speedup", "identical decisions"],
    )
    report.add_row("seed (cold EM, scalar gains, full rescans)",
                   stats["seconds_seed_path"], 1.0, True)
    report.add_row("engine (batch gains, O(1) indexes)",
                   stats["seconds_engine_path"], stats["speedup"],
                   stats["identical_assignments"])
    report.add_row("engine + warm-start EM",
                   stats["seconds_engine_warm_path"], stats["speedup_warm"],
                   f"agreement={stats['warm_vs_cold_agreement']:.2f}")
    series = [
        (0, stats["seconds_seed_path"]),
        (1, stats["seconds_engine_path"]),
        (2, stats["seconds_engine_warm_path"]),
    ]
    if "speedup_sharded" in stats:
        report.add_row(
            f"engine, sharded x{stats['shards']} "
            f"(workers={stats['shard_workers'] or 1})",
            stats["seconds_engine_sharded_path"], stats["speedup_sharded"],
            stats["identical_assignments_sharded"],
        )
        series.append((3, stats["seconds_engine_sharded_path"]))
    if "speedup_async" in stats:
        report.add_row(
            f"engine, async refit (max_stale={stats['async_max_stale_answers']}, "
            f"tol={stats['async_refit_tol']})",
            stats["seconds_engine_async_path"],
            stats["speedup_async"],
            f"exact@stale=0: {stats['identical_assignments_async']}",
        )
        series.append((4, stats["seconds_engine_async_path"]))
    if "speedup_sharded_async" in stats:
        report.add_row(
            f"engine, sharded x{stats['shards']} + async refit "
            f"(max_stale={stats['async_max_stale_answers']})",
            stats["seconds_engine_sharded_async_path"],
            stats["speedup_sharded_async"],
            f"exact@stale=0: {stats['identical_assignments_sharded_async']}",
        )
        series.append((5, stats["seconds_engine_sharded_async_path"]))
    report.add_series("seconds", series)
    report.add_note(
        f"num_rows={stats['num_rows']}, refit_every={stats['refit_every']}, "
        f"steps={stats['steps']}, answers={stats['answers_collected']}, "
        f"speedup={stats['speedup']:.2f}x (exact), "
        f"speedup_warm={stats['speedup_warm']:.2f}x, "
        f"identical_assignments={stats['identical_assignments']}"
    )
    report.add_note(
        "The exact engine path must take bitwise-identical assignment "
        "decisions; the warm-start path converges to the same posteriors "
        "within the EM tolerance (see tests/test_engine.py) but may break "
        "near-ties differently."
    )
    report.add_note(
        "warm_vs_cold_agreement counts identical *decisions* and is dominated by "
        "near-ties; warm_truth_agreement="
        f"{stats.get('warm_truth_agreement', float('nan')):.2f} is the "
        "fraction of cells whose inferred truths match a cold EM fit on the "
        "same answers — the number that shows the warm path lands on the "
        "same answers."
    )
    if "speedup_async" in stats:
        report.add_note(
            "speedup_async compares the bounded-staleness async path against "
            "the *synchronous engine path* (not the seed path): selects "
            "serve the latest background snapshot lock-free, and warm "
            "refits stop early once the EM objective flattens.  The "
            "equivalence bit is recorded at max_stale_answers=0, where the "
            "async path must replay the seed sequence bit for bit."
        )
    return report
