"""Unit and property tests for the unified worker model (repro.core.worker_model)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.worker_model import WorkerModel
from repro.utils.exceptions import ConfigurationError


class TestQualityVarianceMapping:
    def test_quality_decreases_with_variance(self):
        model = WorkerModel(1.0)
        qualities = model.quality_from_variance(np.array([0.1, 1.0, 10.0]))
        assert qualities[0] > qualities[1] > qualities[2]

    def test_quality_in_unit_interval(self):
        model = WorkerModel(1.0)
        for variance in (1e-6, 0.5, 5.0, 1e6):
            quality = float(model.quality_from_variance(variance))
            assert 0.0 < quality < 1.0

    def test_variance_from_quality_roundtrip(self):
        model = WorkerModel(1.0)
        for variance in (0.2, 1.0, 4.0):
            quality = float(model.quality_from_variance(variance))
            assert model.variance_from_quality(quality) == pytest.approx(variance, rel=1e-4)

    def test_variance_from_quality_validates(self):
        model = WorkerModel(1.0)
        with pytest.raises(ConfigurationError):
            model.variance_from_quality(1.5)

    def test_epsilon_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WorkerModel(0.0)

    def test_larger_epsilon_means_larger_quality(self):
        variance = 1.0
        assert WorkerModel(2.0).quality_from_variance(variance) > WorkerModel(
            0.5
        ).quality_from_variance(variance)

    def test_cell_quality_uses_difficulty_product(self):
        model = WorkerModel(1.0)
        base = float(model.cell_quality(1.0, 1.0, 1.0))
        harder = float(model.cell_quality(2.0, 2.0, 1.0))
        assert harder < base

    @given(st.floats(0.01, 100), st.floats(0.01, 100))
    @settings(max_examples=50)
    def test_quality_monotone_in_variance(self, v1, v2):
        model = WorkerModel(1.0)
        q1 = float(model.quality_from_variance(v1))
        q2 = float(model.quality_from_variance(v2))
        if v1 < v2:
            assert q1 >= q2
        else:
            assert q2 >= q1


class TestLikelihoods:
    def test_continuous_log_likelihood_peaks_at_truth(self):
        model = WorkerModel(1.0)
        at_truth = model.continuous_log_likelihood(5.0, 5.0, 1.0)
        off_truth = model.continuous_log_likelihood(7.0, 5.0, 1.0)
        assert at_truth > off_truth

    def test_continuous_log_likelihood_matches_gaussian(self):
        model = WorkerModel(1.0)
        value = model.continuous_log_likelihood(1.0, 0.0, 2.0)
        expected = -0.5 * np.log(2 * np.pi * 2.0) - 1.0 / 4.0
        assert float(value) == pytest.approx(expected)

    def test_categorical_log_likelihood(self):
        model = WorkerModel(1.0)
        correct = float(model.categorical_log_likelihood(True, 0.8, 5))
        wrong = float(model.categorical_log_likelihood(False, 0.8, 5))
        assert correct == pytest.approx(np.log(0.8))
        assert wrong == pytest.approx(np.log(0.2 / 4))

    def test_categorical_log_likelihood_vectorised(self):
        model = WorkerModel(1.0)
        values = model.categorical_log_likelihood(
            np.array([True, False]), np.array([0.9, 0.9]), 3
        )
        assert values.shape == (2,)
        assert values[0] > values[1]


class TestSampling:
    def test_continuous_sampling_centred_on_truth(self):
        model = WorkerModel(1.0)
        rng = np.random.default_rng(0)
        samples = [model.sample_continuous_answer(rng, 10.0, 0.25) for _ in range(500)]
        assert np.mean(samples) == pytest.approx(10.0, abs=0.15)
        assert np.std(samples) == pytest.approx(0.5, abs=0.1)

    def test_continuous_sampling_requires_positive_variance(self):
        model = WorkerModel(1.0)
        with pytest.raises(ConfigurationError):
            model.sample_continuous_answer(np.random.default_rng(0), 0.0, -1.0)

    def test_categorical_sampling_rate_matches_quality(self):
        model = WorkerModel(1.0)
        rng = np.random.default_rng(1)
        quality = 0.7
        hits = sum(
            model.sample_categorical_answer(rng, 2, quality, 4) == 2
            for _ in range(2000)
        )
        assert hits / 2000 == pytest.approx(quality, abs=0.05)

    def test_categorical_sampling_with_binary_labels(self):
        model = WorkerModel(1.0)
        rng = np.random.default_rng(2)
        answers = {
            model.sample_categorical_answer(rng, 0, 0.5, 2) for _ in range(50)
        }
        assert answers <= {0, 1}

    def test_categorical_sampling_single_label_degenerate(self):
        model = WorkerModel(1.0)
        rng = np.random.default_rng(3)
        assert model.sample_categorical_answer(rng, 0, 0.0, 1) == 0

    @given(st.floats(0.0, 1.0), st.integers(min_value=2, max_value=10))
    @settings(max_examples=40)
    def test_sampled_label_always_valid(self, quality, num_labels):
        model = WorkerModel(1.0)
        rng = np.random.default_rng(4)
        label = model.sample_categorical_answer(rng, 1, quality, num_labels)
        assert 0 <= label < num_labels
