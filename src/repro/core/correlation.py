"""Attribute error-correlation models of Section 5.2 (Tables 4 and 5, Eq. 7-8).

For every ordered pair of columns ``(j, k)`` the model learns, from all
collected answers, how a worker's error on column ``k`` of an entity predicts
the same worker's error on column ``j`` of that entity:

* both categorical  -> Bernoulli conditionals ``P(e_j | e_k = 0/1)``;
* both continuous   -> bivariate Gaussian, conditioned analytically;
* j continuous, k categorical -> two Gaussians (``e_k`` right / wrong);
* j categorical, k continuous -> Bayes over two Gaussians for ``e_k`` plus
  the Bernoulli marginal of ``e_j``.

Conditioning on several observed errors in the same row uses the linear
combination of Eq. 7 weighted by the Pearson coefficients ``W_jk`` of Eq. 8.

Errors are defined against the *estimated* truths of an
:class:`~repro.core.inference.InferenceResult`: continuous errors are
``a - T^hat`` and categorical errors are 0 (correct) / 1 (wrong).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.answers import Answer, AnswerSet
from repro.core.inference import InferenceResult
from repro.core.schema import TableSchema
from repro.utils.exceptions import DataError
from repro.utils.numerics import safe_var


@dataclass(frozen=True)
class BernoulliError:
    """Error distribution of a categorical column: probability of being wrong."""

    p_wrong: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "p_wrong", float(np.clip(self.p_wrong, 0.0, 1.0)))

    @property
    def is_categorical(self) -> bool:
        """True — categorical error model."""
        return True

    def quality(self) -> float:
        """Probability of a correct answer implied by the error model."""
        return 1.0 - self.p_wrong


@dataclass(frozen=True)
class GaussianError:
    """Error distribution of a continuous column: ``e ~ N(mean, variance)``."""

    mean: float
    variance: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "variance", float(max(self.variance, 1e-9)))

    @property
    def is_categorical(self) -> bool:
        """False — continuous error model."""
        return False

    def second_moment(self) -> float:
        """``E[e^2] = variance + mean^2`` (the effective answer noise)."""
        return self.variance + self.mean**2


def answer_error(answer: Answer, result: InferenceResult, estimate=None) -> float:
    """Error of one answer against the estimated truth.

    Continuous columns: ``a - T^hat``.  Categorical columns: 0 if the answer
    matches the estimated truth, 1 otherwise.  ``estimate`` short-circuits
    the posterior lookup when the caller already resolved ``T^hat`` for the
    cell (the correlation fit resolves it once per cell, not per answer).
    """
    column = result.schema.columns[answer.col]
    if estimate is None:
        estimate = result.estimate(answer.row, answer.col)
    if column.is_categorical:
        return 0.0 if answer.value == estimate else 1.0
    return float(answer.value) - float(estimate)


class _PairStats:
    """Fitted conditional model for one ordered column pair (j | k)."""

    def __init__(
        self,
        target_categorical: bool,
        given_categorical: bool,
        errors_j: np.ndarray,
        errors_k: np.ndarray,
    ) -> None:
        self.target_categorical = target_categorical
        self.given_categorical = given_categorical
        self.errors_j = errors_j
        self.errors_k = errors_k
        self._fit()

    def _fit(self) -> None:
        ej, ek = self.errors_j, self.errors_k
        if self.target_categorical and self.given_categorical:
            # Case (a): two Bernoulli conditionals.
            self.p_wrong_given_right = _bernoulli_rate(ej[ek == 0.0])
            self.p_wrong_given_wrong = _bernoulli_rate(ej[ek == 1.0])
        elif not self.target_categorical and not self.given_categorical:
            # Case (b): bivariate Gaussian.
            self.mean_j = float(np.mean(ej))
            self.mean_k = float(np.mean(ek))
            self.var_j = safe_var(ej)
            self.var_k = safe_var(ek)
            if len(ej) > 1:
                cov = float(np.mean(ej * ek)) - self.mean_j * self.mean_k
            else:
                cov = 0.0
            limit = 0.999 * np.sqrt(self.var_j * self.var_k)
            self.cov = float(np.clip(cov, -limit, limit))
        elif not self.target_categorical and self.given_categorical:
            # Case (c): Gaussian error of j conditioned on k right / wrong.
            self.gauss_given_right = _gaussian_from(ej[ek == 0.0], fallback=ej)
            self.gauss_given_wrong = _gaussian_from(ej[ek == 1.0], fallback=ej)
        else:
            # Case (d): Bayes with Gaussian likelihoods of e_k given e_j.
            self.p_wrong_prior = _bernoulli_rate(ej)
            self.gauss_k_given_right = _gaussian_from(ek[ej == 0.0], fallback=ek)
            self.gauss_k_given_wrong = _gaussian_from(ek[ej == 1.0], fallback=ek)

    def conditional(self, observed_error: float):
        """Distribution of the target error given the observed error on k."""
        if self.target_categorical and self.given_categorical:
            if observed_error == 0.0:
                return BernoulliError(self.p_wrong_given_right)
            return BernoulliError(self.p_wrong_given_wrong)
        if not self.target_categorical and not self.given_categorical:
            slope = self.cov / self.var_k
            mean = self.mean_j + slope * (observed_error - self.mean_k)
            variance = self.var_j - self.cov**2 / self.var_k
            return GaussianError(mean, variance)
        if not self.target_categorical and self.given_categorical:
            chosen = (
                self.gauss_given_right
                if observed_error == 0.0
                else self.gauss_given_wrong
            )
            return GaussianError(chosen[0], chosen[1])
        # Case (d): P(e_j | e_k = x) via Bayes.
        like_wrong = _gaussian_pdf(observed_error, *self.gauss_k_given_wrong)
        like_right = _gaussian_pdf(observed_error, *self.gauss_k_given_right)
        prior_wrong = self.p_wrong_prior
        numerator = like_wrong * prior_wrong
        denominator = numerator + like_right * (1.0 - prior_wrong)
        if denominator <= 0:
            return BernoulliError(prior_wrong)
        return BernoulliError(numerator / denominator)


def _bernoulli_rate(values: np.ndarray) -> float:
    """Smoothed error rate (Laplace +1/+2) of a 0/1 error vector."""
    return float((np.sum(values) + 1.0) / (len(values) + 2.0))


def _gaussian_from(values: np.ndarray, fallback: np.ndarray) -> Tuple[float, float]:
    """Mean/variance of ``values``; falls back to the pooled vector if empty."""
    source = values if len(values) >= 2 else fallback
    if len(source) == 0:
        return 0.0, 1.0
    return float(np.mean(source)), safe_var(source)


def _gaussian_pdf(x: float, mean: float, variance: float) -> float:
    variance = max(variance, 1e-9)
    return float(
        np.exp(-((x - mean) ** 2) / (2.0 * variance)) / np.sqrt(2.0 * np.pi * variance)
    )


class AttributeCorrelationModel:
    """Learned marginal and pairwise error models over the table's columns."""

    def __init__(
        self,
        schema: TableSchema,
        marginals: Dict[int, object],
        pair_models: Dict[Tuple[int, int], _PairStats],
        weights: Dict[Tuple[int, int], float],
    ) -> None:
        self.schema = schema
        self._marginals = marginals
        self._pair_models = pair_models
        self._weights = weights

    # -- fitting -------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        answers: AnswerSet,
        result: InferenceResult,
        min_pairs: int = 5,
    ) -> "AttributeCorrelationModel":
        """Fit the correlation model from all collected answers.

        ``min_pairs`` is the minimum number of (worker, row) pairs with
        answers on both columns required to fit a pairwise model; column
        pairs below the threshold fall back to the marginal model.
        """
        schema = answers.schema
        errors_by_cell: Dict[Tuple[str, int, int], float] = {}
        errors_by_col: Dict[int, List[float]] = {j: [] for j in range(schema.num_columns)}
        # The estimated truth is shared by every answer of a cell: resolve it
        # once per cell, not once per answer (the fit runs on every refit of
        # the online loop).
        estimates: Dict[Tuple[int, int], object] = {}
        for answer in answers:
            key = (answer.row, answer.col)
            estimate = estimates.get(key)
            if estimate is None:
                estimate = result.estimate(answer.row, answer.col)
                estimates[key] = estimate
            error = answer_error(answer, result, estimate=estimate)
            errors_by_cell[(answer.worker, answer.row, answer.col)] = error
            errors_by_col[answer.col].append(error)

        marginals: Dict[int, object] = {}
        for j, column in enumerate(schema.columns):
            values = np.asarray(errors_by_col[j], dtype=float)
            if column.is_categorical:
                marginals[j] = BernoulliError(_bernoulli_rate(values))
            else:
                mean, var = _gaussian_from(values, values)
                marginals[j] = GaussianError(mean, var)

        # Collect paired errors per ordered column pair: the same worker on
        # the same row answered both columns.
        paired: Dict[Tuple[int, int], Tuple[List[float], List[float]]] = {}
        by_worker_row: Dict[Tuple[str, int], List[Tuple[int, float]]] = {}
        for (worker, row, col), error in errors_by_cell.items():
            by_worker_row.setdefault((worker, row), []).append((col, error))
        for observations in by_worker_row.values():
            for col_j, err_j in observations:
                for col_k, err_k in observations:
                    if col_j == col_k:
                        continue
                    bucket = paired.setdefault((col_j, col_k), ([], []))
                    bucket[0].append(err_j)
                    bucket[1].append(err_k)

        pair_models: Dict[Tuple[int, int], _PairStats] = {}
        weights: Dict[Tuple[int, int], float] = {}
        for (col_j, col_k), (list_j, list_k) in paired.items():
            if len(list_j) < min_pairs:
                continue
            ej = np.asarray(list_j, dtype=float)
            ek = np.asarray(list_k, dtype=float)
            pair_models[(col_j, col_k)] = _PairStats(
                schema.columns[col_j].is_categorical,
                schema.columns[col_k].is_categorical,
                ej,
                ek,
            )
            weights[(col_j, col_k)] = _pearson(ej, ek)
        return cls(schema, marginals, pair_models, weights)

    # -- queries -------------------------------------------------------------

    def has_pair(self, target_col: int, given_col: int) -> bool:
        """True if a pairwise model was fitted for (target | given)."""
        return (target_col, given_col) in self._pair_models

    def weight(self, target_col: int, given_col: int) -> float:
        """Correlation coefficient ``W_jk`` of Eq. 8 (0 if not fitted)."""
        return self._weights.get((target_col, given_col), 0.0)

    def marginal_error(self, col: int):
        """Marginal error distribution ``P(e_j)`` of Table 4."""
        try:
            return self._marginals[col]
        except KeyError as exc:
            raise DataError(f"No marginal error model for column {col}") from exc

    def conditional_error(self, target_col: int, given_col: int, observed_error: float):
        """``P(e_j | e_k = observed_error)`` of Table 5.

        Falls back to the marginal of the target column when the pair was
        not fitted (too few joint observations).
        """
        pair = self._pair_models.get((target_col, given_col))
        if pair is None:
            return self.marginal_error(target_col)
        return pair.conditional(observed_error)

    def predict_error(self, target_col: int, observed_errors: Dict[int, float]):
        """Combine the conditionals for all observed columns via Eq. 7.

        ``observed_errors`` maps column index -> the worker's observed error
        on that column (same row).  Returns a :class:`BernoulliError` or
        :class:`GaussianError` for the target column, or the marginal if no
        usable evidence exists.
        """
        conditionals = []
        weights = []
        for given_col, observed in observed_errors.items():
            if given_col == target_col or not self.has_pair(target_col, given_col):
                continue
            weight = abs(self.weight(target_col, given_col))
            if weight <= 1e-9:
                continue
            conditionals.append(self.conditional_error(target_col, given_col, observed))
            weights.append(weight)
        if not conditionals:
            return self.marginal_error(target_col)
        weights = np.asarray(weights, dtype=float)
        weights = weights / weights.sum()
        if self.schema.columns[target_col].is_categorical:
            p_wrong = float(
                np.sum(weights * np.array([c.p_wrong for c in conditionals]))
            )
            return BernoulliError(p_wrong)
        means = np.array([c.mean for c in conditionals])
        variances = np.array([c.variance for c in conditionals])
        mixture_mean = float(np.sum(weights * means))
        mixture_second = float(np.sum(weights * (variances + means**2)))
        return GaussianError(mixture_mean, max(mixture_second - mixture_mean**2, 1e-9))


def _pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient (Eq. 8), 0 for degenerate vectors."""
    if len(x) < 2:
        return 0.0
    mean_x = float(np.mean(x))
    mean_y = float(np.mean(y))
    std_x = float(np.std(x))
    std_y = float(np.std(y))
    if std_x < 1e-12 or std_y < 1e-12:
        return 0.0
    cov = float(np.mean(x * y)) - mean_x * mean_y
    return float(np.clip(cov / (std_x * std_y), -1.0, 1.0))
