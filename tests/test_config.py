"""The versioned SessionSpec API: validation, round-tripping, factory, CLI.

Three contracts are pinned here:

* **Exact round-trip** — ``SessionSpec.from_dict(to_dict(spec)) == spec``
  for arbitrary valid specs, *through a JSON encode/decode* (hypothesis
  property tests; the same float-exact discipline as the WAL codec).
* **Path-qualified strictness** — every invalid field raises a
  :class:`~repro.config.SpecValidationError` whose ``path`` names the
  offending field (``serving.max_stale_answers``), and unknown fields are
  rejected rather than ignored.
* **Legacy equivalence** — the pre-spec keyword surfaces (session kwargs,
  the PR-4 service dialect) adapt to specs that drive byte-identical
  sessions.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    DurabilitySpec,
    ModelSpec,
    PolicySpec,
    ServingSpec,
    SessionSpec,
    SimulationSpec,
    SpecValidationError,
    upgrade_legacy_config,
)
from repro.config.factory import (
    build_assigner,
    build_model,
    build_policy,
    wrap_policy,
)
from repro.config.validate import main as validate_main
from repro.utils.exceptions import ConfigurationError

# -- strategies ----------------------------------------------------------------

_floats = dict(allow_nan=False, allow_infinity=False)

model_specs = st.builds(
    ModelSpec,
    epsilon=st.floats(min_value=1e-3, max_value=10.0, **_floats),
    max_iterations=st.integers(min_value=1, max_value=200),
    tolerance=st.floats(min_value=1e-12, max_value=1e-2, **_floats),
    m_step_iterations=st.integers(min_value=1, max_value=60),
    difficulty_regularization=st.floats(min_value=0.0, max_value=5.0, **_floats),
    phi_regularization=st.floats(min_value=0.0, max_value=1.0, **_floats),
    use_difficulty=st.booleans(),
    standardize_continuous=st.booleans(),
    seed=st.none() | st.integers(min_value=0, max_value=2**31 - 1),
)

policy_specs = st.builds(
    PolicySpec,
    model=model_specs,
    use_structure=st.booleans(),
    refit_every=st.integers(min_value=1, max_value=20),
    continuous_samples=st.just(0),
    max_answers_per_cell=st.none() | st.integers(min_value=1, max_value=50),
    min_pairs=st.integers(min_value=0, max_value=20),
    seed=st.none() | st.integers(min_value=0, max_value=2**31 - 1),
    warm_start=st.booleans(),
    vectorized=st.booleans(),
    incremental=st.booleans(),
)

serving_specs = st.builds(
    ServingSpec,
    shards=st.integers(min_value=1, max_value=16),
    shard_workers=st.none() | st.integers(min_value=1, max_value=8),
    async_refit=st.booleans(),
    max_stale_answers=st.none() | st.integers(min_value=0, max_value=10_000),
    refit_tol=st.none() | st.floats(min_value=1e-9, max_value=1.0, **_floats),
)

durability_specs = st.builds(
    DurabilitySpec,
    durable_dir=st.none()
    | st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789/_-.",
        min_size=1,
        max_size=40,
    ),
    snapshot_every_answers=st.integers(min_value=1, max_value=10_000),
    wal_fsync=st.booleans(),
)


@st.composite
def simulation_specs(draw):
    initial = draw(st.integers(min_value=1, max_value=5))
    target = initial + draw(st.floats(min_value=0.1, max_value=10.0, **_floats))
    return SimulationSpec(
        target_answers_per_task=target,
        initial_answers_per_task=initial,
        batch_size=draw(st.none() | st.integers(min_value=1, max_value=30)),
        eval_every_answers_per_task=draw(
            st.floats(min_value=0.1, max_value=5.0, **_floats)
        ),
        seed=draw(st.none() | st.integers(min_value=0, max_value=2**31 - 1)),
        max_steps=draw(st.none() | st.integers(min_value=0, max_value=1_000)),
    )


session_specs = st.builds(
    SessionSpec,
    policy=policy_specs,
    serving=serving_specs,
    durability=durability_specs,
    simulation=simulation_specs(),
)


# -- round-trip properties -----------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=200)
    @given(spec=session_specs)
    def test_dict_round_trip_is_exact(self, spec):
        assert SessionSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=200)
    @given(spec=session_specs)
    def test_json_round_trip_is_exact(self, spec):
        """Floats must survive JSON — the WAL codec's repr discipline."""
        rebuilt = SessionSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()

    @given(spec=session_specs)
    def test_specs_are_immutable(self, spec):
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.version = 2
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.serving.shards = 99

    def test_sections_may_be_omitted(self):
        assert SessionSpec.from_dict({"version": 1}) == SessionSpec()

    def test_version_is_required_and_pinned(self):
        with pytest.raises(SpecValidationError, match="version is required"):
            SessionSpec.from_dict({})
        with pytest.raises(SpecValidationError, match="must be 1"):
            SessionSpec.from_dict({"version": 2})


# -- validation ----------------------------------------------------------------


class TestValidation:
    @pytest.mark.parametrize(
        "payload, path",
        [
            ({"serving": {"shards": 0}}, "serving.shards"),
            ({"serving": {"shards": "four"}}, "serving.shards"),
            ({"serving": {"max_stale_answers": -1}}, "serving.max_stale_answers"),
            ({"serving": {"async_refit": 1}}, "serving.async_refit"),
            ({"serving": {"refit_tol": 0.0}}, "serving.refit_tol"),
            ({"serving": {"bogus": True}}, "serving.bogus"),
            ({"policy": {"refit_every": 0}}, "policy.refit_every"),
            ({"policy": {"bogus_knob": 1}}, "policy.bogus_knob"),
            ({"policy": {"model": {"epsilon": 0}}}, "policy.model.epsilon"),
            ({"policy": {"model": {"bogus": 1}}}, "policy.model.bogus"),
            ({"policy": {"model": {"tolerance": float("nan")}}},
             "policy.model.tolerance"),
            ({"durability": {"snapshot_every_answers": 0}},
             "durability.snapshot_every_answers"),
            ({"durability": {"durable_dir": ""}}, "durability.durable_dir"),
            ({"simulation": {"target_answers_per_task": 0.5}},
             "simulation.target_answers_per_task"),
            ({"simulation": {"initial_answers_per_task": 0}},
             "simulation.initial_answers_per_task"),
            ({"unknown_section": {}}, "spec.unknown_section"),
        ],
    )
    def test_path_qualified_errors(self, payload, path):
        with pytest.raises(SpecValidationError) as excinfo:
            SessionSpec.from_dict({"version": 1, **payload})
        assert excinfo.value.path == path
        assert str(excinfo.value).startswith(path)

    def test_errors_are_configuration_errors(self):
        with pytest.raises(ConfigurationError):
            ServingSpec(shards=0)

    def test_sharding_rejects_monte_carlo_gains(self):
        with pytest.raises(SpecValidationError) as excinfo:
            SessionSpec.from_dict(
                {
                    "version": 1,
                    "policy": {"continuous_samples": 4},
                    "serving": {"shards": 2},
                }
            )
        assert excinfo.value.path == "policy.continuous_samples"

    def test_booleans_are_not_integers(self):
        with pytest.raises(SpecValidationError, match="serving.shards"):
            ServingSpec(shards=True)

    def test_processes_rejects_async_refit(self):
        """Worker processes own their refit schedule: the in-process async
        engine would race it, so the combination is a spec error."""
        with pytest.raises(SpecValidationError, match="serving.async_refit"):
            ServingSpec(processes=2, async_refit=True)
        with pytest.raises(SpecValidationError, match="serving.processes"):
            ServingSpec(processes=-1)

    def test_processes_rejects_monte_carlo_gains(self):
        with pytest.raises(SpecValidationError) as excinfo:
            SessionSpec.from_dict(
                {
                    "version": 1,
                    "policy": {"continuous_samples": 4},
                    "serving": {"processes": 2},
                }
            )
        assert excinfo.value.path == "policy.continuous_samples"

    def test_processes_describe_and_wrapper(self):
        spec = ServingSpec(processes=2, shards=4)
        assert spec.wants_wrapper
        assert spec.describe() == "multiprocess x2 + sharded x4"
        assert not ServingSpec().wants_wrapper

    def test_max_stale_semantics_are_unified(self):
        """One default for every entry point: 0 = blocking (bit-exact)."""
        assert ServingSpec().max_stale_answers == 0
        assert SessionSpec.from_legacy_kwargs().serving.max_stale_answers == 0
        assert ServingSpec(max_stale_answers=None).max_stale_answers is None
        assert "max_stale=unbounded" in ServingSpec(
            async_refit=True, max_stale_answers=None
        ).describe()


# -- builder -------------------------------------------------------------------


class TestBuilder:
    def test_issue_example_chain(self, tmp_path):
        spec = (
            SessionSpec.builder()
            .sharded(4)
            .async_refit(max_stale=64)
            .durable(tmp_path)
            .build()
        )
        assert spec.serving == ServingSpec(
            shards=4, async_refit=True, max_stale_answers=64
        )
        assert spec.durability.durable_dir == str(tmp_path)
        assert spec.describe() == "sharded x4 + async refit (max_stale=64) [durable]"

    def test_empty_builder_is_default_spec(self):
        assert SessionSpec.builder().build() == SessionSpec()

    def test_builder_validates_at_build(self):
        builder = SessionSpec.builder().sharded(0)
        with pytest.raises(SpecValidationError, match="serving.shards"):
            builder.build()

    def test_with_durable_dir(self, tmp_path):
        spec = SessionSpec().with_durable_dir(tmp_path)
        assert spec.durability.durable_dir == str(tmp_path)
        assert spec.with_durable_dir(None).durability.durable_dir is None

    def test_builder_durability_and_serving_sections(self, tmp_path):
        spec = (
            SessionSpec.builder()
            .durable(tmp_path, snapshot_every_answers=25, wal_fsync=True)
            .serving(shard_workers=2, shards=3)
            .sharded(4, workers=3)
            .build()
        )
        assert spec.durability == DurabilitySpec(
            durable_dir=str(tmp_path), snapshot_every_answers=25, wal_fsync=True
        )
        # later builder calls win
        assert spec.serving.shards == 4
        assert spec.serving.shard_workers == 3

    def test_split_envelope_rejects_non_objects(self):
        from repro.config import split_envelope

        with pytest.raises(SpecValidationError, match="JSON object"):
            split_envelope(["not", "a", "dict"])
        envelope, payload = split_envelope(
            {"version": 1, "schema": {"a": 1}, "durable": True}
        )
        assert envelope == {"schema": {"a": 1}, "durable": True}
        assert payload == {"version": 1}


# -- legacy adapters -----------------------------------------------------------


class TestLegacyAdapters:
    def test_from_legacy_kwargs_maps_every_field(self, tmp_path):
        spec = SessionSpec.from_legacy_kwargs(
            target_answers_per_task=3.0,
            initial_answers_per_task=2,
            batch_size=5,
            eval_every_answers_per_task=0.25,
            seed=11,
            max_steps=40,
            shards=3,
            shard_workers=2,
            async_refit=True,
            max_stale_answers=None,
            durable_dir=tmp_path,
            snapshot_every_answers=50,
            wal_fsync=True,
        )
        assert spec.serving == ServingSpec(
            shards=3, shard_workers=2, async_refit=True, max_stale_answers=None
        )
        assert spec.durability == DurabilitySpec(
            durable_dir=str(tmp_path), snapshot_every_answers=50, wal_fsync=True
        )
        assert spec.simulation == SimulationSpec(
            target_answers_per_task=3.0,
            initial_answers_per_task=2,
            batch_size=5,
            eval_every_answers_per_task=0.25,
            seed=11,
            max_steps=40,
        )

    @settings(max_examples=100)
    @given(
        shards=st.none() | st.integers(min_value=0, max_value=8),
        shard_workers=st.none() | st.integers(min_value=1, max_value=4),
        async_refit=st.booleans(),
        max_stale=st.none() | st.integers(min_value=0, max_value=200),
        target=st.floats(min_value=1.1, max_value=8.0, **_floats),
        seed=st.none() | st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_legacy_kwargs_produce_round_trippable_specs(
        self, shards, shard_workers, async_refit, max_stale, target, seed
    ):
        """legacy kwargs → spec → JSON → spec is lossless for any input."""
        spec = SessionSpec.from_legacy_kwargs(
            shards=shards,
            shard_workers=shard_workers,
            async_refit=async_refit,
            max_stale_answers=max_stale,
            target_answers_per_task=target,
            seed=seed,
        )
        assert SessionSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec
        assert spec.serving.shards == (shards if shards else 1)
        assert spec.serving.max_stale_answers == max_stale

    def test_from_legacy_kwargs_drops_non_integer_seeds(self):
        import numpy as np

        spec = SessionSpec.from_legacy_kwargs(seed=np.random.default_rng(0))
        assert spec.simulation.seed is None

    def test_upgrade_legacy_service_config(self):
        upgraded = upgrade_legacy_config(
            {
                "schema": {"num_rows": 4},
                "session_id": "abc",
                "durable": True,
                "policy": {"refit_every": 2, "refit_tol": 1e-3,
                           "model": {"max_iterations": 7}},
                "serving": {"shards": None, "async_refit": True,
                            "max_stale_answers": 9},
                "snapshot_every": 33,
                "fsync": True,
            }
        )
        assert upgraded["version"] == 1
        assert upgraded["schema"] == {"num_rows": 4}
        assert upgraded["session_id"] == "abc"
        assert upgraded["durable"] is True
        spec = SessionSpec.from_dict(
            {k: v for k, v in upgraded.items()
             if k in ("version", "policy", "serving", "durability", "simulation")}
        )
        assert spec.policy.refit_every == 2
        assert spec.policy.model.max_iterations == 7
        assert spec.serving == ServingSpec(
            shards=1, async_refit=True, max_stale_answers=9, refit_tol=1e-3
        )
        assert spec.durability == DurabilitySpec(
            snapshot_every_answers=33, wal_fsync=True
        )

    def test_upgrade_rejects_unknown_keys(self):
        with pytest.raises(SpecValidationError, match="frobnicate"):
            upgrade_legacy_config({"frobnicate": 1})


# -- factory -------------------------------------------------------------------


class TestFactory:
    def test_build_model_and_assigner_defaults(self, mixed_schema):
        spec = SessionSpec()
        model = build_model(spec.policy.model)
        assert model.max_iterations == 50
        assigner = build_assigner(mixed_schema, spec)
        assert assigner.refit_every == 1
        assert assigner.refit_tol is None

    def test_refit_tol_rides_the_serving_section(self, mixed_schema):
        spec = SessionSpec.builder().serving(refit_tol=1e-4).build()
        assert build_assigner(mixed_schema, spec).refit_tol == 1e-4

    def test_build_policy_modes(self, mixed_schema):
        fast = {"max_iterations": 3, "m_step_iterations": 6}
        plain = build_policy(mixed_schema, SessionSpec.builder().model(**fast).build())
        assert type(plain).__name__ == "TCrowdAssigner"
        for build, expected in [
            (SessionSpec.builder().model(**fast).sharded(2), "[sharded x2]"),
            (SessionSpec.builder().model(**fast).async_refit(), "[async refit]"),
            (
                SessionSpec.builder().model(**fast).sharded(2).async_refit(),
                "[sharded x2 + async refit]",
            ),
        ]:
            policy = build_policy(mixed_schema, build.build())
            try:
                assert policy.name.endswith(expected)
            finally:
                policy.close()

    def test_wrap_policy_requires_tcrowd_assigner(self, mixed_schema):
        from repro.baselines.assignment_simple import RandomAssigner

        with pytest.raises(ConfigurationError, match="TCrowdAssigner"):
            wrap_policy(
                RandomAssigner(mixed_schema, seed=0), ServingSpec(shards=2)
            )

    def test_wrap_policy_passthrough_for_default_serving(self, mixed_schema):
        spec = SessionSpec()
        assigner = build_assigner(mixed_schema, spec)
        assert wrap_policy(assigner, spec.serving) is assigner


# -- the validate CLI ----------------------------------------------------------


class TestValidateCLI:
    def test_validates_the_committed_examples(self, capsys):
        import glob
        import pathlib

        examples = sorted(
            glob.glob(str(pathlib.Path(__file__).parent.parent / "examples" / "*.json"))
        )
        assert examples, "examples/*.json must exist (the lint job checks them)"
        assert validate_main(examples) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == len(examples)

    def test_reports_the_validation_path(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"version": 1, "serving": {"max_stale_answers": -1}}),
            encoding="utf-8",
        )
        assert validate_main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert "serving.max_stale_answers" in err

    def test_reports_non_json_files(self, tmp_path, capsys):
        broken = tmp_path / "broken.json"
        broken.write_text("{nope", encoding="utf-8")
        assert validate_main([str(broken)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_accepts_service_envelopes(self, tmp_path):
        body = tmp_path / "envelope.json"
        body.write_text(
            json.dumps(
                {
                    "version": 1,
                    "dataset": {"name": "celebrity", "num_rows": 8},
                    "durable": True,
                    "serving": {"shards": 2},
                }
            ),
            encoding="utf-8",
        )
        assert validate_main([str(body)]) == 0

    def test_rejects_malformed_envelopes(self, tmp_path, capsys):
        body = tmp_path / "envelope.json"
        body.write_text(
            json.dumps({"version": 1, "durable": "yes"}), encoding="utf-8"
        )
        assert validate_main([str(body)]) == 1
        assert "durable" in capsys.readouterr().err
