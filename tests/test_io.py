"""Tests for CSV / JSON persistence (repro.io)."""

import json

import pytest

from repro.core.inference import TCrowdModel
from repro.io import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset_json,
    load_schema_json,
    read_answers_csv,
    read_ground_truth_csv,
    result_to_dict,
    save_dataset_json,
    save_schema_json,
    schema_from_dict,
    schema_to_dict,
    write_answers_csv,
    write_estimates_csv,
    write_ground_truth_csv,
)
from repro.metrics import error_rate, mnad
from repro.utils.exceptions import DataError


class TestSchemaJson:
    def test_roundtrip(self, mixed_schema, tmp_path):
        path = tmp_path / "schema.json"
        save_schema_json(mixed_schema, path)
        loaded = load_schema_json(path)
        assert loaded.num_rows == mixed_schema.num_rows
        assert [c.name for c in loaded.columns] == [c.name for c in mixed_schema.columns]
        for original, restored in zip(mixed_schema.columns, loaded.columns):
            assert original.attribute_type == restored.attribute_type
            assert original.labels == restored.labels
            assert original.domain == restored.domain

    def test_dict_roundtrip_preserves_entity_attribute(self, mixed_schema):
        restored = schema_from_dict(schema_to_dict(mixed_schema))
        assert restored.entity_attribute == mixed_schema.entity_attribute

    def test_malformed_document_rejected(self):
        with pytest.raises(DataError):
            schema_from_dict({"columns": [{"name": "x", "type": "bogus"}]})


class TestAnswersCsv:
    def test_roundtrip(self, mixed_schema, mixed_answers, tmp_path):
        path = tmp_path / "answers.csv"
        write_answers_csv(mixed_answers, path)
        loaded = read_answers_csv(mixed_schema, path)
        assert len(loaded) == len(mixed_answers)
        for original, restored in zip(mixed_answers, loaded):
            assert original.worker == restored.worker
            assert original.cell() == restored.cell()
            if isinstance(original.value, float):
                assert restored.value == pytest.approx(original.value)
            else:
                assert restored.value == original.value

    def test_missing_columns_rejected(self, mixed_schema, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("worker,row\nw,0\n", encoding="utf-8")
        with pytest.raises(DataError):
            read_answers_csv(mixed_schema, path)

    def test_non_numeric_continuous_value_rejected(self, mixed_schema, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "worker,row,column,value\nw,0,weight,not-a-number\n", encoding="utf-8"
        )
        with pytest.raises(DataError):
            read_answers_csv(mixed_schema, path)

    def test_inference_on_reloaded_answers_matches(self, mixed_schema, mixed_answers, tmp_path):
        path = tmp_path / "answers.csv"
        write_answers_csv(mixed_answers, path)
        loaded = read_answers_csv(mixed_schema, path)
        model = TCrowdModel(max_iterations=8, seed=0)
        original = model.fit(mixed_schema, mixed_answers)
        reloaded = model.fit(mixed_schema, loaded)
        assert original.estimates() == reloaded.estimates()


class TestCellCsv:
    def test_ground_truth_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "truth.csv"
        write_ground_truth_csv(small_dataset.ground_truth, small_dataset.schema, path)
        loaded = read_ground_truth_csv(small_dataset.schema, path)
        assert set(loaded) == set(small_dataset.ground_truth)
        for cell, value in small_dataset.ground_truth.items():
            if isinstance(value, float):
                assert loaded[cell] == pytest.approx(value)
            else:
                assert loaded[cell] == value

    def test_estimates_export(self, mixed_schema, mixed_answers, fitted_result, tmp_path):
        path = tmp_path / "estimates.csv"
        write_estimates_csv(fitted_result, mixed_schema, path)
        loaded = read_ground_truth_csv(mixed_schema, path)
        assert len(loaded) == mixed_schema.num_cells

    def test_invalid_label_rejected_on_read(self, mixed_schema, tmp_path):
        path = tmp_path / "bad_truth.csv"
        path.write_text("row,column,value\n0,color,purple\n", encoding="utf-8")
        with pytest.raises(DataError):
            read_ground_truth_csv(mixed_schema, path)


class TestDatasetJson:
    def test_roundtrip_preserves_metrics(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset_json(small_dataset, path)
        loaded = load_dataset_json(path)
        assert loaded.schema.num_cells == small_dataset.schema.num_cells
        assert loaded.num_answers == small_dataset.num_answers
        model = TCrowdModel(max_iterations=8, seed=0)
        original = model.fit(small_dataset.schema, small_dataset.answers)
        restored = model.fit(loaded.schema, loaded.answers)
        assert error_rate(original, small_dataset) == pytest.approx(
            error_rate(restored, loaded)
        )
        assert mnad(original, small_dataset) == pytest.approx(mnad(restored, loaded))

    def test_document_is_valid_json(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset_json(small_dataset, path)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["format_version"] == 1
        assert len(document["answers"]) == small_dataset.num_answers

    def test_oracle_not_serialised(self, small_dataset):
        restored = dataset_from_dict(dataset_to_dict(small_dataset))
        assert restored.oracle is None
        assert restored.worker_pool is None

    def test_malformed_document_rejected(self):
        with pytest.raises(DataError):
            dataset_from_dict({"schema": {"columns": []}})


class TestResultSummary:
    def test_tcrowd_result_summary(self, fitted_result, mixed_schema):
        document = result_to_dict(fitted_result)
        assert len(document["estimates"]) == mixed_schema.num_cells
        assert set(document["worker_qualities"]) == set(fitted_result.worker_ids)
        assert len(document["row_difficulty"]) == mixed_schema.num_rows
        assert json.dumps(document)  # fully JSON-serialisable

    def test_baseline_result_summary(self, mixed_schema, mixed_answers):
        from repro.baselines import MajorityVoting

        result = MajorityVoting().fit(mixed_schema, mixed_answers)
        document = result_to_dict(result)
        assert "worker_qualities" not in document
        assert document["estimates"]
