"""Structure-aware information gain (Section 5.2).

The inherent gain of Eq. 6 treats the incoming worker's quality on a cell as
independent of their previous answers.  The structure-aware extension uses
the worker's *observed errors on other cells of the same row* — combined via
the attribute error-correlation models of Tables 4-5 and the Eq. 7/8
weighting — to produce a better prediction of the error the worker would make
on the candidate cell, and feeds that prediction into the delta-entropy
computation:

* categorical candidate: the predicted probability of a *correct* answer
  replaces the worker's inherent cell quality ``q^u_ij``;
* continuous candidate: the second moment of the predicted error replaces the
  worker's inherent answer variance.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.correlation import (
    AttributeCorrelationModel,
    BernoulliError,
    GaussianError,
    answer_error,
)
from repro.core.inference import InferenceResult
from repro.core.information_gain import InformationGainCalculator


class StructureAwareGainCalculator:
    """Computes the structure-aware information gain for (worker, cell) pairs."""

    def __init__(
        self,
        result: InferenceResult,
        answers: AnswerSet,
        correlation_model: Optional[AttributeCorrelationModel] = None,
        continuous_samples: int = 0,
        min_pairs: int = 5,
        seed=None,
    ) -> None:
        self.result = result
        self.answers = answers
        self.correlation = correlation_model or AttributeCorrelationModel.fit(
            answers, result, min_pairs=min_pairs
        )
        self._inherent = InformationGainCalculator(
            result, continuous_samples=continuous_samples, seed=seed
        )

    # -- public API -----------------------------------------------------------

    def gain(self, worker: str, row: int, col: int) -> float:
        """Structure-aware information gain of assigning (row, col) to worker.

        Falls back to the inherent gain when the worker has not answered any
        other cell of the row (no structural evidence).
        """
        observed = self._observed_errors(worker, row, col)
        if not observed:
            return self._inherent.gain(worker, row, col)
        predicted = self.correlation.predict_error(col, observed)
        column = self.result.schema.columns[col]
        if column.is_categorical:
            assert isinstance(predicted, BernoulliError)
            return self._inherent.gain(
                worker, row, col, quality_override=predicted.quality()
            )
        assert isinstance(predicted, GaussianError)
        return self._inherent.gain(
            worker, row, col, variance_override=max(predicted.second_moment(), 1e-9)
        )

    def gains_for_worker(self, worker: str, candidates) -> Dict[tuple, float]:
        """Structure-aware gain for every candidate cell."""
        return {cell: self.gain(worker, cell[0], cell[1]) for cell in candidates}

    def prewarm(self) -> None:
        """Eagerly build the inherent calculator's cached scoring tables.

        The structure-aware layer itself keeps no mutable state across
        :meth:`gains_batch` calls; see
        :meth:`InformationGainCalculator.prewarm`.
        """
        self._inherent.prewarm()

    def gains_batch(self, worker: str, cells) -> np.ndarray:
        """Structure-aware gain for many candidate cells in one pass.

        The worker's observed errors are computed once per row (instead of
        once per candidate) and the per-cell quality/variance predictions are
        handed to :meth:`InformationGainCalculator.gains_batch` as override
        arrays; cells without structural evidence keep ``NaN`` overrides and
        fall back to the inherent gain, as in :meth:`gain`.
        """
        cells = list(cells)
        quality_overrides = np.full(len(cells), np.nan)
        variance_overrides = np.full(len(cells), np.nan)
        worker_rows: Dict[int, list] = {}
        for answer in self.answers.answers_by_worker(worker):
            worker_rows.setdefault(answer.row, []).append(answer)
        errors_by_row: Dict[int, Dict[int, float]] = {}
        columns = self.result.schema.columns
        for idx, (row, col) in enumerate(cells):
            row_answers = worker_rows.get(row)
            if not row_answers:
                continue
            errors = errors_by_row.get(row)
            if errors is None:
                errors = {
                    answer.col: answer_error(answer, self.result)
                    for answer in row_answers
                }
                errors_by_row[row] = errors
            observed = {c: e for c, e in errors.items() if c != col}
            if not observed:
                continue
            predicted = self.correlation.predict_error(col, observed)
            if columns[col].is_categorical:
                quality_overrides[idx] = predicted.quality()
            else:
                variance_overrides[idx] = max(predicted.second_moment(), 1e-9)
        return self._inherent.gains_batch(
            worker,
            cells,
            quality_overrides=quality_overrides,
            variance_overrides=variance_overrides,
        )

    # -- internals ------------------------------------------------------------

    def _observed_errors(self, worker: str, row: int, col: int) -> Dict[int, float]:
        """Errors of the worker's previous answers on other cells of ``row``."""
        observed: Dict[int, float] = {}
        for answer in self.answers.worker_answers_in_row(worker, row):
            if answer.col == col:
                continue
            observed[answer.col] = answer_error(answer, self.result)
        return observed
