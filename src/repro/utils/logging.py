"""Structured logging: one JSON object per line, correlation fields attached.

The service layer and the multiprocess shard workers used to write free-form
text to stderr / per-worker log files, which CI could only grep.  This module
gives every component the same stdlib :mod:`logging` setup with an optional
JSON line formatter that carries the three correlation fields the audit layer
introduced — ``session_id``, ``worker_id`` and ``decision_id`` — whenever a
log site supplies them (via ``extra=`` or defaults bound at configure time).

``python -m repro.service`` exposes this through ``--log-level`` and
``--log-json``; worker processes configure themselves with JSON lines
unconditionally so their ``worker-<i>.log`` files are machine-parseable.
"""

from __future__ import annotations

import json
import logging

from repro.utils.exceptions import ConfigurationError

#: Correlation fields promoted into the JSON payload when present.
CONTEXT_FIELDS = ("session_id", "worker_id", "decision_id")


class JsonLineFormatter(logging.Formatter):
    """Format records as one JSON object per line (sorted keys, UTC epoch)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for field in CONTEXT_FIELDS:
            value = getattr(record, field, None)
            if value is not None:
                payload[field] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


class _ContextFilter(logging.Filter):
    """Attach bound default fields to every record passing through."""

    def __init__(self, fields: dict) -> None:
        super().__init__()
        self.fields = fields

    def filter(self, record: logging.LogRecord) -> bool:
        for key, value in self.fields.items():
            if getattr(record, key, None) is None:
                setattr(record, key, value)
        return True


def configure_logging(
    level: str = "INFO",
    json_lines: bool = False,
    stream=None,
    **fields,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree and return its root.

    Idempotent: replaces any handler a previous call installed, so the
    service's ``--log-level``/``--log-json`` flags and the worker entry
    point can both call it without duplicating output.  ``fields`` are
    bound onto every record (e.g. ``worker_id=3``) unless the log site
    already set them via ``extra=``.
    """
    numeric = getattr(logging, str(level).upper(), None)
    if not isinstance(numeric, int):
        raise ConfigurationError(f"unknown log level {level!r}")
    handler = logging.StreamHandler(stream)
    if json_lines:
        handler.setFormatter(JsonLineFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    if fields:
        handler.addFilter(_ContextFilter(fields))
    logger = logging.getLogger("repro")
    for old in list(logger.handlers):
        logger.removeHandler(old)
    logger.addHandler(handler)
    logger.setLevel(numeric)
    logger.propagate = False
    return logger
