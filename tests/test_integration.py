"""Integration tests spanning datasets, inference, assignment and metrics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import MajorityVoting, MedianAggregator
from repro.baselines.combined import CombinedInference
from repro.core.assignment import TCrowdAssigner
from repro.core.inference import TCrowdModel
from repro.datasets import generate_synthetic
from repro.metrics import error_rate, mnad
from repro.platform import CrowdsourcingSession


class TestInferencePipeline:
    def test_tcrowd_beats_unweighted_baselines_on_synthetic(self):
        dataset = generate_synthetic(
            num_rows=30, num_columns=6, categorical_ratio=0.5,
            answers_per_task=5, num_workers=40, seed=17,
        )
        tcrowd = TCrowdModel(max_iterations=20).fit(dataset.schema, dataset.answers)
        baseline = CombinedInference(MajorityVoting(), MedianAggregator()).fit(
            dataset.schema, dataset.answers
        )
        assert error_rate(tcrowd, dataset) <= error_rate(baseline, dataset) + 0.01
        assert mnad(tcrowd, dataset) <= mnad(baseline, dataset) + 0.01

    def test_worker_quality_estimates_track_latent_quality(self):
        dataset = generate_synthetic(
            num_rows=25, num_columns=6, categorical_ratio=0.5,
            answers_per_task=4, num_workers=25, seed=19,
        )
        result = TCrowdModel(max_iterations=20).fit(dataset.schema, dataset.answers)
        latent = dataset.worker_pool.variances()
        estimated, actual = [], []
        for worker in result.worker_ids:
            if len(dataset.answers.answers_by_worker(worker)) < 10:
                continue
            estimated.append(result.worker_variance(worker))
            actual.append(latent[worker])
        assert len(estimated) >= 5
        correlation = np.corrcoef(np.log(estimated), np.log(actual))[0, 1]
        assert correlation > 0.5

    def test_more_answers_improve_accuracy(self):
        sparse = generate_synthetic(
            num_rows=25, num_columns=6, answers_per_task=2, num_workers=30, seed=23,
        )
        dense = generate_synthetic(
            num_rows=25, num_columns=6, answers_per_task=6, num_workers=30, seed=23,
        )
        model = TCrowdModel(max_iterations=15)
        sparse_mnad = mnad(model.fit(sparse.schema, sparse.answers), sparse)
        dense_mnad = mnad(model.fit(dense.schema, dense.answers), dense)
        assert dense_mnad <= sparse_mnad + 0.02


class TestEndToEndAssignment:
    def test_tcrowd_assignment_not_worse_than_random(self):
        dataset = generate_synthetic(
            num_rows=15, num_columns=6, categorical_ratio=0.5,
            answers_per_task=2, num_workers=25, seed=29,
        )
        model = TCrowdModel(max_iterations=8, m_step_iterations=12)
        from repro.baselines.assignment_simple import RandomAssigner

        def run(policy, seed):
            session = CrowdsourcingSession(
                dataset, policy, model,
                target_answers_per_task=3.5,
                initial_answers_per_task=1,
                eval_every_answers_per_task=1.0,
                seed=seed,
            )
            return session.run()

        tcrowd_trace = run(
            TCrowdAssigner(dataset.schema, model=model, refit_every=10), seed=5
        )
        random_trace = run(RandomAssigner(dataset.schema, seed=1), seed=5)
        # The informed policy should be at least competitive at the end of
        # the budget (strict dominance is only expected on larger runs).
        assert tcrowd_trace.final.error_rate <= random_trace.final.error_rate + 0.1

    def test_session_estimates_stay_in_domain(self):
        dataset = generate_synthetic(
            num_rows=10, num_columns=4, categorical_ratio=0.5,
            answers_per_task=2, num_workers=15, seed=31,
        )
        model = TCrowdModel(max_iterations=8)
        session = CrowdsourcingSession(
            dataset,
            TCrowdAssigner(dataset.schema, model=model, refit_every=8),
            model,
            target_answers_per_task=3.0,
            eval_every_answers_per_task=1.0,
            seed=3,
        )
        session.run()
        result = model.fit(dataset.schema, dataset.answers)
        for (row, col), value in result.estimates().items():
            column = dataset.schema.columns[col]
            if column.is_categorical:
                assert column.contains_label(value)
            else:
                assert np.isfinite(float(value))


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_inference_deterministic_per_seed(self, seed):
        dataset = generate_synthetic(
            num_rows=6, num_columns=4, answers_per_task=2, num_workers=8, seed=seed,
        )
        model = TCrowdModel(max_iterations=5)
        a = model.fit(dataset.schema, dataset.answers)
        b = model.fit(dataset.schema, dataset.answers)
        assert a.estimates() == b.estimates()

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(0, 1_000))
    @settings(max_examples=10, deadline=None)
    def test_error_rate_and_mnad_bounds(self, ratio, seed):
        dataset = generate_synthetic(
            num_rows=6, num_columns=4, categorical_ratio=ratio,
            answers_per_task=2, num_workers=8, seed=seed,
        )
        result = TCrowdModel(max_iterations=5).fit(dataset.schema, dataset.answers)
        if dataset.schema.categorical_indices:
            assert 0.0 <= error_rate(result, dataset) <= 1.0
        if dataset.schema.continuous_indices:
            assert mnad(result, dataset) >= 0.0
