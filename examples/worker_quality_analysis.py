"""Worker-quality case study (paper Section 6.4.1, Figures 3 and 4).

Loads the simulated Restaurant dataset, runs T-Crowd truth inference, and
shows (a) that each worker's quality is consistent across categorical and
continuous attributes and (b) that the estimated unified quality tracks the
actual quality computed from the ground truth.

Run with::

    python examples/worker_quality_analysis.py [--rows 80]
"""

import argparse

import numpy as np

from repro import TCrowdModel
from repro.datasets import load_restaurant
from repro.experiments.reporting import format_table
from repro.metrics import pearson_correlation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--top", type=int, default=15, help="workers to display")
    args = parser.parse_args()

    kwargs = {"seed": args.seed}
    if args.rows:
        kwargs["num_rows"] = args.rows
    dataset = load_restaurant(**kwargs)
    result = TCrowdModel(seed=args.seed).fit(dataset.schema, dataset.answers)
    schema = dataset.schema

    # Actual per-worker error statistics against the ground truth.
    cat_errors, cont_errors, counts = {}, {}, {}
    for answer in dataset.answers:
        column = schema.columns[answer.col]
        truth = dataset.truth(answer.row, answer.col)
        counts[answer.worker] = counts.get(answer.worker, 0) + 1
        if column.is_categorical:
            cat_errors.setdefault(answer.worker, []).append(
                0.0 if answer.value == truth else 1.0
            )
        else:
            normaliser = max(dataset.column_truth_std(answer.col), 1e-9)
            cont_errors.setdefault(answer.worker, []).append(
                (float(answer.value) - float(truth)) / normaliser
            )

    workers = sorted(counts, key=counts.get, reverse=True)[: args.top]
    rows = []
    estimated, actual_cat, actual_cont = [], [], []
    for worker in workers:
        actual_error_rate = float(np.mean(cat_errors.get(worker, [np.nan])))
        actual_std = float(np.std(cont_errors.get(worker, [np.nan])))
        quality = result.worker_quality(worker)
        rows.append([worker, counts[worker], quality, actual_error_rate, actual_std])
        estimated.append(quality)
        actual_cat.append(actual_error_rate)
        actual_cont.append(actual_std)
    print(format_table(
        ["Worker", "#answers", "estimated quality", "actual error rate", "actual error std"],
        rows,
    ))

    print("\nCalibration (over the displayed workers):")
    print("  corr(estimated quality, actual categorical error rate) = "
          f"{pearson_correlation(estimated, actual_cat):.3f} (expected negative)")
    print("  corr(estimated quality, actual continuous error std)   = "
          f"{pearson_correlation(estimated, actual_cont):.3f} (expected negative)")
    print("\nThe paper reports |corr| ~ 0.84 between estimated and actual quality "
          "on the real Restaurant answers (Figure 4).")


if __name__ == "__main__":
    main()
