"""Benchmark: Figure 2 — end-to-end assignment comparison (one panel per dataset)."""

import pytest
from conftest import FAST_MODEL, run_once

from repro.experiments import run_figure2


@pytest.mark.parametrize("dataset_name", ["Celebrity", "Restaurant", "Emotion"])
def test_figure2_end_to_end(benchmark, report_writer, dataset_name):
    """Regenerate one dataset's Figure 2 panels (reduced table, reduced budget)."""
    budget = {"Celebrity": 4.0, "Restaurant": 4.0, "Emotion": 5.0}[dataset_name]
    report = run_once(
        benchmark,
        run_figure2,
        dataset_name=dataset_name,
        seed=7,
        num_rows=25,
        target_answers_per_task=budget,
        eval_every=1.0,
        model_kwargs=FAST_MODEL,
    )
    report.experiment_id = f"figure2_{dataset_name.lower()}"
    report_writer(report)
    assert len(report.rows) == 5
    systems = [row[0] for row in report.rows]
    assert "T-Crowd" in systems and "CDAS" in systems
    # Every system's series advances along the answers-per-task axis.
    for points in report.series.values():
        xs = [x for x, _y in points]
        assert xs == sorted(xs)
